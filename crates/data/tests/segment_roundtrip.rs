//! Integration tests for the columnar segment engine: bit-exact roundtrips
//! across dtypes × null patterns × RLE policies (property-based), corruption
//! rejection for every torn prefix of a real segment file, and
//! worker-count-independence of parallel scans.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

use proptest::prelude::*;

use fact_data::agg::{aggregate, aggregate_segments, AggFn};
use fact_data::bias::{group_rates, group_rates_segments};
use fact_data::column::Column;
use fact_data::segment::{RlePolicy, SegmentReader, SEGMENT_MAGIC};
use fact_data::{Dataset, FactError, Predicate, SegmentWriteConfig};

static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

/// A unique scratch directory per call; callers remove it when done.
fn scratch_dir(tag: &str) -> PathBuf {
    let n = DIR_SEQ.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("fseg-{tag}-{}-{n}", std::process::id()))
}

/// Bitwise dataset equality: schema (incl. annotations), dictionaries,
/// codes, validity, and float payloads compared via `to_bits` so NaN
/// placeholders under null slots count as equal when identical.
fn assert_bit_identical(a: &Dataset, b: &Dataset) {
    assert_eq!(a.schema(), b.schema());
    assert_eq!(a.n_rows(), b.n_rows());
    for name in a.names() {
        let ca = a.column(name).unwrap();
        let cb = b.column(name).unwrap();
        assert_eq!(ca.dtype(), cb.dtype(), "dtype of '{name}'");
        for i in 0..a.n_rows() {
            assert_eq!(ca.is_null(i), cb.is_null(i), "validity of '{name}'[{i}]");
        }
        use fact_data::ColumnData;
        match (ca.data(), cb.data()) {
            (ColumnData::Float(x), ColumnData::Float(y)) => {
                for (i, (l, r)) in x.iter().zip(y).enumerate() {
                    assert_eq!(l.to_bits(), r.to_bits(), "float bits of '{name}'[{i}]");
                }
            }
            (ColumnData::Int(x), ColumnData::Int(y)) => assert_eq!(x, y, "ints of '{name}'"),
            (ColumnData::Bool(x), ColumnData::Bool(y)) => assert_eq!(x, y, "bools of '{name}'"),
            (ColumnData::Cat(x), ColumnData::Cat(y)) => {
                assert_eq!(x.dict, y.dict, "dict of '{name}'");
                assert_eq!(x.codes, y.codes, "codes of '{name}'");
            }
            _ => panic!("dtype mismatch on '{name}'"),
        }
    }
}

/// One row of generated column data.
#[derive(Debug, Clone)]
struct Row {
    f: Option<f64>,
    i: Option<i64>,
    b: bool,
    c: Option<u8>,
}

fn row_strategy() -> impl Strategy<Value = Row> {
    // the vendored proptest has no option/oneof combinators; selectors
    // folded through prop_map cover None, NaN, ±inf, -0.0 and plain values
    (
        (0u8..6, any::<f64>()),
        (any::<bool>(), any::<i64>()),
        any::<bool>(),
        0u8..5,
    )
        .prop_map(|((fs, fraw), (isome, ival), b, cs)| Row {
            f: match fs {
                0 => None,
                1 => Some(f64::NAN),
                2 => Some(f64::INFINITY),
                3 => Some(-0.0),
                _ => Some(fraw),
            },
            i: isome.then_some(ival),
            b,
            c: (cs < 4).then_some(cs),
        })
}

const LABELS: [&str; 4] = ["alpha", "beta", "gamma", "delta"];

fn dataset_of(rows: &[Row]) -> Dataset {
    let mut f = Vec::new();
    let mut fv = Vec::new();
    let mut iv = Vec::new();
    let mut ivv = Vec::new();
    let mut bv = Vec::new();
    let mut cl = Vec::new();
    let mut cv = Vec::new();
    for r in rows {
        fv.push(r.f.is_some());
        f.push(r.f.unwrap_or(f64::NAN));
        ivv.push(r.i.is_some());
        iv.push(r.i.unwrap_or(0));
        bv.push(r.b);
        cv.push(r.c.is_some());
        cl.push(LABELS[r.c.unwrap_or(0) as usize]);
    }
    let with = |col: Column, mask: Vec<bool>| {
        if mask.iter().all(|&m| m) {
            col
        } else {
            col.with_validity(mask).unwrap()
        }
    };
    let mut ds = Dataset::from_columns(vec![
        ("score".into(), with(Column::from_f64(f), fv)),
        ("count".into(), with(Column::from_i64(iv), ivv)),
        ("flag".into(), Column::from_bool(bv)),
        ("group".into(), with(Column::from_labels(&cl), cv)),
    ])
    .unwrap();
    ds.schema_mut().field_mut("group").unwrap().sensitive = true;
    ds.schema_mut().field_mut("count").unwrap().quasi_identifier = true;
    ds
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every dtype × null pattern × RLE policy × segment size roundtrips
    /// bit-exactly, including NaN payloads and FACT schema annotations.
    #[test]
    fn roundtrip_is_bit_exact(
        rows in prop::collection::vec(row_strategy(), 1..120),
        rows_per_segment in 1usize..50,
        policy_sel in 0usize..3,
    ) {
        let ds = dataset_of(&rows);
        let rle = [RlePolicy::Auto, RlePolicy::Never, RlePolicy::Always][policy_sel];
        let dir = scratch_dir("prop");
        let cfg = SegmentWriteConfig { rows_per_segment, rle };
        let set = ds.to_segments(&dir, &cfg).unwrap();
        prop_assert_eq!(set.n_segments(), rows.len().div_ceil(rows_per_segment));
        let back = Dataset::from_segments(&dir).unwrap();
        assert_bit_identical(&ds, &back);
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Every strict prefix of a segment file is rejected as corrupt — no
    /// torn tail is ever silently accepted — and so is appended garbage.
    #[test]
    fn torn_segments_are_rejected(cut_frac in 0.0f64..1.0) {
        let ds = dataset_of(&[
            Row { f: Some(1.5), i: Some(-2), b: true, c: Some(1) },
            Row { f: None, i: Some(7), b: false, c: None },
            Row { f: Some(f64::NAN), i: None, b: true, c: Some(3) },
        ]);
        let dir = scratch_dir("torn");
        let set = ds
            .to_segments(&dir, &SegmentWriteConfig::default())
            .unwrap();
        let path = set.segment_path(0);
        let image = std::fs::read(&path).unwrap();
        let cut = ((image.len() as f64) * cut_frac) as usize;
        prop_assert!(cut < image.len());
        std::fs::write(&path, &image[..cut]).unwrap();
        prop_assert!(matches!(
            SegmentReader::open(&path),
            Err(FactError::Corrupt(_))
        ), "prefix of {cut}/{} bytes must be rejected", image.len());
        let mut padded = image.clone();
        padded.push(0);
        std::fs::write(&path, &padded).unwrap();
        prop_assert!(matches!(
            SegmentReader::open(&path),
            Err(FactError::Corrupt(_))
        ));
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[test]
fn every_prefix_of_a_small_segment_is_corrupt() {
    let ds = dataset_of(&[
        Row {
            f: Some(2.0),
            i: Some(5),
            b: false,
            c: Some(0),
        },
        Row {
            f: Some(3.0),
            i: Some(6),
            b: true,
            c: Some(2),
        },
    ]);
    let dir = scratch_dir("prefix");
    let set = ds
        .to_segments(&dir, &SegmentWriteConfig::default())
        .unwrap();
    let path = set.segment_path(0);
    let image = std::fs::read(&path).unwrap();
    for cut in 0..image.len() {
        std::fs::write(&path, &image[..cut]).unwrap();
        assert!(
            matches!(SegmentReader::open(&path), Err(FactError::Corrupt(_))),
            "prefix of {cut}/{} bytes accepted",
            image.len()
        );
    }
    // bad magic and bad version are corrupt too
    let mut bad = image.clone();
    bad[0] ^= 0xff;
    std::fs::write(&path, &bad).unwrap();
    assert!(matches!(
        SegmentReader::open(&path),
        Err(FactError::Corrupt(_))
    ));
    let mut bad = image.clone();
    bad[SEGMENT_MAGIC.len()] = 0xff;
    std::fs::write(&path, &bad).unwrap();
    assert!(matches!(
        SegmentReader::open(&path),
        Err(FactError::Corrupt(_))
    ));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn missing_manifest_and_missing_segment_fail_loudly() {
    let dir = scratch_dir("missing");
    std::fs::create_dir_all(&dir).unwrap();
    assert!(fact_data::SegmentSet::open(&dir).is_err());
    let ds = dataset_of(&[Row {
        f: Some(1.0),
        i: Some(1),
        b: true,
        c: Some(1),
    }]);
    let set = ds
        .to_segments(&dir, &SegmentWriteConfig::default())
        .unwrap();
    std::fs::remove_file(set.segment_path(0)).unwrap();
    assert!(set.to_dataset().is_err());
    std::fs::remove_dir_all(&dir).ok();
}

/// A wide-ish, multi-segment dataset for scan/aggregate parity checks.
fn parity_dataset(n: usize) -> Dataset {
    let groups: Vec<&str> = (0..n).map(|i| LABELS[i % LABELS.len()]).collect();
    let score: Vec<f64> = (0..n).map(|i| (i as f64) * 0.25 - 10.0).collect();
    let hits: Vec<i64> = (0..n).map(|i| (i as i64 * 7) % 13).collect();
    let won: Vec<bool> = (0..n).map(|i| i % 3 == 0).collect();
    Dataset::builder()
        .cat("group", &groups)
        .f64("score", score)
        .i64("hits", hits)
        .boolean("won", won)
        .build()
        .unwrap()
}

#[test]
fn scans_and_aggregates_are_identical_at_any_worker_count() {
    let ds = parity_dataset(997);
    let dir = scratch_dir("workers");
    let set = ds
        .to_segments(
            &dir,
            &SegmentWriteConfig {
                rows_per_segment: 64,
                ..Default::default()
            },
        )
        .unwrap();
    let pred = Predicate::Range {
        column: "score".into(),
        min: -5.0,
        max: 120.0,
    };
    let mut scans = Vec::new();
    let mut aggs = Vec::new();
    for workers in [1usize, 2, 4] {
        fact_par::set_workers(workers);
        let (sub, stats) = set.scan_columns(&["group", "score", "won"], &pred).unwrap();
        let (agg, _) = aggregate_segments(
            &set,
            "group",
            &[
                ("score", AggFn::Sum),
                ("score", AggFn::Mean),
                ("hits", AggFn::Min),
                ("hits", AggFn::Max),
                ("won", AggFn::Count),
            ],
            &pred,
        )
        .unwrap();
        scans.push((sub, stats));
        aggs.push(agg);
    }
    fact_par::set_workers(0);
    for (sub, stats) in &scans[1..] {
        assert_bit_identical(&scans[0].0, sub);
        assert_eq!(&scans[0].1, stats, "scan stats differ across worker counts");
    }
    for agg in &aggs[1..] {
        assert_bit_identical(&aggs[0], agg);
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn segment_aggregate_matches_in_memory_engine() {
    let ds = parity_dataset(500);
    let dir = scratch_dir("aggpar");
    let set = ds
        .to_segments(
            &dir,
            &SegmentWriteConfig {
                rows_per_segment: 77,
                ..Default::default()
            },
        )
        .unwrap();
    let specs = [
        ("score", AggFn::Sum),
        ("score", AggFn::Mean),
        ("score", AggFn::Min),
        ("score", AggFn::Max),
        ("hits", AggFn::Count),
    ];
    let expected = aggregate(&ds, "group", &specs).unwrap();
    let (got, stats) = aggregate_segments(&set, "group", &specs, &Predicate::All).unwrap();
    assert_eq!(stats.segments_pruned, 0);
    assert_eq!(stats.rows_matched, 500);
    assert_eq!(
        expected.labels("group").unwrap(),
        got.labels("group").unwrap()
    );
    for name in ["score_min", "score_max", "hits_count"] {
        assert_eq!(
            expected.f64_column(name).unwrap(),
            got.f64_column(name).unwrap(),
            "{name} must be exact"
        );
    }
    // sums associate per segment, so allow float tolerance
    for name in ["score_sum", "score_mean"] {
        for (e, g) in expected
            .f64_column(name)
            .unwrap()
            .iter()
            .zip(got.f64_column(name).unwrap())
        {
            assert!(
                (e - g).abs() <= 1e-9 * e.abs().max(1.0),
                "{name}: {e} vs {g}"
            );
        }
    }
    // group-rate probe parity
    let expected_rates = group_rates(&ds, "won", "group").unwrap();
    let (got_rates, _) = group_rates_segments(&set, "won", "group", &Predicate::All).unwrap();
    assert_eq!(expected_rates, got_rates);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn zone_maps_prune_segments_and_bytes() {
    // scores rise monotonically, so a narrow range predicate touches few
    // segments; zone maps must prove the rest away without reading them
    let ds = parity_dataset(1000);
    let dir = scratch_dir("prune");
    let set = ds
        .to_segments(
            &dir,
            &SegmentWriteConfig {
                rows_per_segment: 50,
                ..Default::default()
            },
        )
        .unwrap();
    assert_eq!(set.n_segments(), 20);
    let pred = Predicate::Range {
        column: "score".into(),
        min: -10.0,
        max: -5.0,
    };
    let (sub, stats) = set.scan_columns(&["score"], &pred).unwrap();
    assert_eq!(stats.segments_total, 20);
    assert!(
        stats.segments_pruned >= 10,
        "expected at least half pruned, got {}",
        stats.segments_pruned
    );
    assert!(
        stats.bytes_read < stats.bytes_total / 2,
        "bytes_read {} not under half of {}",
        stats.bytes_read,
        stats.bytes_total
    );
    // every returned row actually matches, and none were lost
    let vals = sub.f64_slice("score").unwrap();
    assert!(vals.iter().all(|&v| (-10.0..=-5.0).contains(&v)));
    let truth = ds
        .f64_slice("score")
        .unwrap()
        .iter()
        .filter(|v| (-10.0..=-5.0).contains(*v))
        .count();
    assert_eq!(vals.len(), truth);
    // a categorical predicate on an absent label prunes everything
    let (empty, stats) = set
        .scan_columns(
            &["group"],
            &Predicate::CatIs {
                column: "group".into(),
                label: "nope".into(),
            },
        )
        .unwrap();
    assert_eq!(empty.n_rows(), 0);
    assert_eq!(stats.segments_pruned, 20);
    std::fs::remove_dir_all(&dir).ok();
}
