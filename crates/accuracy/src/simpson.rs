//! Simpson's-paradox auditor.
//!
//! Given a binary outcome, a two-group comparison attribute, and candidate
//! stratifying variables, the auditor compares the **aggregate** outcome-rate
//! difference with the **per-stratum** differences. A reversal — aggregate
//! trend pointing one way while the (weighted) stratified trend points the
//! other — is exactly the situation the paper warns gives "false advice even
//! in the presence of 'big' data" (§2).

use fact_data::{Dataset, FactError, Result};

/// Association within one stratum.
#[derive(Debug, Clone)]
pub struct StratumAssociation {
    /// Stratum label (a value of the stratifying column).
    pub stratum: String,
    /// Rows in the stratum.
    pub n: usize,
    /// Outcome rate for group 1.
    pub rate_group1: f64,
    /// Outcome rate for group 2.
    pub rate_group2: f64,
}

impl StratumAssociation {
    /// `rate_group1 − rate_group2` in this stratum.
    pub fn difference(&self) -> f64 {
        self.rate_group1 - self.rate_group2
    }
}

/// Audit result for one stratifying variable.
#[derive(Debug, Clone)]
pub struct SimpsonReport {
    /// The stratifying column examined.
    pub stratifier: String,
    /// Aggregate `rate(group1) − rate(group2)`.
    pub aggregate_difference: f64,
    /// Per-stratum associations.
    pub strata: Vec<StratumAssociation>,
    /// Stratum-size-weighted mean of per-stratum differences.
    pub adjusted_difference: f64,
    /// True when the aggregate and adjusted differences have opposite signs
    /// (both at magnitude ≥ `0.01`) — a trend reversal.
    pub reversal: bool,
}

/// Compare `group1` vs `group2` of `group_col` on the binary `outcome_col`,
/// stratified by `stratifier`.
pub fn audit_simpson(
    ds: &Dataset,
    outcome_col: &str,
    group_col: &str,
    group1: &str,
    group2: &str,
    stratifier: &str,
) -> Result<SimpsonReport> {
    let outcome = ds.bool_column(outcome_col)?.to_vec();
    let groups = ds.labels(group_col)?;
    let strata_labels = ds.labels(stratifier)?;
    #[allow(clippy::needless_range_loop)]
    let rate = |pred: &dyn Fn(usize) -> bool| -> Option<(f64, usize)> {
        let mut pos = 0usize;
        let mut n = 0usize;
        for i in 0..outcome.len() {
            if pred(i) {
                n += 1;
                if outcome[i] {
                    pos += 1;
                }
            }
        }
        (n > 0).then(|| (pos as f64 / n as f64, n))
    };

    let (r1, _) = rate(&|i| groups[i] == group1)
        .ok_or_else(|| FactError::InvalidArgument(format!("group '{group1}' has no rows")))?;
    let (r2, _) = rate(&|i| groups[i] == group2)
        .ok_or_else(|| FactError::InvalidArgument(format!("group '{group2}' has no rows")))?;
    let aggregate = r1 - r2;

    // distinct strata in first-appearance order
    let mut strata_names: Vec<String> = Vec::new();
    for s in &strata_labels {
        if !strata_names.contains(s) {
            strata_names.push(s.clone());
        }
    }
    let mut strata = Vec::new();
    let mut weighted = 0.0;
    let mut weight_total = 0.0;
    for s in &strata_names {
        let g1 = rate(&|i| &strata_labels[i] == s && groups[i] == group1);
        let g2 = rate(&|i| &strata_labels[i] == s && groups[i] == group2);
        if let (Some((rg1, n1)), Some((rg2, n2))) = (g1, g2) {
            let n = n1 + n2;
            weighted += (rg1 - rg2) * n as f64;
            weight_total += n as f64;
            strata.push(StratumAssociation {
                stratum: s.clone(),
                n,
                rate_group1: rg1,
                rate_group2: rg2,
            });
        }
    }
    if strata.is_empty() {
        return Err(FactError::InvalidArgument(
            "no stratum contains both groups; cannot stratify".into(),
        ));
    }
    let adjusted = weighted / weight_total;
    let reversal = aggregate.abs() >= 0.01
        && adjusted.abs() >= 0.01
        && aggregate.signum() != adjusted.signum();
    Ok(SimpsonReport {
        stratifier: stratifier.to_string(),
        aggregate_difference: aggregate,
        strata,
        adjusted_difference: adjusted,
        reversal,
    })
}

/// Scan several candidate stratifiers; returns every report, reversals first.
pub fn scan_stratifiers(
    ds: &Dataset,
    outcome_col: &str,
    group_col: &str,
    group1: &str,
    group2: &str,
    candidates: &[&str],
) -> Result<Vec<SimpsonReport>> {
    let mut out = Vec::with_capacity(candidates.len());
    for &c in candidates {
        out.push(audit_simpson(
            ds,
            outcome_col,
            group_col,
            group1,
            group2,
            c,
        )?);
    }
    out.sort_by_key(|r| !r.reversal);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fact_data::synth::admissions::{generate_admissions, AdmissionsConfig};

    #[test]
    fn detects_the_berkeley_reversal() {
        let ds = generate_admissions(&AdmissionsConfig::default());
        let rep = audit_simpson(&ds, "admitted", "gender", "male", "female", "department").unwrap();
        assert!(
            rep.aggregate_difference > 0.08,
            "aggregate favors men: {}",
            rep.aggregate_difference
        );
        assert!(
            rep.adjusted_difference < 0.01,
            "department-adjusted difference vanishes/reverses: {}",
            rep.adjusted_difference
        );
        assert!(rep.reversal || rep.adjusted_difference.abs() < 0.01);
        assert_eq!(rep.strata.len(), 6);
    }

    #[test]
    fn no_reversal_in_homogeneous_data() {
        // one group uniformly better, no confounding
        let n = 1000;
        let genders: Vec<&str> = (0..n).map(|i| if i % 2 == 0 { "m" } else { "f" }).collect();
        let dept: Vec<&str> = (0..n).map(|i| if i % 3 == 0 { "X" } else { "Y" }).collect();
        let outcome: Vec<bool> = (0..n).map(|i| i % 2 == 0 || i % 5 == 0).collect();
        let ds = Dataset::builder()
            .cat("gender", &genders)
            .cat("dept", &dept)
            .boolean("win", outcome)
            .build()
            .unwrap();
        let rep = audit_simpson(&ds, "win", "gender", "m", "f", "dept").unwrap();
        assert!(!rep.reversal);
        assert!(rep.aggregate_difference > 0.5);
        assert_eq!(
            rep.aggregate_difference.signum(),
            rep.adjusted_difference.signum()
        );
    }

    #[test]
    fn textbook_two_by_two_reversal() {
        // classic counts: group A better in both strata, worse in aggregate.
        // stratum S1: A 80/100 (0.8) vs B 9/10 (0.9)? No — build a real one:
        // S1: A: 81/87 (0.93), B: 234/270 (0.87)
        // S2: A: 192/263 (0.73), B: 55/80 (0.69)
        // aggregate: A: 273/350 (0.78), B: 289/350 (0.826) → B wins aggregate
        let mut gender = Vec::new();
        let mut stratum = Vec::new();
        let mut outcome = Vec::new();
        let mut add = |g: &'static str, s: &'static str, yes: usize, total: usize| {
            for i in 0..total {
                gender.push(g);
                stratum.push(s);
                outcome.push(i < yes);
            }
        };
        add("A", "S1", 81, 87);
        add("B", "S1", 234, 270);
        add("A", "S2", 192, 263);
        add("B", "S2", 55, 80);
        let ds = Dataset::builder()
            .cat("g", &gender)
            .cat("s", &stratum)
            .boolean("y", outcome)
            .build()
            .unwrap();
        let rep = audit_simpson(&ds, "y", "g", "A", "B", "s").unwrap();
        assert!(rep.aggregate_difference < -0.01, "B wins aggregate");
        assert!(rep.adjusted_difference > 0.01, "A wins within strata");
        assert!(rep.reversal);
        for s in &rep.strata {
            assert!(s.difference() > 0.0, "A leads in {}", s.stratum);
        }
    }

    #[test]
    fn scan_orders_reversals_first() {
        let ds = generate_admissions(&AdmissionsConfig::default());
        // add an unconfounded dummy stratifier
        let dummy: Vec<&str> = (0..ds.n_rows())
            .map(|i| if i % 2 == 0 { "p" } else { "q" })
            .collect();
        let mut ds2 = ds.clone();
        ds2.add_column("dummy", fact_data::Column::from_labels(&dummy))
            .unwrap();
        let reports = scan_stratifiers(
            &ds2,
            "admitted",
            "gender",
            "male",
            "female",
            &["dummy", "department"],
        )
        .unwrap();
        // department (reversal or near-vanishing) should sort before dummy
        // when a true reversal is present
        if reports[0].reversal {
            assert_eq!(reports[0].stratifier, "department");
        }
        assert_eq!(reports.len(), 2);
    }

    #[test]
    fn validation() {
        let ds = generate_admissions(&AdmissionsConfig { n: 200, seed: 0 });
        assert!(audit_simpson(&ds, "admitted", "gender", "alien", "female", "department").is_err());
        assert!(audit_simpson(&ds, "ghost", "gender", "male", "female", "department").is_err());
    }
}
