//! The hypothesis registry: multiple testing made impossible to ignore.
//!
//! Every test an analysis runs is *registered*; raw p-values are recorded but
//! never surfaced as verdicts. Only [`HypothesisRegistry::report`] produces
//! significance calls, and it always applies a family-wise or FDR correction
//! over everything registered. This is the paper's accuracy pillar turned
//! into an API invariant: you cannot ask "is it significant?" without also
//! answering "out of how many attempts?".

use fact_data::{FactError, Result};
use fact_stats::multiple::{benjamini_hochberg, benjamini_yekutieli, bonferroni, holm, sidak};

/// Correction procedure for the registered family.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CorrectionMethod {
    /// Bonferroni (FWER).
    Bonferroni,
    /// Holm step-down (FWER).
    Holm,
    /// Šidák (FWER, independence).
    Sidak,
    /// Benjamini–Hochberg (FDR).
    BenjaminiHochberg,
    /// Benjamini–Yekutieli (FDR, arbitrary dependence).
    BenjaminiYekutieli,
}

/// A registered hypothesis.
#[derive(Debug, Clone)]
pub struct Hypothesis {
    /// Human-readable description.
    pub label: String,
    /// Raw (uncorrected) p-value.
    pub p_value: f64,
}

/// The corrected outcome for one hypothesis.
#[derive(Debug, Clone)]
pub struct HypothesisOutcome {
    /// Description.
    pub label: String,
    /// Raw p-value.
    pub raw_p: f64,
    /// Corrected p-value.
    pub adjusted_p: f64,
    /// Whether the corrected p-value clears `alpha`.
    pub significant: bool,
}

/// Family-level report.
#[derive(Debug, Clone)]
pub struct RegistryReport {
    /// Outcomes in registration order.
    pub outcomes: Vec<HypothesisOutcome>,
    /// The significance level used.
    pub alpha: f64,
    /// The correction applied.
    pub method: CorrectionMethod,
    /// How many raw p-values were below alpha (what a naive analyst would
    /// have claimed).
    pub naive_discoveries: usize,
    /// How many survive correction.
    pub corrected_discoveries: usize,
}

/// A ledger of every hypothesis tested in an analysis.
///
/// ```
/// use fact_accuracy::registry::{CorrectionMethod, HypothesisRegistry};
/// let mut reg = HypothesisRegistry::new();
/// reg.register("real effect", 1e-7).unwrap();
/// for i in 0..99 {
///     reg.register(format!("noise {i}"), 0.04 + 0.009 * i as f64).unwrap();
/// }
/// let report = reg.report(0.05, CorrectionMethod::Holm).unwrap();
/// assert!(report.naive_discoveries > 1);       // fishing "works"...
/// assert_eq!(report.corrected_discoveries, 1); // ...until corrected
/// ```
#[derive(Debug, Clone, Default)]
pub struct HypothesisRegistry {
    hypotheses: Vec<Hypothesis>,
}

impl HypothesisRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register one test result.
    pub fn register(&mut self, label: impl Into<String>, p_value: f64) -> Result<()> {
        if !(0.0..=1.0).contains(&p_value) || p_value.is_nan() {
            return Err(FactError::InvalidArgument(format!(
                "p-value must be in [0, 1], got {p_value}"
            )));
        }
        self.hypotheses.push(Hypothesis {
            label: label.into(),
            p_value,
        });
        Ok(())
    }

    /// Number of registered hypotheses.
    pub fn len(&self) -> usize {
        self.hypotheses.len()
    }

    /// Whether nothing has been registered yet.
    pub fn is_empty(&self) -> bool {
        self.hypotheses.is_empty()
    }

    /// Produce the corrected family report.
    pub fn report(&self, alpha: f64, method: CorrectionMethod) -> Result<RegistryReport> {
        if !(0.0 < alpha && alpha < 1.0) {
            return Err(FactError::InvalidArgument(format!(
                "alpha must be in (0, 1), got {alpha}"
            )));
        }
        let raw: Vec<f64> = self.hypotheses.iter().map(|h| h.p_value).collect();
        let adjusted = match method {
            CorrectionMethod::Bonferroni => bonferroni(&raw)?,
            CorrectionMethod::Holm => holm(&raw)?,
            CorrectionMethod::Sidak => sidak(&raw)?,
            CorrectionMethod::BenjaminiHochberg => benjamini_hochberg(&raw)?,
            CorrectionMethod::BenjaminiYekutieli => benjamini_yekutieli(&raw)?,
        };
        let outcomes: Vec<HypothesisOutcome> = self
            .hypotheses
            .iter()
            .zip(&adjusted)
            .map(|(h, &ap)| HypothesisOutcome {
                label: h.label.clone(),
                raw_p: h.p_value,
                adjusted_p: ap,
                significant: ap <= alpha,
            })
            .collect();
        Ok(RegistryReport {
            naive_discoveries: raw.iter().filter(|&&p| p <= alpha).count(),
            corrected_discoveries: outcomes.iter().filter(|o| o.significant).count(),
            outcomes,
            alpha,
            method,
        })
    }
}

impl RegistryReport {
    /// Labels of the hypotheses that survive correction.
    pub fn significant_labels(&self) -> Vec<&str> {
        self.outcomes
            .iter()
            .filter(|o| o.significant)
            .map(|o| o.label.as_str())
            .collect()
    }

    /// How many naive discoveries the correction withdrew.
    pub fn discoveries_withdrawn(&self) -> usize {
        self.naive_discoveries
            .saturating_sub(self.corrected_discoveries)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_corrects_a_fishing_expedition() {
        // 100 true-null p-values drawn as a uniform grid: naive analysis
        // "discovers" the 5 below .05; every correction withdraws them.
        let mut reg = HypothesisRegistry::new();
        for i in 1..=100 {
            reg.register(format!("predictor_{i}"), i as f64 / 101.0)
                .unwrap();
        }
        let rep = reg.report(0.05, CorrectionMethod::Holm).unwrap();
        assert_eq!(rep.naive_discoveries, 5);
        assert_eq!(rep.corrected_discoveries, 0);
        assert_eq!(rep.discoveries_withdrawn(), 5);
    }

    #[test]
    fn strong_signal_survives_correction() {
        let mut reg = HypothesisRegistry::new();
        reg.register("real effect", 1e-8).unwrap();
        for i in 0..49 {
            reg.register(format!("noise_{i}"), 0.3 + 0.01 * i as f64)
                .unwrap();
        }
        let rep = reg.report(0.05, CorrectionMethod::Bonferroni).unwrap();
        assert_eq!(rep.significant_labels(), vec!["real effect"]);
    }

    #[test]
    fn fdr_less_conservative_than_fwer() {
        let mut reg = HypothesisRegistry::new();
        // ten small p-values: individually strong but only a few clear the
        // Bonferroni bar at m=100, while BH keeps them all
        for i in 0..10 {
            reg.register(format!("h{i}"), 0.0001 + 0.0004 * i as f64)
                .unwrap();
        }
        for i in 0..90 {
            reg.register(format!("null{i}"), 0.2 + 0.008 * i as f64)
                .unwrap();
        }
        let bh = reg
            .report(0.05, CorrectionMethod::BenjaminiHochberg)
            .unwrap();
        let bonf = reg.report(0.05, CorrectionMethod::Bonferroni).unwrap();
        assert!(bh.corrected_discoveries >= bonf.corrected_discoveries);
        assert!(bh.corrected_discoveries > 0);
    }

    #[test]
    fn outcomes_preserve_registration_order() {
        let mut reg = HypothesisRegistry::new();
        reg.register("first", 0.9).unwrap();
        reg.register("second", 0.001).unwrap();
        let rep = reg.report(0.05, CorrectionMethod::Holm).unwrap();
        assert_eq!(rep.outcomes[0].label, "first");
        assert_eq!(rep.outcomes[1].label, "second");
        assert!(!rep.outcomes[0].significant);
        assert!(rep.outcomes[1].significant);
    }

    #[test]
    fn validation() {
        let mut reg = HypothesisRegistry::new();
        assert!(reg.register("bad", 1.5).is_err());
        assert!(reg.register("nan", f64::NAN).is_err());
        assert!(reg.is_empty());
        reg.register("ok", 0.5).unwrap();
        assert_eq!(reg.len(), 1);
        assert!(reg.report(0.0, CorrectionMethod::Holm).is_err());
        assert!(reg.report(1.0, CorrectionMethod::Holm).is_err());
    }

    #[test]
    fn empty_registry_reports_error() {
        let reg = HypothesisRegistry::new();
        assert!(reg.report(0.05, CorrectionMethod::Holm).is_err());
    }
}
