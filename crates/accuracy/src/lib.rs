//! # fact-accuracy — the Accuracy pillar (Q2)
//!
//! "Data science without guesswork — how to answer questions with a
//! guaranteed level of accuracy?" (van der Aalst et al. 2017, §2). The paper
//! names three failure modes and this crate counters each:
//!
//! | Paper warning | Counter |
//! |---|---|
//! | "If enough hypotheses are tested, one will eventually be true" (the terrorist/eye-color example) | [`registry`] — a hypothesis ledger that *forces* every p-value through multiple-testing correction before anything may be called significant |
//! | "Simpson's paradox … a trend appears in different groups but disappears or reverses when these groups are combined" | [`simpson`] — an auditor that scans candidate stratifying variables for trend reversals |
//! | Results without "meta-information on the accuracy of the output" | [`uncertainty`] — bootstrap prediction intervals for any classifier; [`adequacy`] — statistical-power warnings before an analysis is trusted |
//! | analyst degrees of freedom ("false claims" from forking paths) | [`specification`] — specification-curve analysis over every defensible control set |

#![warn(missing_docs)]

pub mod adequacy;
pub mod registry;
pub mod simpson;
pub mod specification;
pub mod uncertainty;

pub use registry::{CorrectionMethod, HypothesisRegistry, RegistryReport};
pub use simpson::{audit_simpson, SimpsonReport};
