//! Specification-curve analysis ("garden of forking paths").
//!
//! The paper's deepest accuracy worry is not a single bad test but *analyst
//! degrees of freedom*: with many defensible ways to run an analysis, a
//! motivated analyst will find one that "works", and "the likelihood of
//! young and ambitious 'data scientists' making false claims is high" (§2).
//! A specification curve runs **every** defensible specification — all
//! subsets of control variables, here — and reports the full distribution of
//! effect estimates. A robust effect keeps its sign across the curve; a
//! forked-path artifact flips.

use fact_data::{Dataset, FactError, Matrix, Result};
use fact_ml::linear::LinearRegression;

/// One analysis specification and its estimate.
#[derive(Debug, Clone)]
pub struct SpecResult {
    /// Control variables included.
    pub controls: Vec<String>,
    /// Estimated coefficient of the focal predictor on the outcome.
    pub effect: f64,
}

/// The full curve.
#[derive(Debug, Clone)]
pub struct SpecCurve {
    /// One result per specification, sorted by effect size.
    pub results: Vec<SpecResult>,
    /// Median effect across specifications.
    pub median_effect: f64,
    /// Fraction of specifications whose effect shares the median's sign.
    pub sign_stability: f64,
}

impl SpecCurve {
    /// A heuristic robustness verdict: ≥ 95% of specifications agree in sign
    /// and the median is not ~zero.
    pub fn is_robust(&self) -> bool {
        self.sign_stability >= 0.95 && self.median_effect.abs() > 1e-9
    }
}

/// Run a specification curve: regress `outcome` on `focal` with every subset
/// of `controls` (2^k linear-probability/OLS regressions with a small ridge
/// for stability) and collect the focal coefficient from each.
///
/// `controls` is capped at 12 (4096 specifications) to bound cost.
///
/// ```
/// use fact_accuracy::specification::specification_curve;
/// use fact_data::Dataset;
/// let x: Vec<f64> = (0..100).map(|i| i as f64 / 50.0 - 1.0).collect();
/// let c: Vec<f64> = x.iter().map(|v| v * 0.5).collect();
/// let y: Vec<f64> = x.iter().map(|v| 2.0 * v + 0.1).collect();
/// let ds = Dataset::builder().f64("x", x).f64("c", c).f64("y", y).build().unwrap();
/// let curve = specification_curve(&ds, "y", "x", &["c"]).unwrap();
/// assert_eq!(curve.results.len(), 2); // with and without the control
/// assert!(curve.sign_stability >= 0.95);
/// ```
pub fn specification_curve(
    ds: &Dataset,
    outcome: &str,
    focal: &str,
    controls: &[&str],
) -> Result<SpecCurve> {
    if controls.len() > 12 {
        return Err(FactError::InvalidArgument(
            "at most 12 control variables (4096 specifications)".into(),
        ));
    }
    let y = ds.f64_column(outcome).or_else(|_| {
        ds.bool_column(outcome)
            .map(|b| b.iter().map(|&v| if v { 1.0 } else { 0.0 }).collect())
    })?;
    let focal_vals = ds.f64_column(focal)?;
    let control_vals: Vec<Vec<f64>> = controls
        .iter()
        .map(|&c| ds.f64_column(c))
        .collect::<Result<_>>()?;

    let n_specs = 1usize << controls.len();
    let mut results = Vec::with_capacity(n_specs);
    for mask in 0..n_specs {
        let mut cols: Vec<Vec<f64>> = vec![focal_vals.clone()];
        let mut names = Vec::new();
        for (i, cv) in control_vals.iter().enumerate() {
            if mask & (1 << i) != 0 {
                cols.push(cv.clone());
                names.push(controls[i].to_string());
            }
        }
        let x = Matrix::from_columns(&cols, y.len())?;
        let model = LinearRegression::fit(&x, &y, 1e-6, None)?;
        results.push(SpecResult {
            controls: names,
            effect: model.coefficients()[1], // [intercept, focal, ...]
        });
    }
    results.sort_by(|a, b| {
        a.effect
            .partial_cmp(&b.effect)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let median_effect = results[results.len() / 2].effect;
    let sign = median_effect.signum();
    let agree = results.iter().filter(|r| r.effect.signum() == sign).count();
    Ok(SpecCurve {
        sign_stability: agree as f64 / results.len() as f64,
        median_effect,
        results,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use fact_data::Dataset;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// A world with a real effect of `x` on `y`, plus correlated controls.
    fn real_effect_world(n: usize) -> Dataset {
        let mut rng = StdRng::seed_from_u64(1);
        let mut x = Vec::new();
        let mut c1 = Vec::new();
        let mut c2 = Vec::new();
        let mut y = Vec::new();
        for _ in 0..n {
            let xv: f64 = rng.gen_range(-1.0..1.0);
            let c1v: f64 = 0.5 * xv + rng.gen_range(-1.0..1.0);
            let c2v: f64 = rng.gen_range(-1.0..1.0);
            y.push(2.0 * xv + 0.5 * c1v + rng.gen_range(-0.5..0.5));
            x.push(xv);
            c1.push(c1v);
            c2.push(c2v);
        }
        Dataset::builder()
            .f64("x", x)
            .f64("c1", c1)
            .f64("c2", c2)
            .f64("y", y)
            .build()
            .unwrap()
    }

    /// A world where x has NO effect; a confounder drives both.
    fn spurious_world(n: usize) -> Dataset {
        let mut rng = StdRng::seed_from_u64(2);
        let mut x = Vec::new();
        let mut conf = Vec::new();
        let mut y = Vec::new();
        for _ in 0..n {
            let u: f64 = rng.gen_range(-1.0..1.0);
            x.push(u + rng.gen_range(-0.2..0.2));
            conf.push(u);
            y.push(-u + rng.gen_range(-0.2..0.2)); // y anti-tracks u
        }
        Dataset::builder()
            .f64("x", x)
            .f64("conf", conf)
            .f64("y", y)
            .build()
            .unwrap()
    }

    #[test]
    fn real_effect_is_sign_stable_across_specs() {
        let ds = real_effect_world(3_000);
        let curve = specification_curve(&ds, "y", "x", &["c1", "c2"]).unwrap();
        assert_eq!(curve.results.len(), 4);
        assert!(curve.is_robust(), "median {}", curve.median_effect);
        assert!((curve.median_effect - 2.0).abs() < 0.4);
        assert_eq!(curve.sign_stability, 1.0);
    }

    #[test]
    fn confounded_effect_flips_when_the_confounder_enters() {
        let ds = spurious_world(3_000);
        let curve = specification_curve(&ds, "y", "x", &["conf"]).unwrap();
        // without the confounder, x looks strongly negative; with it, the
        // coefficient changes drastically (the confounder absorbs the signal)
        let naive = curve
            .results
            .iter()
            .find(|r| r.controls.is_empty())
            .unwrap()
            .effect;
        let adjusted = curve
            .results
            .iter()
            .find(|r| !r.controls.is_empty())
            .unwrap()
            .effect;
        assert!(naive < -0.5, "naive spec sees a big effect: {naive}");
        assert!(
            (adjusted - naive).abs() > 0.5,
            "controlling the confounder moves the estimate: {naive} → {adjusted}"
        );
    }

    #[test]
    fn boolean_outcomes_work_as_linear_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 2_000;
        let x: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let y: Vec<bool> = x
            .iter()
            .map(|&v| v + rng.gen_range(-0.5..0.5) > 0.0)
            .collect();
        let ds = Dataset::builder()
            .f64("x", x)
            .boolean("y", y)
            .build()
            .unwrap();
        let curve = specification_curve(&ds, "y", "x", &[]).unwrap();
        assert_eq!(curve.results.len(), 1);
        assert!(curve.median_effect > 0.3);
    }

    #[test]
    fn validation() {
        let ds = real_effect_world(100);
        let many: Vec<&str> = vec!["c1"; 13];
        assert!(specification_curve(&ds, "y", "x", &many).is_err());
        assert!(specification_curve(&ds, "ghost", "x", &[]).is_err());
        assert!(specification_curve(&ds, "y", "ghost", &[]).is_err());
    }
}
