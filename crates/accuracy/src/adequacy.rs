//! Sample-size adequacy checks.
//!
//! A "guaranteed level of accuracy" (§2, Q2) is impossible from an
//! underpowered sample; worse, fairness audits silently degrade when a
//! protected subgroup is tiny (the paper's "minorities may be
//! underrepresented"). These checks run *before* analysis and emit warnings
//! that `fact-core` attaches to every report.

use fact_data::{Dataset, FactError, Result};
use fact_stats::power::{power_two_means, sample_size_two_proportions};

/// An adequacy warning.
#[derive(Debug, Clone, PartialEq)]
pub struct AdequacyWarning {
    /// What is underpowered.
    pub subject: String,
    /// Human-readable explanation.
    pub message: String,
}

/// Check whether per-group sizes can detect a difference between proportions
/// `p1` and `p2` at `alpha`/`power`. Returns warnings for each undersized
/// group (empty = adequate).
pub fn check_two_proportion_adequacy(
    n1: usize,
    n2: usize,
    p1: f64,
    p2: f64,
    alpha: f64,
    power: f64,
) -> Result<Vec<AdequacyWarning>> {
    let required = sample_size_two_proportions(p1, p2, alpha, power)?;
    let mut warnings = Vec::new();
    for (name, n) in [("group 1", n1), ("group 2", n2)] {
        if n < required {
            warnings.push(AdequacyWarning {
                subject: name.to_string(),
                message: format!(
                    "{name} has n={n} but detecting {p1:.2} vs {p2:.2} at power {power} needs n≥{required}"
                ),
            });
        }
    }
    Ok(warnings)
}

/// Achieved power for comparing two groups of sizes `n1`, `n2` on a
/// standardized effect `d` (uses the harmonic-mean group size).
pub fn achieved_power(n1: usize, n2: usize, d: f64, alpha: f64) -> Result<f64> {
    if n1 == 0 || n2 == 0 {
        return Err(FactError::EmptyData("power with an empty group".into()));
    }
    let harmonic = 2.0 / (1.0 / n1 as f64 + 1.0 / n2 as f64);
    power_two_means(harmonic.round() as usize, d, alpha)
}

/// Audit a dataset's group sizes: warn about any group of `group_col` whose
/// size is below `min_n` (a floor for any trustworthy per-group statistic).
pub fn check_group_sizes(
    ds: &Dataset,
    group_col: &str,
    min_n: usize,
) -> Result<Vec<AdequacyWarning>> {
    let groups = ds.group_by(group_col)?;
    let mut warnings = Vec::new();
    for (key, n) in groups.counts() {
        if n < min_n {
            warnings.push(AdequacyWarning {
                subject: format!("{group_col}={key}"),
                message: format!(
                    "group '{key}' has only {n} rows (< {min_n}); per-group estimates will be unreliable"
                ),
            });
        }
    }
    Ok(warnings)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_groups_warn_large_groups_pass() {
        let w = check_two_proportion_adequacy(50, 1000, 0.5, 0.6, 0.05, 0.8).unwrap();
        assert_eq!(w.len(), 1);
        assert_eq!(w[0].subject, "group 1");
        let ok = check_two_proportion_adequacy(500, 500, 0.5, 0.6, 0.05, 0.8).unwrap();
        assert!(ok.is_empty());
    }

    #[test]
    fn achieved_power_behaves() {
        let low = achieved_power(20, 20, 0.3, 0.05).unwrap();
        let high = achieved_power(500, 500, 0.3, 0.05).unwrap();
        assert!(low < 0.5);
        assert!(high > 0.95);
        assert!(achieved_power(0, 10, 0.3, 0.05).is_err());
    }

    #[test]
    fn unbalanced_groups_use_harmonic_mean() {
        // (10, 10000) is barely better than (10, 10): harmonic mean ≈ 20
        let unbalanced = achieved_power(10, 10_000, 0.5, 0.05).unwrap();
        let tiny = achieved_power(10, 10, 0.5, 0.05).unwrap();
        assert!(unbalanced - tiny < 0.2);
    }

    #[test]
    fn dataset_group_size_audit() {
        let labels: Vec<&str> = (0..100)
            .map(|i| if i < 95 { "majority" } else { "minority" })
            .collect();
        let ds = Dataset::builder().cat("g", &labels).build().unwrap();
        let w = check_group_sizes(&ds, "g", 30).unwrap();
        assert_eq!(w.len(), 1);
        assert!(w[0].subject.contains("minority"));
        assert!(check_group_sizes(&ds, "g", 2).unwrap().is_empty());
    }
}
