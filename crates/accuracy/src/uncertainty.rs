//! Bootstrap prediction uncertainty.
//!
//! "Data science approaches should not just present results or make
//! predictions, but also explicitly provide meta-information on the accuracy
//! of the output" (§2). [`BootstrapEnsemble`] wraps *any* classifier trainer:
//! it fits `B` replicas on bootstrap resamples and reports, per prediction,
//! the ensemble mean plus a percentile interval — turning a bare score into
//! a score with error bars.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use fact_data::{FactError, Matrix, Result};
use fact_ml::Classifier;
use fact_stats::descriptive::quantile;

/// A prediction annotated with uncertainty.
#[derive(Debug, Clone, PartialEq)]
pub struct UncertainPrediction {
    /// Ensemble-mean probability.
    pub mean: f64,
    /// Lower percentile bound.
    pub lower: f64,
    /// Upper percentile bound.
    pub upper: f64,
    /// Ensemble standard deviation.
    pub std: f64,
}

impl UncertainPrediction {
    /// Interval width — the honest "how sure are we" number.
    pub fn width(&self) -> f64 {
        self.upper - self.lower
    }

    /// Whether the decision at 0.5 is stable across the whole interval.
    pub fn decision_is_stable(&self) -> bool {
        self.lower >= 0.5 || self.upper < 0.5
    }
}

/// An ensemble of classifiers fit on bootstrap resamples.
pub struct BootstrapEnsemble {
    members: Vec<Box<dyn Classifier + Send + Sync>>,
    level: f64,
}

impl BootstrapEnsemble {
    /// Fit `n_members` replicas. `trainer` receives a bootstrap-resampled
    /// `(x, y)` and a per-member seed.
    ///
    /// Bootstrap indices are drawn up front from the seeded master RNG in
    /// member order (the exact stream the sequential implementation used),
    /// then the replicas train in parallel — the fitted ensemble is
    /// bit-identical at any worker count.
    pub fn fit<F>(
        x: &Matrix,
        y: &[bool],
        n_members: usize,
        level: f64,
        seed: u64,
        trainer: F,
    ) -> Result<Self>
    where
        F: Fn(&Matrix, &[bool], u64) -> Result<Box<dyn Classifier + Send + Sync>> + Sync,
    {
        if x.rows() != y.len() {
            return Err(FactError::LengthMismatch {
                expected: x.rows(),
                actual: y.len(),
            });
        }
        if n_members < 2 {
            return Err(FactError::InvalidArgument(
                "ensemble needs at least 2 members".into(),
            ));
        }
        if !(0.0 < level && level < 1.0) {
            return Err(FactError::InvalidArgument(format!(
                "level must be in (0, 1), got {level}"
            )));
        }
        let n = x.rows();
        let mut rng = StdRng::seed_from_u64(seed);
        let indices: Vec<Vec<usize>> = (0..n_members)
            .map(|_| (0..n).map(|_| rng.gen_range(0..n)).collect())
            .collect();
        let members = fact_par::par_map(n_members, 1, |m| {
            let mut xb = Matrix::zeros(n, x.cols());
            let mut yb = Vec::with_capacity(n);
            for (r, &i) in indices[m].iter().enumerate() {
                for j in 0..x.cols() {
                    xb.set(r, j, x.get(i, j));
                }
                yb.push(y[i]);
            }
            trainer(&xb, &yb, seed.wrapping_add(m as u64 + 1))
        });
        let members = members.into_iter().collect::<Result<Vec<_>>>()?;
        Ok(BootstrapEnsemble { members, level })
    }

    /// Number of ensemble members.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the ensemble is empty (never true after a successful fit).
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Predict with uncertainty for each row of `x`.
    ///
    /// Members predict in parallel, then rows aggregate in parallel; both
    /// stages are per-index independent, so the output is bit-identical at
    /// any worker count.
    pub fn predict_with_uncertainty(&self, x: &Matrix) -> Result<Vec<UncertainPrediction>> {
        let all = fact_par::par_map(self.members.len(), 1, |m| self.members[m].predict_proba(x))
            .into_iter()
            .collect::<Result<Vec<Vec<f64>>>>()?;
        let alpha = (1.0 - self.level) / 2.0;
        let b = self.members.len() as f64;
        fact_par::par_map(x.rows(), 64, |i| {
            let column: Vec<f64> = all.iter().map(|preds| preds[i]).collect();
            let mean = column.iter().sum::<f64>() / b;
            let var = column.iter().map(|p| (p - mean).powi(2)).sum::<f64>() / (b - 1.0);
            Ok(UncertainPrediction {
                mean,
                lower: quantile(&column, alpha)?,
                upper: quantile(&column, 1.0 - alpha)?,
                std: var.sqrt(),
            })
        })
        .into_iter()
        .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fact_ml::logistic::{LogisticConfig, LogisticRegression};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn world(n: usize, seed: u64) -> (Matrix, Vec<bool>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut rows = Vec::with_capacity(n);
        let mut y = Vec::with_capacity(n);
        for _ in 0..n {
            let a: f64 = rng.gen_range(-2.0..2.0);
            let b: f64 = rng.gen_range(-2.0..2.0);
            rows.push(vec![a, b]);
            // noisy boundary
            y.push(a + b + rng.gen_range(-0.8..0.8) > 0.0);
        }
        (Matrix::from_rows(&rows).unwrap(), y)
    }

    fn trainer(x: &Matrix, y: &[bool], seed: u64) -> Result<Box<dyn Classifier + Send + Sync>> {
        let cfg = LogisticConfig {
            seed,
            epochs: 25,
            ..LogisticConfig::default()
        };
        Ok(Box::new(LogisticRegression::fit(x, y, None, &cfg)?))
    }

    #[test]
    fn intervals_contain_the_mean() {
        let (x, y) = world(600, 1);
        let ens = BootstrapEnsemble::fit(&x, &y, 15, 0.9, 7, trainer).unwrap();
        assert_eq!(ens.len(), 15);
        for p in ens.predict_with_uncertainty(&x.clone()).unwrap() {
            assert!(p.lower <= p.mean + 1e-9 && p.mean <= p.upper + 1e-9);
            assert!(p.width() >= 0.0);
            assert!((0.0..=1.0).contains(&p.mean));
        }
    }

    #[test]
    fn uncertainty_larger_near_the_boundary() {
        let (x, y) = world(800, 2);
        let ens = BootstrapEnsemble::fit(&x, &y, 20, 0.9, 3, trainer).unwrap();
        // boundary point vs deep-in-class point
        let probe = Matrix::from_rows(&[vec![0.0, 0.0], vec![2.0, 2.0]]).unwrap();
        let preds = ens.predict_with_uncertainty(&probe).unwrap();
        assert!(
            preds[0].std > preds[1].std,
            "boundary std {} > interior std {}",
            preds[0].std,
            preds[1].std
        );
        assert!(preds[1].decision_is_stable());
    }

    #[test]
    fn more_data_tightens_intervals() {
        let (x_small, y_small) = world(100, 4);
        let (x_big, y_big) = world(5000, 4);
        let probe = Matrix::from_rows(&[vec![0.5, 0.5]]).unwrap();
        let w_small = BootstrapEnsemble::fit(&x_small, &y_small, 20, 0.9, 5, trainer)
            .unwrap()
            .predict_with_uncertainty(&probe)
            .unwrap()[0]
            .width();
        let w_big = BootstrapEnsemble::fit(&x_big, &y_big, 20, 0.9, 5, trainer)
            .unwrap()
            .predict_with_uncertainty(&probe)
            .unwrap()[0]
            .width();
        assert!(
            w_big < w_small,
            "big-data width {w_big} < small-data width {w_small}"
        );
    }

    #[test]
    fn ensemble_is_worker_count_invariant() {
        let (x, y) = world(300, 8);
        let probe = Matrix::from_rows(&[vec![0.2, -0.4], vec![1.0, 1.0]]).unwrap();
        fact_par::set_workers(1);
        let p1 = BootstrapEnsemble::fit(&x, &y, 8, 0.9, 13, trainer)
            .unwrap()
            .predict_with_uncertainty(&probe)
            .unwrap();
        fact_par::set_workers(4);
        let p4 = BootstrapEnsemble::fit(&x, &y, 8, 0.9, 13, trainer)
            .unwrap()
            .predict_with_uncertainty(&probe)
            .unwrap();
        fact_par::set_workers(0);
        assert_eq!(p1, p4);
    }

    #[test]
    fn validation() {
        let (x, y) = world(50, 6);
        assert!(BootstrapEnsemble::fit(&x, &y, 1, 0.9, 0, trainer).is_err());
        assert!(BootstrapEnsemble::fit(&x, &y, 5, 1.0, 0, trainer).is_err());
        assert!(BootstrapEnsemble::fit(&x, &y[..10], 5, 0.9, 0, trainer).is_err());
    }
}
