//! # fact-fairness — the Fairness pillar (Q1)
//!
//! "Data science without prejudice — how to avoid unfair conclusions even if
//! they are true?" (van der Aalst et al. 2017, §2). The paper warns that
//! training data may encode historical bias, that minorities may be
//! underrepresented, and that *"even if sensitive attributes are omitted,
//! members of certain groups may still be systematically rejected"* through
//! redundant encodings. This crate provides, correspondingly:
//!
//! * [`metrics`] — group fairness measures: statistical parity, disparate
//!   impact, equal opportunity, equalized odds, predictive parity;
//! * [`report`] — a one-call fairness audit with four-fifths-rule verdicts;
//! * [`proxy`] — detection of features that *leak* the protected attribute;
//! * [`consistency`] — individual fairness (similar people, similar scores);
//! * [`intersectional`] — subgroup audits over attribute combinations (the
//!   stigmatized intersections single-attribute audits miss);
//! * [`mitigation`] — pre-processing (reweighing, disparate-impact repair),
//!   in-processing (prejudice-remover regularizer), and post-processing
//!   (per-group threshold optimization) interventions;
//! * [`summary`] — mergeable sliding-window monitor summaries (paired
//!   count-vectors per window segment) that checkpoint, merge, and split a
//!   streaming monitor's state across process boundaries.
//!
//! The protected group is always expressed as a boolean mask (`true` =
//! member of the protected group), constructed from a dataset column with
//! [`protected_mask`].

#![warn(missing_docs)]

pub mod consistency;
pub mod intersectional;
pub mod metrics;
pub mod mitigation;
pub mod proxy;
pub mod report;
pub mod summary;

pub use report::{FairnessReport, FairnessThresholds};
pub use summary::{SegmentCounts, WindowSummary};

use fact_data::{Dataset, FactError, Result};

/// Build a protected-group mask from a categorical column: `true` where the
/// row's label equals `protected_label`.
pub fn protected_mask(ds: &Dataset, column: &str, protected_label: &str) -> Result<Vec<bool>> {
    let labels = ds.labels(column)?;
    if !labels.iter().any(|l| l == protected_label) {
        return Err(FactError::InvalidArgument(format!(
            "label '{protected_label}' does not occur in column '{column}'"
        )));
    }
    Ok(labels.iter().map(|l| l == protected_label).collect())
}

/// [`protected_mask`] over an on-disk segment set: builds the mask from the
/// single categorical column, reading nothing else. Rows are compared by
/// dictionary code (no per-row label materialization); the mask is in
/// segment/row order, matching `SegmentSet::to_dataset` row order.
pub fn protected_mask_segments(
    set: &fact_data::SegmentSet,
    column: &str,
    protected_label: &str,
) -> Result<(Vec<bool>, fact_data::ScanStats)> {
    let (ds, stats) = set.scan_columns(&[column], &fact_data::Predicate::All)?;
    let col = ds.column(column)?;
    let cat = col.as_cat()?;
    let target = match cat.code_of(protected_label) {
        Some(c) => c,
        None => {
            return Err(FactError::InvalidArgument(format!(
                "label '{protected_label}' does not occur in column '{column}'"
            )))
        }
    };
    let mask: Vec<bool> = cat
        .codes
        .iter()
        .enumerate()
        .map(|(i, &c)| !col.is_null(i) && c == target)
        .collect();
    if !mask.iter().any(|&m| m) {
        return Err(FactError::InvalidArgument(format!(
            "label '{protected_label}' does not occur in column '{column}'"
        )));
    }
    Ok((mask, stats))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mask_from_column() {
        let ds = Dataset::builder()
            .cat("g", &["A", "B", "B", "A"])
            .build()
            .unwrap();
        assert_eq!(
            protected_mask(&ds, "g", "B").unwrap(),
            vec![false, true, true, false]
        );
        assert!(protected_mask(&ds, "g", "C").is_err());
        assert!(protected_mask(&ds, "nope", "B").is_err());
    }
}
