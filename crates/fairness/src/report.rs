//! One-call fairness audit with verdicts.
//!
//! The paper asks for "approaches … to detect unfair decisions (e.g.,
//! unintended discrimination)" (§2). [`FairnessReport::audit`] computes every
//! group metric at once and grades them against configurable thresholds
//! (defaulting to the EEOC four-fifths rule for disparate impact).

use std::fmt;

use fact_data::Result;
use serde::{Deserialize, Serialize};

use crate::metrics::{
    disparate_impact, equal_opportunity_difference, equalized_odds_difference, group_accuracy,
    predictive_parity_difference, selection_rates, statistical_parity_difference,
};

/// Pass/fail thresholds for the audit.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FairnessThresholds {
    /// Minimum acceptable disparate-impact ratio (default `0.8`, the
    /// four-fifths rule; symmetric: ratios above `1/0.8` also fail).
    pub min_disparate_impact: f64,
    /// Maximum acceptable |statistical parity difference| (default `0.1`).
    pub max_parity_difference: f64,
    /// Maximum acceptable equalized-odds distance (default `0.1`).
    pub max_equalized_odds: f64,
}

impl Default for FairnessThresholds {
    fn default() -> Self {
        FairnessThresholds {
            min_disparate_impact: 0.8,
            max_parity_difference: 0.1,
            max_equalized_odds: 0.1,
        }
    }
}

/// The complete audit result.
///
/// ```
/// use fact_fairness::{FairnessReport, FairnessThresholds};
/// // protected group (first 4) selected at half the rate of the rest
/// let pred = [true, false, false, false, true, true, false, false];
/// let mask = [true, true, true, true, false, false, false, false];
/// let report = FairnessReport::audit(None, &pred, &mask, FairnessThresholds::default()).unwrap();
/// assert!(report.disparate_impact < 0.8);
/// assert!(!report.is_fair());
/// ```
#[derive(Debug, Clone)]
pub struct FairnessReport {
    /// Protected-group selection rate.
    pub selection_rate_protected: f64,
    /// Unprotected-group selection rate.
    pub selection_rate_unprotected: f64,
    /// `unprotected − protected` selection-rate gap.
    pub statistical_parity_difference: f64,
    /// `protected / unprotected` selection-rate ratio.
    pub disparate_impact: f64,
    /// TPR gap (requires ground truth); `None` when truth was not supplied
    /// or a group had no positives.
    pub equal_opportunity_difference: Option<f64>,
    /// Equalized-odds distance (requires ground truth).
    pub equalized_odds_difference: Option<f64>,
    /// Precision gap (requires ground truth).
    pub predictive_parity_difference: Option<f64>,
    /// Per-group accuracy `(protected, unprotected)` (requires ground truth).
    pub group_accuracy: Option<(f64, f64)>,
    /// Protected-group size.
    pub n_protected: usize,
    /// Unprotected-group size.
    pub n_unprotected: usize,
    /// Thresholds the verdict was graded against.
    pub thresholds: FairnessThresholds,
}

impl FairnessReport {
    /// Audit predictions. `truth` unlocks the error-rate metrics; without it
    /// only selection-based metrics are reported (all that is available for
    /// unlabeled production traffic).
    pub fn audit(
        truth: Option<&[bool]>,
        pred: &[bool],
        mask: &[bool],
        thresholds: FairnessThresholds,
    ) -> Result<Self> {
        let (sr_p, sr_u) = selection_rates(pred, mask)?;
        let spd = statistical_parity_difference(pred, mask)?;
        let di = disparate_impact(pred, mask)?;
        let (eod, eqo, ppd, gacc) = match truth {
            Some(t) => (
                equal_opportunity_difference(t, pred, mask).ok(),
                equalized_odds_difference(t, pred, mask).ok(),
                predictive_parity_difference(t, pred, mask).ok(),
                group_accuracy(t, pred, mask).ok(),
            ),
            None => (None, None, None, None),
        };
        Ok(FairnessReport {
            selection_rate_protected: sr_p,
            selection_rate_unprotected: sr_u,
            statistical_parity_difference: spd,
            disparate_impact: di,
            equal_opportunity_difference: eod,
            equalized_odds_difference: eqo,
            predictive_parity_difference: ppd,
            group_accuracy: gacc,
            n_protected: mask.iter().filter(|&&m| m).count(),
            n_unprotected: mask.iter().filter(|&&m| !m).count(),
            thresholds,
        })
    }

    /// Whether disparate impact passes the (symmetric) four-fifths-style rule.
    pub fn passes_disparate_impact(&self) -> bool {
        let t = self.thresholds.min_disparate_impact;
        self.disparate_impact >= t && self.disparate_impact <= 1.0 / t
    }

    /// Whether |SPD| is within threshold.
    pub fn passes_parity(&self) -> bool {
        self.statistical_parity_difference.abs() <= self.thresholds.max_parity_difference
    }

    /// Whether equalized odds is within threshold (vacuously true when the
    /// metric is unavailable).
    pub fn passes_equalized_odds(&self) -> bool {
        self.equalized_odds_difference
            .map(|v| v <= self.thresholds.max_equalized_odds)
            .unwrap_or(true)
    }

    /// Overall verdict: every available criterion passes.
    pub fn is_fair(&self) -> bool {
        self.passes_disparate_impact() && self.passes_parity() && self.passes_equalized_odds()
    }
}

impl fmt::Display for FairnessReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Fairness audit (protected n={}, unprotected n={})",
            self.n_protected, self.n_unprotected
        )?;
        writeln!(
            f,
            "  selection rate       protected {:.3}  unprotected {:.3}",
            self.selection_rate_protected, self.selection_rate_unprotected
        )?;
        writeln!(
            f,
            "  parity difference    {:+.3}  [{}]",
            self.statistical_parity_difference,
            if self.passes_parity() { "pass" } else { "FAIL" }
        )?;
        writeln!(
            f,
            "  disparate impact     {:.3}  [{}]",
            self.disparate_impact,
            if self.passes_disparate_impact() {
                "pass"
            } else {
                "FAIL"
            }
        )?;
        if let Some(v) = self.equal_opportunity_difference {
            writeln!(f, "  equal opportunity Δ  {v:+.3}")?;
        }
        if let Some(v) = self.equalized_odds_difference {
            writeln!(
                f,
                "  equalized odds       {:.3}  [{}]",
                v,
                if self.passes_equalized_odds() {
                    "pass"
                } else {
                    "FAIL"
                }
            )?;
        }
        if let Some(v) = self.predictive_parity_difference {
            writeln!(f, "  predictive parity Δ  {v:+.3}")?;
        }
        if let Some((p, u)) = self.group_accuracy {
            writeln!(
                f,
                "  accuracy             protected {p:.3}  unprotected {u:.3}"
            )?;
        }
        write!(
            f,
            "  verdict              {}",
            if self.is_fair() { "FAIR" } else { "UNFAIR" }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MASK: [bool; 8] = [true, true, true, true, false, false, false, false];

    #[test]
    fn fair_predictions_pass() {
        let truth = [true, true, false, false, true, true, false, false];
        let pred = [true, true, false, false, true, true, false, false];
        let r = FairnessReport::audit(Some(&truth), &pred, &MASK, FairnessThresholds::default())
            .unwrap();
        assert!(r.is_fair());
        assert_eq!(r.disparate_impact, 1.0);
        assert_eq!(r.equalized_odds_difference, Some(0.0));
        assert_eq!(r.n_protected, 4);
    }

    #[test]
    fn biased_predictions_fail() {
        let pred = [false, false, false, true, true, true, true, false];
        let r = FairnessReport::audit(None, &pred, &MASK, FairnessThresholds::default()).unwrap();
        assert!(!r.is_fair());
        assert!(!r.passes_disparate_impact());
        assert!(r.equalized_odds_difference.is_none());
    }

    #[test]
    fn symmetric_di_rule_catches_reverse_disparity() {
        // protected heavily favored: DI = 2.0 > 1/0.8 → fail
        let pred = [true, true, true, true, true, true, false, false];
        let r = FairnessReport::audit(None, &pred, &MASK, FairnessThresholds::default()).unwrap();
        assert!(!r.passes_disparate_impact());
    }

    #[test]
    fn display_renders_verdict() {
        let pred = [true, false, false, false, true, true, true, false];
        let r = FairnessReport::audit(None, &pred, &MASK, FairnessThresholds::default()).unwrap();
        let s = r.to_string();
        assert!(s.contains("disparate impact"));
        assert!(s.contains("UNFAIR"));
    }

    #[test]
    fn custom_thresholds() {
        let pred = [true, false, false, false, true, true, false, false];
        // SPD = 0.25
        let lax = FairnessThresholds {
            max_parity_difference: 0.3,
            min_disparate_impact: 0.4,
            ..FairnessThresholds::default()
        };
        let r = FairnessReport::audit(None, &pred, &MASK, lax).unwrap();
        assert!(r.is_fair());
    }
}
