//! Prejudice-remover regularizer (Kamishima et al. 2012, simplified):
//! in-processing logistic regression whose loss adds a penalty
//! `η · (mean score of protected − mean score of unprotected)²`,
//! pushing the model toward group-independent scores *during* training.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use fact_data::{FactError, Matrix, Result};
use fact_ml::Classifier;

/// Hyper-parameters for the prejudice-remover trainer.
#[derive(Debug, Clone)]
pub struct PrejudiceConfig {
    /// Fairness penalty strength η (0 = plain logistic regression).
    pub eta: f64,
    /// Learning rate.
    pub learning_rate: f64,
    /// Epochs.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// L2 penalty.
    pub l2: f64,
    /// Seed.
    pub seed: u64,
}

impl Default for PrejudiceConfig {
    fn default() -> Self {
        PrejudiceConfig {
            eta: 1.0,
            learning_rate: 0.1,
            epochs: 60,
            batch_size: 64,
            l2: 1e-4,
            seed: 0,
        }
    }
}

/// A fitted prejudice-remover classifier.
#[derive(Debug, Clone)]
pub struct PrejudiceRemover {
    weights: Vec<f64>, // [bias, w..] in standardized space
    stats: Vec<(f64, f64)>,
}

fn sigmoid(z: f64) -> f64 {
    1.0 / (1.0 + (-z).exp())
}

impl PrejudiceRemover {
    /// Fit with fairness penalty. The protected mask is used only during
    /// training (the fitted model never sees group membership at predict
    /// time).
    pub fn fit(x: &Matrix, y: &[bool], mask: &[bool], cfg: &PrejudiceConfig) -> Result<Self> {
        if x.rows() != y.len() || x.rows() != mask.len() {
            return Err(FactError::LengthMismatch {
                expected: x.rows(),
                actual: y.len().min(mask.len()),
            });
        }
        if x.rows() == 0 {
            return Err(FactError::EmptyData("empty training data".into()));
        }
        if cfg.eta < 0.0 {
            return Err(FactError::InvalidArgument(
                "eta must be non-negative".into(),
            ));
        }
        let n_prot = mask.iter().filter(|&&m| m).count();
        if n_prot == 0 || n_prot == mask.len() {
            return Err(FactError::InvalidArgument(
                "both groups must be present for prejudice removal".into(),
            ));
        }

        let mut xs = x.clone();
        let stats = xs.standardize();
        let n = xs.rows();
        let d = xs.cols();
        let mut w = vec![0.0; d + 1];
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut order: Vec<usize> = (0..n).collect();
        let n_unprot = n - n_prot;

        for epoch in 0..cfg.epochs {
            order.shuffle(&mut rng);
            let lr = cfg.learning_rate / (1.0 + 0.1 * epoch as f64);
            for chunk in order.chunks(cfg.batch_size) {
                // forward pass over the batch
                let mut probs = Vec::with_capacity(chunk.len());
                for &i in chunk {
                    let row = xs.row(i);
                    let mut z = w[0];
                    for (j, &v) in row.iter().enumerate() {
                        z += w[j + 1] * v;
                    }
                    probs.push(sigmoid(z));
                }
                // parity gap over the batch (falls back to 0 when a batch
                // happens to contain one group only)
                let (mut sp, mut su, mut np, mut nu) = (0.0, 0.0, 0usize, 0usize);
                for (&i, &p) in chunk.iter().zip(&probs) {
                    if mask[i] {
                        sp += p;
                        np += 1;
                    } else {
                        su += p;
                        nu += 1;
                    }
                }
                let gap = if np > 0 && nu > 0 {
                    sp / np as f64 - su / nu as f64
                } else {
                    0.0
                };
                // gradient
                let mut grad = vec![0.0; d + 1];
                for (k, &i) in chunk.iter().enumerate() {
                    let p = probs[k];
                    let target = if y[i] { 1.0 } else { 0.0 };
                    // BCE term
                    let mut err = p - target;
                    // fairness term: d/dz [η gap²] = 2η·gap·(±1/n_g)·p(1−p)
                    if np > 0 && nu > 0 {
                        let sign = if mask[i] {
                            1.0 / np as f64
                        } else {
                            -1.0 / nu as f64
                        };
                        err += 2.0 * cfg.eta * gap * sign * p * (1.0 - p) * chunk.len() as f64;
                    }
                    let row = xs.row(i);
                    grad[0] += err;
                    for (j, &v) in row.iter().enumerate() {
                        grad[j + 1] += err * v;
                    }
                }
                let scale = lr / chunk.len() as f64;
                w[0] -= scale * grad[0];
                for j in 1..=d {
                    w[j] -= scale * (grad[j] + cfg.l2 * w[j]);
                }
            }
        }
        let _ = (n_prot, n_unprot);
        Ok(PrejudiceRemover { weights: w, stats })
    }
}

impl Classifier for PrejudiceRemover {
    fn predict_proba(&self, x: &Matrix) -> Result<Vec<f64>> {
        if x.cols() + 1 != self.weights.len() {
            return Err(FactError::LengthMismatch {
                expected: self.weights.len() - 1,
                actual: x.cols(),
            });
        }
        let mut xs = x.clone();
        xs.apply_standardization(&self.stats)?;
        let mut out = Vec::with_capacity(xs.rows());
        for i in 0..xs.rows() {
            let row = xs.row(i);
            let mut z = self.weights[0];
            for (j, &v) in row.iter().enumerate() {
                z += self.weights[j + 1] * v;
            }
            out.push(sigmoid(z));
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fact_data::synth::loans::{generate_loans, LoanConfig};
    use fact_ml::metrics::accuracy;

    use crate::metrics::statistical_parity_difference;
    use crate::protected_mask;

    fn biased_world() -> (Matrix, Vec<bool>, Vec<bool>) {
        let ds = generate_loans(&LoanConfig {
            n: 8_000,
            seed: 11,
            bias_strength: 0.45,
            proxy_strength: 0.7,
            ..LoanConfig::default()
        });
        let mask = protected_mask(&ds, "group", "B").unwrap();
        let y = ds.bool_column("approved").unwrap().to_vec();
        // include the proxy so the plain model discriminates via it
        let x = ds
            .to_matrix(&[
                "income",
                "credit_score",
                "debt_ratio",
                "years_employed",
                "zip_risk",
            ])
            .unwrap();
        (x, y, mask)
    }

    #[test]
    fn eta_zero_behaves_like_plain_logistic() {
        let (x, y, mask) = biased_world();
        let m = PrejudiceRemover::fit(
            &x,
            &y,
            &mask,
            &PrejudiceConfig {
                eta: 0.0,
                ..PrejudiceConfig::default()
            },
        )
        .unwrap();
        let acc = accuracy(&y, &m.predict(&x).unwrap()).unwrap();
        // labels are noisy (bias flips 45% of protected approvals), so the
        // Bayes rate here is well below the clean-world one
        assert!(acc > 0.65, "plain-mode accuracy {acc}");
    }

    #[test]
    fn larger_eta_shrinks_parity_gap() {
        let (x, y, mask) = biased_world();
        let gap_at = |eta: f64| {
            let m = PrejudiceRemover::fit(
                &x,
                &y,
                &mask,
                &PrejudiceConfig {
                    eta,
                    ..PrejudiceConfig::default()
                },
            )
            .unwrap();
            statistical_parity_difference(&m.predict(&x).unwrap(), &mask)
                .unwrap()
                .abs()
        };
        let g0 = gap_at(0.0);
        let g2 = gap_at(2.0);
        assert!(
            g2 < g0,
            "eta=2 gap {g2:.3} should be below eta=0 gap {g0:.3}"
        );
    }

    #[test]
    fn probabilities_valid() {
        let (x, y, mask) = biased_world();
        let m = PrejudiceRemover::fit(&x, &y, &mask, &PrejudiceConfig::default()).unwrap();
        for p in m.predict_proba(&x).unwrap() {
            assert!((0.0..=1.0).contains(&p));
        }
    }

    #[test]
    fn validation() {
        let (x, y, mask) = biased_world();
        assert!(PrejudiceRemover::fit(&x, &y[..10], &mask, &PrejudiceConfig::default()).is_err());
        assert!(
            PrejudiceRemover::fit(&x, &y, &vec![true; y.len()], &PrejudiceConfig::default())
                .is_err()
        );
        let bad = PrejudiceConfig {
            eta: -1.0,
            ..PrejudiceConfig::default()
        };
        assert!(PrejudiceRemover::fit(&x, &y, &mask, &bad).is_err());
    }
}
