//! Reweighing (Kamiran & Calders 2012): pre-processing weights that make the
//! protected attribute statistically independent of the label in the
//! *weighted* training distribution.
//!
//! Each (group, label) cell receives weight
//! `w(g, y) = P(g) · P(y) / P(g, y)`; under-approved protected members get
//! weights above 1, over-approved unprotected members below 1. The weights
//! feed directly into any weighted learner (e.g.
//! `fact_ml::logistic::LogisticRegression::fit`).

use fact_data::{FactError, Result};

/// Per-sample reweighing weights for labels `y` and protected mask `mask`.
///
/// All four (group, label) cells must be non-empty; otherwise independence
/// weights are undefined and an error is returned.
#[allow(clippy::needless_range_loop)] // 2×2 cell tables read clearest indexed
pub fn reweighing_weights(y: &[bool], mask: &[bool]) -> Result<Vec<f64>> {
    if y.len() != mask.len() {
        return Err(FactError::LengthMismatch {
            expected: y.len(),
            actual: mask.len(),
        });
    }
    if y.is_empty() {
        return Err(FactError::EmptyData("reweighing on empty data".into()));
    }
    let n = y.len() as f64;
    let mut cell = [[0.0f64; 2]; 2]; // [group][label]
    for (&label, &prot) in y.iter().zip(mask) {
        cell[usize::from(prot)][usize::from(label)] += 1.0;
    }
    for g in 0..2 {
        for l in 0..2 {
            if cell[g][l] == 0.0 {
                return Err(FactError::InvalidArgument(
                    "every (group, label) combination must occur at least once".into(),
                ));
            }
        }
    }
    let p_group = [(cell[0][0] + cell[0][1]) / n, (cell[1][0] + cell[1][1]) / n];
    let p_label = [(cell[0][0] + cell[1][0]) / n, (cell[0][1] + cell[1][1]) / n];
    let mut w_cell = [[0.0f64; 2]; 2];
    for g in 0..2 {
        for l in 0..2 {
            w_cell[g][l] = p_group[g] * p_label[l] / (cell[g][l] / n);
        }
    }
    Ok(y.iter()
        .zip(mask)
        .map(|(&label, &prot)| w_cell[usize::from(prot)][usize::from(label)])
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use fact_data::synth::loans::{generate_loans, LoanConfig, LEGIT_FEATURES};
    use fact_ml::logistic::{LogisticConfig, LogisticRegression};
    use fact_ml::Classifier;

    use crate::metrics::statistical_parity_difference;
    use crate::protected_mask;

    #[test]
    fn balanced_world_gets_unit_weights() {
        let y = [true, false, true, false];
        let mask = [true, true, false, false];
        let w = reweighing_weights(&y, &mask).unwrap();
        for v in w {
            assert!((v - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn disadvantaged_positives_upweighted() {
        // protected: 1 of 4 positive; unprotected: 3 of 4 positive
        let y = [true, false, false, false, true, true, true, false];
        let mask = [true, true, true, true, false, false, false, false];
        let w = reweighing_weights(&y, &mask).unwrap();
        // protected positive (index 0) should weigh more than 1
        assert!(w[0] > 1.0);
        // unprotected positive should weigh less than 1
        assert!(w[4] < 1.0);
        // weighted label mass must be group-independent:
        let weighted_rate = |want: bool| {
            let num: f64 = y
                .iter()
                .zip(&mask)
                .zip(&w)
                .filter(|((_, &m), _)| m == want)
                .map(|((&l, _), &wv)| if l { wv } else { 0.0 })
                .sum();
            let den: f64 = mask
                .iter()
                .zip(&w)
                .filter(|(&m, _)| m == want)
                .map(|(_, &wv)| wv)
                .sum();
            num / den
        };
        assert!((weighted_rate(true) - weighted_rate(false)).abs() < 1e-12);
    }

    #[test]
    fn empty_cell_is_an_error() {
        let y = [true, true, false, false];
        let mask = [true, true, false, false];
        assert!(reweighing_weights(&y, &mask).is_err());
    }

    #[test]
    fn total_weight_is_preserved() {
        let y = [true, false, false, false, true, true, true, false];
        let mask = [true, true, true, true, false, false, false, false];
        let w = reweighing_weights(&y, &mask).unwrap();
        assert!((w.iter().sum::<f64>() - 8.0).abs() < 1e-9);
    }

    #[test]
    fn end_to_end_reduces_parity_gap() {
        let ds = generate_loans(&LoanConfig {
            n: 12_000,
            seed: 5,
            bias_strength: 0.45,
            ..LoanConfig::default()
        });
        let mask = protected_mask(&ds, "group", "B").unwrap();
        let y = ds.bool_column("approved").unwrap().to_vec();
        let features: Vec<&str> = LEGIT_FEATURES.to_vec();
        let x = ds.to_matrix(&features).unwrap();

        let plain = LogisticRegression::fit(&x, &y, None, &LogisticConfig::default()).unwrap();
        let w = reweighing_weights(&y, &mask).unwrap();
        let fair = LogisticRegression::fit(&x, &y, Some(&w), &LogisticConfig::default()).unwrap();

        let spd_plain = statistical_parity_difference(&plain.predict(&x).unwrap(), &mask).unwrap();
        let spd_fair = statistical_parity_difference(&fair.predict(&x).unwrap(), &mask).unwrap();
        assert!(
            spd_fair.abs() < spd_plain.abs(),
            "reweighing should shrink the gap: {spd_plain:.3} → {spd_fair:.3}"
        );
    }
}
