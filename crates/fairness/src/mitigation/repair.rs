//! Disparate-impact remover (Feldman et al. 2015): per-group quantile
//! alignment of feature distributions.
//!
//! For each numeric feature, a row's value is mapped from its within-group
//! quantile to the corresponding quantile of the *combined* distribution.
//! `amount = 1` makes group feature distributions identical (removing all
//! group information the feature carried); `amount = 0` is the identity. The
//! label is untouched — this is purely a feature-space repair, trading
//! predictive signal for fairness (the frontier experiment E2 measures that
//! trade).

use fact_data::{Column, Dataset, FactError, Result};

/// Repair the named numeric columns of `ds` with strength `amount ∈ [0, 1]`.
pub fn repair_disparate_impact(
    ds: &Dataset,
    columns: &[&str],
    mask: &[bool],
    amount: f64,
) -> Result<Dataset> {
    if !(0.0..=1.0).contains(&amount) {
        return Err(FactError::InvalidArgument(format!(
            "repair amount must be in [0, 1], got {amount}"
        )));
    }
    if ds.n_rows() != mask.len() {
        return Err(FactError::LengthMismatch {
            expected: ds.n_rows(),
            actual: mask.len(),
        });
    }
    if !mask.iter().any(|&m| m) || mask.iter().all(|&m| m) {
        return Err(FactError::InvalidArgument(
            "both groups must be present for repair".into(),
        ));
    }
    let mut out = ds.clone();
    for &name in columns {
        let vals = ds.f64_column(name)?;
        let repaired = repair_column(&vals, mask, amount);
        out.replace_column(name, Column::from_f64(repaired))?;
    }
    Ok(out)
}

fn repair_column(vals: &[f64], mask: &[bool], amount: f64) -> Vec<f64> {
    // combined sorted values define the target quantile function
    let mut combined = vals.to_vec();
    combined.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));

    // per-group sorted copies for rank lookup
    let mut groups: [Vec<f64>; 2] = [Vec::new(), Vec::new()];
    for (&v, &m) in vals.iter().zip(mask) {
        groups[usize::from(m)].push(v);
    }
    for g in groups.iter_mut() {
        g.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    }

    vals.iter()
        .zip(mask)
        .map(|(&v, &m)| {
            let g = &groups[usize::from(m)];
            // mid-rank of v within its group → quantile in [0, 1]
            let lo = g.partition_point(|&x| x < v);
            let hi = g.partition_point(|&x| x <= v);
            let q = if g.len() > 1 {
                ((lo + hi) as f64 / 2.0) / g.len() as f64
            } else {
                0.5
            };
            // combined quantile at q (linear interpolation)
            let pos = q * (combined.len() - 1) as f64;
            let i = pos.floor() as usize;
            let frac = pos - i as f64;
            let target = if i + 1 < combined.len() {
                combined[i] * (1.0 - frac) + combined[i + 1] * frac
            } else {
                combined[i]
            };
            (1.0 - amount) * v + amount * target
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fact_data::synth::loans::{generate_loans, LoanConfig};
    use fact_stats::descriptive::mean;

    use crate::protected_mask;

    fn group_means(vals: &[f64], mask: &[bool]) -> (f64, f64) {
        let p: Vec<f64> = vals
            .iter()
            .zip(mask)
            .filter(|(_, &m)| m)
            .map(|(&v, _)| v)
            .collect();
        let u: Vec<f64> = vals
            .iter()
            .zip(mask)
            .filter(|(_, &m)| !m)
            .map(|(&v, _)| v)
            .collect();
        (mean(&p).unwrap(), mean(&u).unwrap())
    }

    #[test]
    fn amount_zero_is_identity() {
        let ds = generate_loans(&LoanConfig {
            n: 1_000,
            seed: 1,
            feature_gap: 15.0,
            ..LoanConfig::default()
        });
        let mask = protected_mask(&ds, "group", "B").unwrap();
        let repaired = repair_disparate_impact(&ds, &["income"], &mask, 0.0).unwrap();
        assert_eq!(
            repaired.f64_column("income").unwrap(),
            ds.f64_column("income").unwrap()
        );
    }

    #[test]
    fn full_repair_aligns_group_distributions() {
        let ds = generate_loans(&LoanConfig {
            n: 8_000,
            seed: 2,
            feature_gap: 20.0,
            ..LoanConfig::default()
        });
        let mask = protected_mask(&ds, "group", "B").unwrap();
        let before = ds.f64_column("income").unwrap();
        let (mp0, mu0) = group_means(&before, &mask);
        assert!(mu0 - mp0 > 10.0, "gap exists before repair");

        let repaired = repair_disparate_impact(&ds, &["income"], &mask, 1.0).unwrap();
        let after = repaired.f64_column("income").unwrap();
        let (mp1, mu1) = group_means(&after, &mask);
        assert!(
            (mu1 - mp1).abs() < 1.0,
            "full repair closes the mean gap: {mp1:.2} vs {mu1:.2}"
        );
    }

    #[test]
    fn partial_repair_interpolates() {
        let ds = generate_loans(&LoanConfig {
            n: 6_000,
            seed: 3,
            feature_gap: 20.0,
            ..LoanConfig::default()
        });
        let mask = protected_mask(&ds, "group", "B").unwrap();
        let gap_at = |amount: f64| {
            let r = repair_disparate_impact(&ds, &["income"], &mask, amount).unwrap();
            let vals = r.f64_column("income").unwrap();
            let (p, u) = group_means(&vals, &mask);
            (u - p).abs()
        };
        let g0 = gap_at(0.0);
        let g5 = gap_at(0.5);
        let g1 = gap_at(1.0);
        assert!(
            g0 > g5 && g5 > g1,
            "monotone gap closure: {g0:.2} > {g5:.2} > {g1:.2}"
        );
    }

    #[test]
    fn repair_preserves_within_group_order() {
        let ds = generate_loans(&LoanConfig {
            n: 500,
            seed: 4,
            feature_gap: 10.0,
            ..LoanConfig::default()
        });
        let mask = protected_mask(&ds, "group", "B").unwrap();
        let before = ds.f64_column("income").unwrap();
        let repaired = repair_disparate_impact(&ds, &["income"], &mask, 1.0).unwrap();
        let after = repaired.f64_column("income").unwrap();
        // rank order within the protected group must be preserved
        let prot: Vec<(f64, f64)> = before
            .iter()
            .zip(&after)
            .zip(&mask)
            .filter(|(_, &m)| m)
            .map(|((&b, &a), _)| (b, a))
            .collect();
        for i in 0..prot.len() {
            for j in 0..prot.len() {
                if prot[i].0 < prot[j].0 {
                    assert!(
                        prot[i].1 <= prot[j].1 + 1e-9,
                        "quantile alignment is monotone"
                    );
                }
            }
        }
    }

    #[test]
    fn validation() {
        let ds = generate_loans(&LoanConfig {
            n: 100,
            seed: 5,
            ..LoanConfig::default()
        });
        let mask = protected_mask(&ds, "group", "B").unwrap();
        assert!(repair_disparate_impact(&ds, &["income"], &mask, 1.5).is_err());
        assert!(repair_disparate_impact(&ds, &["income"], &[true; 100], 0.5).is_err());
        assert!(repair_disparate_impact(&ds, &["group"], &mask, 0.5).is_err());
        assert!(repair_disparate_impact(&ds, &["income"], &mask[..50], 0.5).is_err());
    }
}
