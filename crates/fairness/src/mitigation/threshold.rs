//! Post-processing threshold optimization.
//!
//! Leaves the model untouched and instead chooses *per-group decision
//! thresholds* on its scores. Two targets:
//!
//! * [`equalize_selection_rates`] — demographic parity: pick the protected-
//!   group threshold so both groups are selected at (as close as possible to)
//!   the same rate;
//! * [`equalize_opportunity`] — equal opportunity: match true-positive rates
//!   (requires labels, e.g. on a validation split).
//!
//! Returns a [`GroupThresholds`] decision rule that can be applied to new
//! scores.

use fact_data::{FactError, Result};

/// Per-group decision thresholds.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupThresholds {
    /// Threshold applied to protected-group scores.
    pub protected: f64,
    /// Threshold applied to unprotected-group scores.
    pub unprotected: f64,
}

impl GroupThresholds {
    /// Apply the rule: `score >= threshold(group)`.
    pub fn apply(&self, scores: &[f64], mask: &[bool]) -> Result<Vec<bool>> {
        if scores.len() != mask.len() {
            return Err(FactError::LengthMismatch {
                expected: scores.len(),
                actual: mask.len(),
            });
        }
        Ok(scores
            .iter()
            .zip(mask)
            .map(|(&s, &m)| s >= if m { self.protected } else { self.unprotected })
            .collect())
    }
}

fn validate(scores: &[f64], mask: &[bool]) -> Result<()> {
    if scores.len() != mask.len() {
        return Err(FactError::LengthMismatch {
            expected: scores.len(),
            actual: mask.len(),
        });
    }
    if scores.is_empty() {
        return Err(FactError::EmptyData(
            "threshold search on empty scores".into(),
        ));
    }
    if !mask.iter().any(|&m| m) || mask.iter().all(|&m| m) {
        return Err(FactError::InvalidArgument(
            "both groups required for threshold optimization".into(),
        ));
    }
    Ok(())
}

fn group_scores(scores: &[f64], mask: &[bool], want: bool) -> Vec<f64> {
    scores
        .iter()
        .zip(mask)
        .filter(|(_, &m)| m == want)
        .map(|(&s, _)| s)
        .collect()
}

/// Threshold on `sorted`-able scores achieving a selection rate closest to
/// `target_rate`.
fn threshold_for_rate(scores: &[f64], target_rate: f64) -> f64 {
    let mut sorted = scores.to_vec();
    sorted.sort_by(|a, b| b.partial_cmp(a).unwrap_or(std::cmp::Ordering::Equal)); // descending
    let k = (target_rate * sorted.len() as f64).round() as usize;
    if k == 0 {
        return sorted[0] + 1.0; // select nobody
    }
    if k >= sorted.len() {
        return sorted[sorted.len() - 1]; // select everybody
    }
    // midpoint between the k-th selected and the first rejected score
    (sorted[k - 1] + sorted[k]) / 2.0
}

/// Demographic-parity post-processing: keep the unprotected threshold at
/// `base_threshold`, and choose the protected threshold so the protected
/// selection rate matches the unprotected one.
pub fn equalize_selection_rates(
    scores: &[f64],
    mask: &[bool],
    base_threshold: f64,
) -> Result<GroupThresholds> {
    validate(scores, mask)?;
    let unprot = group_scores(scores, mask, false);
    let prot = group_scores(scores, mask, true);
    let target_rate =
        unprot.iter().filter(|&&s| s >= base_threshold).count() as f64 / unprot.len() as f64;
    Ok(GroupThresholds {
        protected: threshold_for_rate(&prot, target_rate),
        unprotected: base_threshold,
    })
}

/// Equal-opportunity post-processing: choose the protected threshold so the
/// protected TPR matches the unprotected TPR at `base_threshold`. Requires
/// labels with positives in both groups.
pub fn equalize_opportunity(
    scores: &[f64],
    truth: &[bool],
    mask: &[bool],
    base_threshold: f64,
) -> Result<GroupThresholds> {
    validate(scores, mask)?;
    if truth.len() != scores.len() {
        return Err(FactError::LengthMismatch {
            expected: scores.len(),
            actual: truth.len(),
        });
    }
    // positive-class scores per group
    let pos_scores = |want: bool| -> Vec<f64> {
        scores
            .iter()
            .zip(truth)
            .zip(mask)
            .filter(|((_, &t), &m)| t && m == want)
            .map(|((&s, _), _)| s)
            .collect()
    };
    let unprot_pos = pos_scores(false);
    let prot_pos = pos_scores(true);
    if unprot_pos.is_empty() || prot_pos.is_empty() {
        return Err(FactError::InvalidArgument(
            "equal opportunity needs positive examples in both groups".into(),
        ));
    }
    let target_tpr = unprot_pos.iter().filter(|&&s| s >= base_threshold).count() as f64
        / unprot_pos.len() as f64;
    Ok(GroupThresholds {
        protected: threshold_for_rate(&prot_pos, target_tpr),
        unprotected: base_threshold,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{equal_opportunity_difference, statistical_parity_difference};

    /// Scores where the protected group scores systematically lower.
    fn shifted_scores(n: usize) -> (Vec<f64>, Vec<bool>) {
        let mut scores = Vec::with_capacity(n);
        let mut mask = Vec::with_capacity(n);
        for i in 0..n {
            let prot = i % 2 == 0;
            let base = (i % 50) as f64 / 50.0;
            scores.push(if prot { base * 0.6 } else { base });
            mask.push(prot);
        }
        (scores, mask)
    }

    #[test]
    fn parity_thresholds_close_the_gap() {
        let (scores, mask) = shifted_scores(1000);
        let naive: Vec<bool> = scores.iter().map(|&s| s >= 0.5).collect();
        let gap_naive = statistical_parity_difference(&naive, &mask).unwrap();
        assert!(gap_naive > 0.15, "shifted scores create a gap: {gap_naive}");

        let th = equalize_selection_rates(&scores, &mask, 0.5).unwrap();
        assert!(th.protected < th.unprotected, "protected threshold lowered");
        let fixed = th.apply(&scores, &mask).unwrap();
        let gap_fixed = statistical_parity_difference(&fixed, &mask).unwrap();
        assert!(
            gap_fixed.abs() < 0.03,
            "parity gap closed: {gap_naive:.3} → {gap_fixed:.3}"
        );
    }

    #[test]
    fn opportunity_thresholds_match_tpr() {
        let (scores, mask) = shifted_scores(1000);
        // ground truth: top half of the underlying merit is positive
        let truth: Vec<bool> = (0..1000).map(|i| (i % 50) >= 25).collect();
        let naive: Vec<bool> = scores.iter().map(|&s| s >= 0.5).collect();
        let eod_naive = equal_opportunity_difference(&truth, &naive, &mask).unwrap();
        assert!(eod_naive > 0.2);

        let th = equalize_opportunity(&scores, &truth, &mask, 0.5).unwrap();
        let fixed = th.apply(&scores, &mask).unwrap();
        let eod_fixed = equal_opportunity_difference(&truth, &fixed, &mask).unwrap();
        assert!(
            eod_fixed.abs() < 0.05,
            "TPR gap closed: {eod_naive:.3} → {eod_fixed:.3}"
        );
    }

    #[test]
    fn extreme_targets() {
        let scores = [0.1, 0.2, 0.8, 0.9];
        let mask = [true, true, false, false];
        // base threshold above every unprotected score → select nobody
        let th = equalize_selection_rates(&scores, &mask, 0.95).unwrap();
        let sel = th.apply(&scores, &mask).unwrap();
        assert!(sel.iter().all(|&s| !s));
        // base threshold below every unprotected score → select everybody
        let th = equalize_selection_rates(&scores, &mask, 0.0).unwrap();
        let sel = th.apply(&scores, &mask).unwrap();
        assert!(sel.iter().all(|&s| s));
    }

    #[test]
    fn validation() {
        let scores = [0.5, 0.6];
        assert!(equalize_selection_rates(&scores, &[true, true], 0.5).is_err());
        assert!(equalize_selection_rates(&scores, &[true], 0.5).is_err());
        assert!(equalize_opportunity(&scores, &[true], &[true, false], 0.5).is_err());
        // no positives in one group
        assert!(equalize_opportunity(&[0.5, 0.6], &[false, true], &[true, false], 0.5).is_err());
        let th = GroupThresholds {
            protected: 0.3,
            unprotected: 0.5,
        };
        assert!(th.apply(&scores, &[true]).is_err());
    }
}
