//! Bias mitigation — the "ways to ensure fairness" the paper calls for (§2).
//!
//! Three intervention points, mirroring the standard taxonomy
//! (and the AIF360 tool family the paper's agenda anticipated):
//!
//! | Stage | Module | Technique |
//! |---|---|---|
//! | pre-processing | [`reweighing`] | Kamiran–Calders instance weights |
//! | pre-processing | [`repair`] | disparate-impact remover (per-group quantile alignment) |
//! | in-processing | [`prejudice`] | prejudice-remover regularized logistic regression |
//! | post-processing | [`threshold`] | per-group decision-threshold optimization |
//!
//! Experiment E2 compares all four on the same biased world.

pub mod prejudice;
pub mod repair;
pub mod reweighing;
pub mod threshold;
