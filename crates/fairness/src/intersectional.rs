//! Intersectional (subgroup) fairness.
//!
//! The paper warns that "profiling may lead to further stigmatization of
//! certain groups" (§2) — and single-attribute audits miss exactly the
//! groups profiling creates: a model can pass parity on gender and on
//! ethnicity while devastating one *intersection* of both. This module
//! audits every combination of one or more categorical attributes against a
//! reference rate, with small-cell flagging (tiny subgroups get warnings,
//! not unstable verdicts).

use fact_data::{Dataset, FactError, Predicate, Result, ScanStats, SegmentSet};

/// One subgroup's audit row.
#[derive(Debug, Clone)]
pub struct SubgroupOutcome {
    /// Attribute values defining the subgroup, in attribute order.
    pub labels: Vec<String>,
    /// Rows in the subgroup.
    pub n: usize,
    /// Positive-outcome rate within the subgroup.
    pub selection_rate: f64,
    /// Ratio of the subgroup rate to the overall rate.
    pub impact_ratio: f64,
    /// True when `n` is below the small-cell threshold: the ratio is
    /// reported but should not be used as a verdict.
    pub small_cell: bool,
}

/// A full intersectional audit.
#[derive(Debug, Clone)]
pub struct IntersectionalReport {
    /// Attributes the subgroups were formed from.
    pub attributes: Vec<String>,
    /// Overall positive-outcome rate.
    pub overall_rate: f64,
    /// Every non-empty subgroup, worst impact ratio first.
    pub subgroups: Vec<SubgroupOutcome>,
    /// Small-cell threshold used.
    pub min_cell: usize,
}

impl IntersectionalReport {
    /// Subgroups (with adequate n) whose impact ratio falls below
    /// `threshold` (e.g. 0.8 for the four-fifths rule).
    pub fn violations(&self, threshold: f64) -> Vec<&SubgroupOutcome> {
        self.subgroups
            .iter()
            .filter(|s| !s.small_cell && s.impact_ratio < threshold)
            .collect()
    }

    /// The worst adequately-sized subgroup, if any.
    pub fn worst(&self) -> Option<&SubgroupOutcome> {
        self.subgroups.iter().find(|s| !s.small_cell)
    }
}

/// Audit predictions across every combination of the given categorical
/// attributes. `min_cell` marks subgroups too small for stable rates.
pub fn intersectional_audit(
    ds: &Dataset,
    pred: &[bool],
    attributes: &[&str],
    min_cell: usize,
) -> Result<IntersectionalReport> {
    if attributes.is_empty() {
        return Err(FactError::InvalidArgument(
            "at least one attribute required".into(),
        ));
    }
    if pred.len() != ds.n_rows() {
        return Err(FactError::LengthMismatch {
            expected: ds.n_rows(),
            actual: pred.len(),
        });
    }
    if pred.is_empty() {
        return Err(FactError::EmptyData(
            "intersectional audit on empty data".into(),
        ));
    }
    let mut label_cols = Vec::with_capacity(attributes.len());
    for &a in attributes {
        label_cols.push(ds.labels(a)?);
    }
    let overall = pred.iter().filter(|&&p| p).count() as f64 / pred.len() as f64;
    if overall <= 0.0 {
        return Err(FactError::Numeric(
            "overall selection rate is zero; impact ratios undefined".into(),
        ));
    }
    use std::collections::HashMap;
    // Count subgroup cells over row chunks in parallel; the additive merge
    // is order-independent and the final sort fixes the output order, so the
    // report never depends on the worker count.
    let cells: HashMap<Vec<String>, (usize, usize)> = fact_par::par_reduce(
        pred.len(),
        512,
        |range| {
            let mut local: HashMap<Vec<String>, (usize, usize)> = HashMap::new();
            for i in range {
                let key: Vec<String> = label_cols.iter().map(|c| c[i].clone()).collect();
                let entry = local.entry(key).or_insert((0, 0));
                entry.0 += 1;
                if pred[i] {
                    entry.1 += 1;
                }
            }
            local
        },
        |mut a, b| {
            for (key, (n, pos)) in b {
                let entry = a.entry(key).or_insert((0, 0));
                entry.0 += n;
                entry.1 += pos;
            }
            a
        },
    )
    .unwrap_or_default();
    let mut subgroups: Vec<SubgroupOutcome> = cells
        .into_iter()
        .map(|(labels, (n, pos))| {
            let rate = pos as f64 / n as f64;
            SubgroupOutcome {
                labels,
                n,
                selection_rate: rate,
                impact_ratio: rate / overall,
                small_cell: n < min_cell,
            }
        })
        .collect();
    subgroups.sort_by(|a, b| {
        a.impact_ratio
            .partial_cmp(&b.impact_ratio)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.labels.cmp(&b.labels))
    });
    Ok(IntersectionalReport {
        attributes: attributes.iter().map(|s| s.to_string()).collect(),
        overall_rate: overall,
        subgroups,
        min_cell,
    })
}

/// [`intersectional_audit`] over an on-disk [`SegmentSet`], reading the
/// boolean prediction column `prediction` alongside the attributes.
///
/// Routed through fact-data's column-pruned segment scan: only
/// `attributes ∪ {prediction}` are decoded, every other column of the set
/// stays untouched on disk. The returned [`ScanStats`] show exactly how
/// many bytes the audit read.
pub fn intersectional_audit_segments(
    set: &SegmentSet,
    prediction: &str,
    attributes: &[&str],
    min_cell: usize,
) -> Result<(IntersectionalReport, ScanStats)> {
    if attributes.is_empty() {
        return Err(FactError::InvalidArgument(
            "at least one attribute required".into(),
        ));
    }
    let mut columns: Vec<&str> = attributes.to_vec();
    if !columns.contains(&prediction) {
        columns.push(prediction);
    }
    let (ds, stats) = set.scan_columns(&columns, &Predicate::All)?;
    let pred = ds.bool_column(prediction)?.to_vec();
    let report = intersectional_audit(&ds, &pred, attributes, min_cell)?;
    Ok((report, stats))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A world fair on gender and on region marginally, but brutal to the
    /// (female, south) intersection.
    fn intersection_trap(n: usize) -> (Dataset, Vec<bool>) {
        let mut gender = Vec::with_capacity(n);
        let mut region = Vec::with_capacity(n);
        let mut pred = Vec::with_capacity(n);
        for i in 0..n {
            let female = i % 2 == 0;
            let south = (i / 2) % 2 == 0;
            gender.push(if female { "female" } else { "male" });
            region.push(if south { "south" } else { "north" });
            // marginal rates equal-ish: female-south punished, male-south boosted
            let p = match (female, south) {
                (true, true) => i % 10 < 2,   // 20%
                (false, true) => i % 10 < 8,  // 80%
                (true, false) => i % 10 < 8,  // 80%
                (false, false) => i % 10 < 2, // 20%
            };
            pred.push(p);
        }
        let ds = Dataset::builder()
            .cat("gender", &gender)
            .cat("region", &region)
            .build()
            .unwrap();
        (ds, pred)
    }

    #[test]
    fn marginal_audits_miss_what_the_intersection_shows() {
        let (ds, pred) = intersection_trap(4000);
        // marginal: both genders ≈ 50%
        let by_gender = intersectional_audit(&ds, &pred, &["gender"], 30).unwrap();
        for g in &by_gender.subgroups {
            assert!(
                (g.impact_ratio - 1.0).abs() < 0.05,
                "marginals look fair: {:?} {}",
                g.labels,
                g.impact_ratio
            );
        }
        // intersection: (female, south) at 0.2/0.5 = 0.4 impact ratio
        let both = intersectional_audit(&ds, &pred, &["gender", "region"], 30).unwrap();
        let worst = both.worst().unwrap();
        assert_eq!(worst.labels, vec!["female", "south"]);
        assert!(worst.impact_ratio < 0.5);
        assert_eq!(both.violations(0.8).len(), 2); // female-south & male-north
    }

    #[test]
    fn small_cells_flagged_not_judged() {
        let gender = vec!["f", "f", "f", "m"];
        let ds = Dataset::builder().cat("g", &gender).build().unwrap();
        let pred = vec![true, true, false, false];
        let rep = intersectional_audit(&ds, &pred, &["g"], 10).unwrap();
        assert!(rep.subgroups.iter().all(|s| s.small_cell));
        assert!(rep.violations(0.8).is_empty(), "small cells never violate");
        assert!(rep.worst().is_none());
    }

    #[test]
    fn sorted_worst_first() {
        let (ds, pred) = intersection_trap(2000);
        let rep = intersectional_audit(&ds, &pred, &["gender", "region"], 30).unwrap();
        for w in rep.subgroups.windows(2) {
            assert!(w[0].impact_ratio <= w[1].impact_ratio + 1e-12);
        }
        assert_eq!(rep.attributes, vec!["gender", "region"]);
        assert!((rep.overall_rate - 0.5).abs() < 0.05);
    }

    #[test]
    fn validation() {
        let (ds, pred) = intersection_trap(100);
        assert!(intersectional_audit(&ds, &pred, &[], 10).is_err());
        assert!(intersectional_audit(&ds, &pred[..50], &["gender"], 10).is_err());
        assert!(intersectional_audit(&ds, &pred, &["ghost"], 10).is_err());
        let none = vec![false; 100];
        assert!(intersectional_audit(&ds, &none, &["gender"], 10).is_err());
    }
}
