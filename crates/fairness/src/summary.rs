//! Mergeable sliding-window monitor summaries.
//!
//! A streaming fairness monitor holds its window as an ordered event queue —
//! perfect for one process, useless for a fleet: two shards cannot combine
//! their queues without replaying every event, and a shard that restarts or
//! is resharded would silently reset its window (losing exactly the evidence
//! a fairness guard exists to keep). A [`WindowSummary`] is the portable
//! form: the window cut into fixed-size **segments**, each a paired
//! count-vector `counts[group][favorable]`. Segment counts are plain sums,
//! so:
//!
//! * **merge** is associative and commutative (segment-wise addition,
//!   aligned from the newest segment) — N shards' windows combine into one
//!   fleet window in any order;
//! * **split** divides every cell deterministically — one shard's window
//!   fans out to N successors whose summaries sum back to the original;
//! * **resynthesis** ([`WindowSummary::events`]) turns a summary back into
//!   an event sequence whose per-segment counts are exact, so a restored
//!   monitor resumes with the same windowed rates it checkpointed with.
//!   Ordering *within* a segment is not preserved — that is the quantified
//!   resolution loss, bounded by one segment.

use serde::{Deserialize, Serialize};

use fact_data::{FactError, Result};

/// Paired counts for one window segment: `counts[group][favorable]` with
/// `group` 0 = unprotected (A), 1 = protected (B).
pub type SegmentCounts = [[u64; 2]; 2];

/// A sliding window of decision events, summarized as per-segment paired
/// count-vectors. See the module docs for the merge/split/resynthesis
/// contract.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WindowSummary {
    /// Events a full segment covers; the newest segment may be partial.
    segment_events: u64,
    /// Segments oldest → newest.
    segments: Vec<SegmentCounts>,
    /// Events currently in the newest segment.
    newest_fill: u64,
    /// Window size in events: observing past this drops whole oldest
    /// segments (coarse sliding — resolution is one segment).
    window: u64,
}

fn cell_sum(c: &SegmentCounts) -> u64 {
    c[0][0] + c[0][1] + c[1][0] + c[1][1]
}

impl WindowSummary {
    /// An empty summary covering the last `window` events at `segment_events`
    /// resolution. Errors unless `0 < segment_events <= window`.
    pub fn new(window: u64, segment_events: u64) -> Result<Self> {
        if segment_events == 0 || window == 0 || segment_events > window {
            return Err(FactError::InvalidArgument(format!(
                "need 0 < segment_events <= window, got {segment_events} / {window}"
            )));
        }
        Ok(WindowSummary {
            segment_events,
            segments: Vec::new(),
            newest_fill: 0,
            window,
        })
    }

    /// Build a summary from an ordered event stream (oldest first).
    pub fn from_events<I>(window: u64, segment_events: u64, events: I) -> Result<Self>
    where
        I: IntoIterator<Item = (bool, bool)>,
    {
        let mut s = WindowSummary::new(window, segment_events)?;
        for (group_b, favorable) in events {
            s.observe(group_b, favorable);
        }
        Ok(s)
    }

    /// Ingest one event into the newest segment, rolling to a fresh segment
    /// when it fills and dropping whole oldest segments once the window is
    /// exceeded.
    pub fn observe(&mut self, group_b: bool, favorable: bool) {
        // `>=`: a merged summary's newest segment may be overfull
        if self.segments.is_empty() || self.newest_fill >= self.segment_events {
            self.segments.push([[0; 2]; 2]);
            self.newest_fill = 0;
        }
        let newest = self.segments.last_mut().expect("segment just ensured");
        newest[usize::from(group_b)][usize::from(favorable)] += 1;
        self.newest_fill += 1;
        while self.total_events() > self.window {
            let oldest = cell_sum(self.segments.first().expect("non-empty"));
            // never drop below the window: a partial oldest segment stays
            if self.total_events() - oldest < self.window {
                break;
            }
            self.segments.remove(0);
        }
    }

    /// Events a full segment covers.
    pub fn segment_events(&self) -> u64 {
        self.segment_events
    }

    /// The configured window, in events.
    pub fn window(&self) -> u64 {
        self.window
    }

    /// Segments oldest → newest.
    pub fn segments(&self) -> impl Iterator<Item = &SegmentCounts> {
        self.segments.iter()
    }

    /// Total events summarized.
    pub fn total_events(&self) -> u64 {
        self.segments.iter().map(cell_sum).sum()
    }

    /// Paired counts summed over every segment.
    pub fn counts(&self) -> SegmentCounts {
        let mut out = [[0u64; 2]; 2];
        for seg in &self.segments {
            for g in 0..2 {
                for f in 0..2 {
                    out[g][f] += seg[g][f];
                }
            }
        }
        out
    }

    /// Windowed favorable rate for one group; `None` when the group has no
    /// events in the window.
    pub fn favorable_rate(&self, group_b: bool) -> Option<f64> {
        let c = self.counts();
        let g = usize::from(group_b);
        let n = c[g][0] + c[g][1];
        (n > 0).then(|| c[g][1] as f64 / n as f64)
    }

    /// Merge two summaries segment-wise, **aligned from the newest
    /// segment** (both describe the trailing window of their shard's
    /// traffic). Addition per cell makes this associative and commutative;
    /// the result keeps the longer segment tail and the larger window and
    /// is **not** re-truncated, so grouping order cannot change the result.
    /// Errors when the segment resolutions differ.
    pub fn merge(&self, other: &WindowSummary) -> Result<WindowSummary> {
        if self.segment_events != other.segment_events {
            return Err(FactError::InvalidArgument(format!(
                "cannot merge summaries at different resolutions ({} vs {})",
                self.segment_events, other.segment_events
            )));
        }
        let (longer, shorter) = if self.segments.len() >= other.segments.len() {
            (self, other)
        } else {
            (other, self)
        };
        let mut segments = longer.segments.clone();
        let offset = longer.segments.len() - shorter.segments.len();
        for (i, seg) in shorter.segments.iter().enumerate() {
            let dst = &mut segments[offset + i];
            for g in 0..2 {
                for f in 0..2 {
                    dst[g][f] += seg[g][f];
                }
            }
        }
        Ok(WindowSummary {
            segment_events: self.segment_events,
            newest_fill: segments.last().map(cell_sum).unwrap_or(0),
            segments,
            window: self.window.max(other.window),
        })
    }

    /// Fold any number of summaries into one fleet window. Merge is
    /// associative and commutative, so the iteration order cannot change
    /// the result; `None` when the iterator is empty. This is the N→1 half
    /// of a reshard (the 1→M half is [`split`](WindowSummary::split)), and
    /// the resolutions must match just as for pairwise merge.
    pub fn merge_all<'a, I>(summaries: I) -> Result<Option<WindowSummary>>
    where
        I: IntoIterator<Item = &'a WindowSummary>,
    {
        let mut folded: Option<WindowSummary> = None;
        for s in summaries {
            folded = Some(match folded {
                Some(acc) => acc.merge(s)?,
                None => s.clone(),
            });
        }
        Ok(folded)
    }

    /// Split into `n` summaries whose cell-wise sum reproduces `self`
    /// exactly: every cell divides as `c / n`, with the first `c % n`
    /// outputs taking one extra — deterministic, so a reshard is
    /// reproducible. Errors when `n` is zero.
    pub fn split(&self, n: usize) -> Result<Vec<WindowSummary>> {
        if n == 0 {
            return Err(FactError::InvalidArgument(
                "cannot split a window into zero parts".into(),
            ));
        }
        let mut parts: Vec<WindowSummary> = (0..n)
            .map(|_| WindowSummary {
                segment_events: self.segment_events,
                segments: self
                    .segments
                    .iter()
                    .map(|_| [[0u64; 2]; 2])
                    .collect::<Vec<_>>(),
                newest_fill: 0,
                window: self.window,
            })
            .collect();
        for (si, seg) in self.segments.iter().enumerate() {
            for (g, row) in seg.iter().enumerate() {
                for (f, &count) in row.iter().enumerate() {
                    let per = count / n as u64;
                    let extra = (count % n as u64) as usize;
                    for (pi, part) in parts.iter_mut().enumerate() {
                        part.segments[si][g][f] = per + u64::from(pi < extra);
                    }
                }
            }
        }
        for part in &mut parts {
            while part.segments.first().is_some_and(|s| cell_sum(s) == 0) {
                part.segments.remove(0);
            }
            part.newest_fill = part.segments.last().map(cell_sum).unwrap_or(0);
        }
        Ok(parts)
    }

    /// Resynthesize an ordered event sequence (oldest segment first). Per
    /// segment the cells are interleaved round-robin, so group balance is
    /// roughly uniform within a segment; counts per segment are exact.
    pub fn events(&self) -> Vec<(bool, bool)> {
        let mut out = Vec::with_capacity(self.total_events() as usize);
        for seg in &self.segments {
            let mut left = *seg;
            let mut remaining = cell_sum(seg);
            while remaining > 0 {
                for (g, f) in [(0, 0), (0, 1), (1, 0), (1, 1)] {
                    if left[g][f] > 0 {
                        left[g][f] -= 1;
                        remaining -= 1;
                        out.push((g == 1, f == 1));
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn filled(events: &[(bool, bool)]) -> WindowSummary {
        WindowSummary::from_events(100, 10, events.iter().copied()).unwrap()
    }

    #[test]
    fn observe_rolls_segments_and_slides_window() {
        let mut s = WindowSummary::new(20, 5).unwrap();
        for i in 0..50u64 {
            s.observe(i % 2 == 0, i % 3 == 0);
        }
        // 50 events at window 20: at most 20 + one partial segment retained
        assert!(s.total_events() >= 20);
        assert!(s.total_events() <= 25, "{}", s.total_events());
        assert!(s.segments().all(|c| cell_sum(c) <= 5));
    }

    #[test]
    fn counts_and_rates() {
        let s = filled(&[(false, true), (false, false), (true, true), (true, true)]);
        assert_eq!(s.counts(), [[1, 1], [0, 2]]);
        assert_eq!(s.favorable_rate(false), Some(0.5));
        assert_eq!(s.favorable_rate(true), Some(1.0));
        let empty = WindowSummary::new(10, 2).unwrap();
        assert_eq!(empty.favorable_rate(true), None);
    }

    #[test]
    fn events_round_trip_counts_exactly() {
        let mut s = WindowSummary::new(1000, 7).unwrap();
        for i in 0..137u64 {
            s.observe(i % 3 == 0, i % 5 == 0);
        }
        let replay = WindowSummary::from_events(1000, 7, s.events()).unwrap();
        assert_eq!(replay.counts(), s.counts());
        assert_eq!(replay.total_events(), s.total_events());
        // per-segment counts survive the round trip, not just totals
        let a: Vec<_> = s.segments().copied().collect();
        let b: Vec<_> = replay.segments().copied().collect();
        assert_eq!(a, b);
    }

    #[test]
    fn merge_requires_matching_resolution_and_split_rejects_zero() {
        let a = WindowSummary::new(10, 2).unwrap();
        let b = WindowSummary::new(10, 5).unwrap();
        assert!(a.merge(&b).is_err());
        assert!(a.split(0).is_err());
        assert!(WindowSummary::new(10, 0).is_err());
        assert!(WindowSummary::new(0, 1).is_err());
        assert!(WindowSummary::new(4, 8).is_err());
    }

    #[test]
    fn merge_all_folds_many_and_handles_empty() {
        let parts: Vec<WindowSummary> = (0..4)
            .map(|k| {
                filled(
                    &(0..10 + k)
                        .map(|i| (i % 2 == 0, i % 3 == 0))
                        .collect::<Vec<_>>(),
                )
            })
            .collect();
        let folded = WindowSummary::merge_all(parts.iter()).unwrap().unwrap();
        let mut pairwise = parts[0].clone();
        for p in &parts[1..] {
            pairwise = pairwise.merge(p).unwrap();
        }
        assert_eq!(folded, pairwise);
        assert!(WindowSummary::merge_all(std::iter::empty())
            .unwrap()
            .is_none());
    }

    #[test]
    fn merge_aligns_newest_segments() {
        // one shard saw 25 events (3 segments at 10), another saw 5 (1)
        let long = filled(&(0..25).map(|i| (i % 2 == 0, true)).collect::<Vec<_>>());
        let short = filled(&(0..5).map(|_| (true, false)).collect::<Vec<_>>());
        let merged = long.merge(&short).unwrap();
        assert_eq!(merged.total_events(), 30);
        // the short shard's events landed in the *newest* segment
        let newest = *merged.segments().last().unwrap();
        assert_eq!(newest[1][0], 5);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(96))]

        /// Merge is associative and commutative on the counts it keeps.
        #[test]
        fn merge_is_associative_and_commutative(
            a in prop::collection::vec((any::<bool>(), any::<bool>()), 0..60),
            b in prop::collection::vec((any::<bool>(), any::<bool>()), 0..60),
            c in prop::collection::vec((any::<bool>(), any::<bool>()), 0..60),
        ) {
            let (sa, sb, sc) = (filled(&a), filled(&b), filled(&c));
            let left = sa.merge(&sb).unwrap().merge(&sc).unwrap();
            let right = sa.merge(&sb.merge(&sc).unwrap()).unwrap();
            prop_assert_eq!(&left, &right);
            prop_assert_eq!(&sa.merge(&sb).unwrap(), &sb.merge(&sa).unwrap());
        }

        /// Splitting then merging reproduces the original counts exactly,
        /// at any fan-out.
        #[test]
        fn split_then_merge_is_identity_on_counts(
            events in prop::collection::vec((any::<bool>(), any::<bool>()), 1..80),
            n in 1usize..6,
        ) {
            let s = filled(&events);
            let parts = s.split(n).unwrap();
            prop_assert_eq!(parts.len(), n);
            let mut back = parts[0].clone();
            for p in &parts[1..] {
                back = back.merge(p).unwrap();
            }
            prop_assert_eq!(back.counts(), s.counts());
            prop_assert_eq!(back.total_events(), s.total_events());
            // and segment-by-segment, not just in aggregate
            let orig: Vec<_> = s.segments().copied().collect();
            let merged: Vec<_> = back.segments().copied().collect();
            let skew = orig.len() - merged.len();
            for (i, seg) in merged.iter().enumerate() {
                prop_assert_eq!(seg, &orig[i + skew]);
            }
        }

        /// A summary built incrementally equals one built from the same
        /// events in one shot.
        #[test]
        fn from_events_matches_observe(
            events in prop::collection::vec((any::<bool>(), any::<bool>()), 0..200),
        ) {
            let mut inc = WindowSummary::new(64, 8).unwrap();
            for &(g, f) in &events {
                inc.observe(g, f);
            }
            let oneshot =
                WindowSummary::from_events(64, 8, events.iter().copied()).unwrap();
            prop_assert_eq!(inc, oneshot);
        }
    }
}
