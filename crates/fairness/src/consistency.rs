//! Individual fairness: similar individuals should receive similar scores.
//!
//! Complements the group metrics — a model can satisfy statistical parity
//! while treating near-identical applicants very differently. The
//! consistency score (Zemel et al. 2013) is
//! `1 − mean_i |ŷ_i − mean_{j ∈ kNN(i)} ŷ_j|`, computed on standardized
//! features; 1.0 means perfectly locally-consistent scoring.

use fact_data::{FactError, Matrix, Result};

/// Consistency of scores over the k nearest neighbours of each row.
pub fn consistency_score(x: &Matrix, scores: &[f64], k: usize) -> Result<f64> {
    if x.rows() != scores.len() {
        return Err(FactError::LengthMismatch {
            expected: x.rows(),
            actual: scores.len(),
        });
    }
    if k == 0 || k >= x.rows() {
        return Err(FactError::InvalidArgument(format!(
            "k must be in 1..{}, got {k}",
            x.rows()
        )));
    }
    let mut xs = x.clone();
    xs.standardize();
    let n = xs.rows();
    let mut total_dev = 0.0;
    let mut dists: Vec<(f64, usize)> = Vec::with_capacity(n - 1);
    for i in 0..n {
        dists.clear();
        let qi = xs.row(i);
        for j in 0..n {
            if j == i {
                continue;
            }
            let rj = xs.row(j);
            let mut d = 0.0;
            for (a, b) in qi.iter().zip(rj) {
                let diff = a - b;
                d += diff * diff;
            }
            dists.push((d, j));
        }
        dists.select_nth_unstable_by(k - 1, |a, b| {
            a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal)
        });
        let neigh_mean: f64 = dists[..k].iter().map(|&(_, j)| scores[j]).sum::<f64>() / k as f64;
        total_dev += (scores[i] - neigh_mean).abs();
    }
    Ok(1.0 - total_dev / n as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn cloud(n: usize, seed: u64) -> Matrix {
        let mut rng = StdRng::seed_from_u64(seed);
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|_| vec![rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)])
            .collect();
        Matrix::from_rows(&rows).unwrap()
    }

    #[test]
    fn constant_scores_are_perfectly_consistent() {
        let x = cloud(100, 1);
        let s = vec![0.7; 100];
        assert!((consistency_score(&x, &s, 5).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn smooth_scores_beat_random_scores() {
        let x = cloud(200, 2);
        let smooth: Vec<f64> = (0..200).map(|i| (x.get(i, 0) + 1.0) / 2.0).collect();
        let mut rng = StdRng::seed_from_u64(3);
        let random: Vec<f64> = (0..200).map(|_| rng.gen()).collect();
        let cs = consistency_score(&x, &smooth, 5).unwrap();
        let cr = consistency_score(&x, &random, 5).unwrap();
        assert!(cs > cr + 0.1, "smooth {cs} vs random {cr}");
    }

    #[test]
    fn validation() {
        let x = cloud(10, 4);
        assert!(consistency_score(&x, &[0.0; 9], 3).is_err());
        assert!(consistency_score(&x, &[0.0; 10], 0).is_err());
        assert!(consistency_score(&x, &[0.0; 10], 10).is_err());
    }
}
