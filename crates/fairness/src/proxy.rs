//! Proxy (redundant-encoding) detection.
//!
//! The paper's sharpest fairness warning: omitting the sensitive attribute is
//! not enough, because other features can encode it. This module scans every
//! feature for association with the protected mask using two complementary
//! measures — point-biserial correlation (linear leakage) and discretized
//! mutual information (arbitrary leakage) — and ranks candidates.

use fact_data::value::DataType;
use fact_data::{Dataset, FactError, Result};
use fact_stats::descriptive::pearson;

/// Association of one feature with the protected attribute.
#[derive(Debug, Clone)]
pub struct ProxyScore {
    /// Feature name.
    pub feature: String,
    /// |point-biserial correlation| with the protected mask (numeric
    /// features; `None` for categoricals).
    pub abs_correlation: Option<f64>,
    /// Mutual information (nats) with the protected mask, after equal-width
    /// discretization of numeric features into 10 bins.
    pub mutual_information: f64,
    /// Normalized MI in `[0, 1]` (divided by the protected-mask entropy).
    pub normalized_mi: f64,
}

/// Scan all columns except `exclude` for association with the protected
/// mask; results are sorted by normalized MI, strongest first.
pub fn scan_proxies(ds: &Dataset, mask: &[bool], exclude: &[&str]) -> Result<Vec<ProxyScore>> {
    if ds.n_rows() != mask.len() {
        return Err(FactError::LengthMismatch {
            expected: ds.n_rows(),
            actual: mask.len(),
        });
    }
    let h_mask = binary_entropy(mask);
    if h_mask <= 0.0 {
        return Err(FactError::InvalidArgument(
            "protected mask is constant; proxies are undefined".into(),
        ));
    }
    let mask_f: Vec<f64> = mask.iter().map(|&m| if m { 1.0 } else { 0.0 }).collect();
    let mut out = Vec::new();
    for field in ds.schema().fields() {
        if exclude.contains(&field.name.as_str()) {
            continue;
        }
        let col = ds.column(&field.name)?;
        let (bins, abs_corr) = match field.dtype {
            DataType::Cat => {
                let cat = col.as_cat()?;
                (
                    cat.codes.iter().map(|&c| c as usize).collect::<Vec<_>>(),
                    None,
                )
            }
            _ => {
                let vals = ds.f64_column(&field.name)?;
                let corr = pearson(&vals, &mask_f).ok().map(|c| c.abs());
                (discretize(&vals, 10), corr)
            }
        };
        let mi = mutual_information(&bins, mask);
        out.push(ProxyScore {
            feature: field.name.clone(),
            abs_correlation: abs_corr,
            mutual_information: mi,
            normalized_mi: (mi / h_mask).clamp(0.0, 1.0),
        });
    }
    out.sort_by(|a, b| {
        b.normalized_mi
            .partial_cmp(&a.normalized_mi)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    Ok(out)
}

/// Features whose normalized MI exceeds `threshold` (suggested: 0.1).
pub fn flag_proxies(scores: &[ProxyScore], threshold: f64) -> Vec<&ProxyScore> {
    scores
        .iter()
        .filter(|s| s.normalized_mi >= threshold)
        .collect()
}

fn discretize(vals: &[f64], n_bins: usize) -> Vec<usize> {
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for &v in vals {
        lo = lo.min(v);
        hi = hi.max(v);
    }
    let width = (hi - lo).max(1e-300);
    vals.iter()
        .map(|&v| {
            (((v - lo) / width) * n_bins as f64)
                .floor()
                .min(n_bins as f64 - 1.0) as usize
        })
        .collect()
}

fn binary_entropy(mask: &[bool]) -> f64 {
    let p = mask.iter().filter(|&&m| m).count() as f64 / mask.len() as f64;
    if p <= 0.0 || p >= 1.0 {
        return 0.0;
    }
    -(p * p.ln() + (1.0 - p) * (1.0 - p).ln())
}

fn mutual_information(bins: &[usize], mask: &[bool]) -> f64 {
    use std::collections::HashMap;
    let n = bins.len() as f64;
    let mut joint: HashMap<(usize, bool), f64> = HashMap::new();
    let mut marg_x: HashMap<usize, f64> = HashMap::new();
    let p_true = mask.iter().filter(|&&m| m).count() as f64 / n;
    for (&b, &m) in bins.iter().zip(mask) {
        *joint.entry((b, m)).or_insert(0.0) += 1.0;
        *marg_x.entry(b).or_insert(0.0) += 1.0;
    }
    let mut mi = 0.0;
    for ((b, m), count) in &joint {
        let pxy = count / n;
        let px = marg_x[b] / n;
        let py = if *m { p_true } else { 1.0 - p_true };
        if pxy > 0.0 && px > 0.0 && py > 0.0 {
            mi += pxy * (pxy / (px * py)).ln();
        }
    }
    mi.max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protected_mask;
    use fact_data::bias::inject_proxy;
    use fact_data::synth::loans::{generate_loans, LoanConfig};

    #[test]
    fn perfect_proxy_tops_the_ranking() {
        let ds = generate_loans(&LoanConfig {
            n: 5_000,
            seed: 1,
            proxy_strength: 1.0,
            ..LoanConfig::default()
        });
        let mask = protected_mask(&ds, "group", "B").unwrap();
        let scores = scan_proxies(&ds, &mask, &["group", "approved"]).unwrap();
        assert_eq!(scores[0].feature, "zip_risk");
        assert!(
            scores[0].normalized_mi > 0.9,
            "nmi={}",
            scores[0].normalized_mi
        );
        assert!(scores[0].abs_correlation.unwrap() > 0.95);
    }

    #[test]
    fn no_proxy_when_strength_zero() {
        let ds = generate_loans(&LoanConfig {
            n: 5_000,
            seed: 2,
            proxy_strength: 0.0,
            ..LoanConfig::default()
        });
        let mask = protected_mask(&ds, "group", "B").unwrap();
        let scores = scan_proxies(&ds, &mask, &["group", "approved"]).unwrap();
        for s in &scores {
            assert!(s.normalized_mi < 0.05, "{}: {}", s.feature, s.normalized_mi);
        }
        assert!(flag_proxies(&scores, 0.1).is_empty());
    }

    #[test]
    fn partial_proxy_scales_with_strength() {
        let weak = generate_loans(&LoanConfig {
            n: 5_000,
            seed: 3,
            proxy_strength: 0.3,
            ..LoanConfig::default()
        });
        let strong = generate_loans(&LoanConfig {
            n: 5_000,
            seed: 3,
            proxy_strength: 0.9,
            ..LoanConfig::default()
        });
        let score_of = |ds: &Dataset| {
            let mask = protected_mask(ds, "group", "B").unwrap();
            scan_proxies(ds, &mask, &["group", "approved"])
                .unwrap()
                .into_iter()
                .find(|s| s.feature == "zip_risk")
                .unwrap()
                .normalized_mi
        };
        assert!(score_of(&strong) > score_of(&weak) + 0.2);
    }

    #[test]
    fn categorical_proxy_detected() {
        // injected extra categorical column identical to group
        let ds = generate_loans(&LoanConfig {
            n: 2_000,
            seed: 4,
            ..LoanConfig::default()
        });
        let labels = ds.labels("group").unwrap();
        let mut ds2 = ds.clone();
        ds2.add_column("neighborhood", fact_data::Column::from_labels(&labels))
            .unwrap();
        let mask = protected_mask(&ds2, "group", "B").unwrap();
        let scores = scan_proxies(&ds2, &mask, &["group", "approved"]).unwrap();
        assert_eq!(scores[0].feature, "neighborhood");
        assert!(scores[0].normalized_mi > 0.99);
        assert!(scores[0].abs_correlation.is_none());
    }

    #[test]
    fn constant_mask_rejected() {
        let ds = generate_loans(&LoanConfig {
            n: 100,
            seed: 5,
            ..LoanConfig::default()
        });
        assert!(scan_proxies(&ds, &[true; 100], &[]).is_err());
        assert!(scan_proxies(&ds, &[false; 50], &[]).is_err());
    }

    #[test]
    fn proxy_injector_agrees_with_scanner() {
        let ds = generate_loans(&LoanConfig {
            n: 3_000,
            seed: 6,
            ..LoanConfig::default()
        });
        let ds = inject_proxy(&ds, "group", "B", "planted", 0.95, 7).unwrap();
        let mask = protected_mask(&ds, "group", "B").unwrap();
        let scores = scan_proxies(&ds, &mask, &["group", "approved"]).unwrap();
        assert_eq!(scores[0].feature, "planted");
    }
}
