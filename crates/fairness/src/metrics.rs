//! Group fairness metrics.
//!
//! Conventions: `mask[i] == true` marks the *protected* group; all
//! difference metrics are `unprotected − protected`, so a **positive** value
//! means the protected group is disadvantaged. Ratio metrics (disparate
//! impact) are `protected / unprotected`, so values **below 1** mean
//! disadvantage and the legal four-fifths rule is `DI ≥ 0.8`.

use fact_data::{FactError, Result};
use fact_ml::metrics::ConfusionMatrix;

fn split_by_group<'a, T: Copy>(vals: &'a [T], mask: &'a [bool]) -> (Vec<T>, Vec<T>) {
    let mut prot = Vec::new();
    let mut unprot = Vec::new();
    for (&v, &m) in vals.iter().zip(mask) {
        if m {
            prot.push(v);
        } else {
            unprot.push(v);
        }
    }
    (prot, unprot)
}

fn validate(len_a: usize, len_b: usize, mask: &[bool]) -> Result<()> {
    if len_a != len_b {
        return Err(FactError::LengthMismatch {
            expected: len_a,
            actual: len_b,
        });
    }
    if len_a != mask.len() {
        return Err(FactError::LengthMismatch {
            expected: len_a,
            actual: mask.len(),
        });
    }
    if len_a == 0 {
        return Err(FactError::EmptyData("fairness metric on empty data".into()));
    }
    if !mask.iter().any(|&m| m) || mask.iter().all(|&m| m) {
        return Err(FactError::InvalidArgument(
            "both protected and unprotected rows are required".into(),
        ));
    }
    Ok(())
}

fn positive_rate(pred: &[bool]) -> f64 {
    pred.iter().filter(|&&p| p).count() as f64 / pred.len() as f64
}

/// Positive-outcome rates `(protected, unprotected)`.
pub fn selection_rates(pred: &[bool], mask: &[bool]) -> Result<(f64, f64)> {
    validate(pred.len(), pred.len(), mask)?;
    let (p, u) = split_by_group(pred, mask);
    Ok((positive_rate(&p), positive_rate(&u)))
}

/// Statistical (demographic) parity difference:
/// `P(ŷ=1 | unprotected) − P(ŷ=1 | protected)`.
pub fn statistical_parity_difference(pred: &[bool], mask: &[bool]) -> Result<f64> {
    let (prot, unprot) = selection_rates(pred, mask)?;
    Ok(unprot - prot)
}

/// Disparate impact ratio: `P(ŷ=1 | protected) / P(ŷ=1 | unprotected)`.
/// Errors when the unprotected rate is zero.
pub fn disparate_impact(pred: &[bool], mask: &[bool]) -> Result<f64> {
    let (prot, unprot) = selection_rates(pred, mask)?;
    if unprot == 0.0 {
        return Err(FactError::Numeric(
            "disparate impact undefined: unprotected selection rate is zero".into(),
        ));
    }
    Ok(prot / unprot)
}

/// Equal opportunity difference: `TPR(unprotected) − TPR(protected)`.
/// Requires positive examples in both groups.
pub fn equal_opportunity_difference(truth: &[bool], pred: &[bool], mask: &[bool]) -> Result<f64> {
    validate(truth.len(), pred.len(), mask)?;
    let (tpr_p, tpr_u) = group_rates(truth, pred, mask, |cm| cm.tpr())?;
    Ok(tpr_u - tpr_p)
}

/// Equalized odds distance: `max(|ΔTPR|, |ΔFPR|)` between groups.
pub fn equalized_odds_difference(truth: &[bool], pred: &[bool], mask: &[bool]) -> Result<f64> {
    validate(truth.len(), pred.len(), mask)?;
    let (tpr_p, tpr_u) = group_rates(truth, pred, mask, |cm| cm.tpr())?;
    let (fpr_p, fpr_u) = group_rates(truth, pred, mask, |cm| cm.fpr())?;
    Ok((tpr_u - tpr_p).abs().max((fpr_u - fpr_p).abs()))
}

/// Predictive parity difference: `precision(unprotected) − precision(protected)`.
pub fn predictive_parity_difference(truth: &[bool], pred: &[bool], mask: &[bool]) -> Result<f64> {
    validate(truth.len(), pred.len(), mask)?;
    let (p, u) = group_rates(truth, pred, mask, |cm| cm.precision())?;
    Ok(u - p)
}

/// Per-group accuracy `(protected, unprotected)`.
pub fn group_accuracy(truth: &[bool], pred: &[bool], mask: &[bool]) -> Result<(f64, f64)> {
    validate(truth.len(), pred.len(), mask)?;
    let mut correct = [0usize; 2];
    let mut total = [0usize; 2];
    for ((&t, &p), &m) in truth.iter().zip(pred).zip(mask) {
        let g = usize::from(!m); // 0 = protected, 1 = unprotected
        total[g] += 1;
        if t == p {
            correct[g] += 1;
        }
    }
    Ok((
        correct[0] as f64 / total[0] as f64,
        correct[1] as f64 / total[1] as f64,
    ))
}

/// Mean-calibration gap between groups: `|mean(p)−mean(y)|` per group,
/// returned as `(protected, unprotected)`. A well-calibrated model has both
/// near zero.
pub fn calibration_gap(truth: &[bool], probs: &[f64], mask: &[bool]) -> Result<(f64, f64)> {
    validate(truth.len(), probs.len(), mask)?;
    let gap = |want: bool| {
        let mut psum = 0.0;
        let mut ysum = 0.0;
        let mut n = 0usize;
        for ((&t, &p), &m) in truth.iter().zip(probs).zip(mask) {
            if m == want {
                psum += p;
                ysum += if t { 1.0 } else { 0.0 };
                n += 1;
            }
        }
        (psum / n as f64 - ysum / n as f64).abs()
    };
    Ok((gap(true), gap(false)))
}

fn group_rates(
    truth: &[bool],
    pred: &[bool],
    mask: &[bool],
    rate: fn(&ConfusionMatrix) -> Option<f64>,
) -> Result<(f64, f64)> {
    let mut out = [0.0; 2];
    for (g, want) in [(0usize, true), (1usize, false)] {
        let t: Vec<bool> = truth
            .iter()
            .zip(mask)
            .filter(|(_, &m)| m == want)
            .map(|(&v, _)| v)
            .collect();
        let p: Vec<bool> = pred
            .iter()
            .zip(mask)
            .filter(|(_, &m)| m == want)
            .map(|(&v, _)| v)
            .collect();
        let cm = ConfusionMatrix::from_predictions(&t, &p)?;
        out[g] = rate(&cm).ok_or_else(|| {
            FactError::Numeric(format!(
                "group rate undefined for the {} group (degenerate class mix)",
                if want { "protected" } else { "unprotected" }
            ))
        })?;
    }
    Ok((out[0], out[1]))
}

#[cfg(test)]
mod tests {
    use super::*;

    // protected group: indices 0..4; unprotected: 4..8
    const MASK: [bool; 8] = [true, true, true, true, false, false, false, false];

    #[test]
    fn parity_difference_and_di() {
        // protected selected 1/4, unprotected 3/4
        let pred = [true, false, false, false, true, true, true, false];
        let spd = statistical_parity_difference(&pred, &MASK).unwrap();
        assert!((spd - 0.5).abs() < 1e-12);
        let di = disparate_impact(&pred, &MASK).unwrap();
        assert!((di - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn parity_zero_when_equal() {
        let pred = [true, true, false, false, true, true, false, false];
        assert_eq!(statistical_parity_difference(&pred, &MASK).unwrap(), 0.0);
        assert_eq!(disparate_impact(&pred, &MASK).unwrap(), 1.0);
    }

    #[test]
    fn di_undefined_when_unprotected_rate_zero() {
        let pred = [true, true, false, false, false, false, false, false];
        assert!(disparate_impact(&pred, &MASK).is_err());
    }

    #[test]
    fn equal_opportunity_measures_tpr_gap() {
        // truth: two positives per group.
        let truth = [true, true, false, false, true, true, false, false];
        // protected TPR = 1/2, unprotected TPR = 2/2
        let pred = [true, false, false, false, true, true, false, false];
        let eod = equal_opportunity_difference(&truth, &pred, &MASK).unwrap();
        assert!((eod - 0.5).abs() < 1e-12);
    }

    #[test]
    fn equalized_odds_takes_worst_gap() {
        let truth = [true, true, false, false, true, true, false, false];
        // TPR equal (1.0 both); FPR: protected 1/2, unprotected 0
        let pred = [true, true, true, false, true, true, false, false];
        let eo = equalized_odds_difference(&truth, &pred, &MASK).unwrap();
        assert!((eo - 0.5).abs() < 1e-12);
    }

    #[test]
    fn predictive_parity_gap() {
        let truth = [true, false, false, false, true, true, false, false];
        // protected precision 1/2; unprotected 2/2
        let pred = [true, true, false, false, true, true, false, false];
        let ppd = predictive_parity_difference(&truth, &pred, &MASK).unwrap();
        assert!((ppd - 0.5).abs() < 1e-12);
    }

    #[test]
    fn group_accuracy_split() {
        let truth = [true, true, true, true, false, false, false, false];
        let pred = [true, true, false, false, false, false, false, false];
        let (a_p, a_u) = group_accuracy(&truth, &pred, &MASK).unwrap();
        assert_eq!(a_p, 0.5);
        assert_eq!(a_u, 1.0);
    }

    #[test]
    fn calibration_gap_zero_for_matched_probs() {
        let truth = [true, false, true, false, true, false, true, false];
        let probs = [0.5; 8];
        let (g_p, g_u) = calibration_gap(&truth, &probs, &MASK).unwrap();
        assert!(g_p < 1e-12);
        assert!(g_u < 1e-12);
    }

    #[test]
    fn validation_errors() {
        let pred = [true; 8];
        assert!(statistical_parity_difference(&pred, &[true; 8]).is_err());
        assert!(statistical_parity_difference(&pred, &[false; 8]).is_err());
        assert!(statistical_parity_difference(&pred[..4], &MASK).is_err());
        assert!(statistical_parity_difference(&[], &[]).is_err());
    }

    #[test]
    fn eod_requires_positives_in_both_groups() {
        let truth = [false, false, false, false, true, true, false, false];
        let pred = [false; 8];
        assert!(equal_opportunity_difference(&truth, &pred, &MASK).is_err());
    }
}
