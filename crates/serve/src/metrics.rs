//! Lock-free serving observability.
//!
//! Every hot-path record is a relaxed atomic operation: counters are
//! [`AtomicU64`]s, the latency histogram is a fixed array of power-of-two
//! buckets, and queue depth is a gauge updated with `fetch_add`/`fetch_sub`.
//! Snapshots read the atomics without stopping traffic, so a reported
//! snapshot is a *consistent-enough* view (individual cells are exact; the
//! set is not taken under a global lock — standard practice for serving
//! metrics).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Sub-bucket resolution: each power-of-two octave is split into
/// `2^SUB_BITS` linear sub-buckets (4), bounding quantile error at 25%.
const SUB_BITS: usize = 2;
/// Nanosecond octaves covered; the top one reaches ~9.2 minutes.
const OCTAVES: usize = 40;
/// Total fixed buckets in the log-linear latency histogram.
pub const LATENCY_BUCKETS: usize = OCTAVES << SUB_BITS;

/// A fixed-bucket, lock-free latency histogram: log-linear buckets
/// (power-of-two octaves, 4 linear sub-buckets each) over nanoseconds.
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; LATENCY_BUCKETS],
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHistogram::default()
    }

    fn bucket_index(nanos: u64) -> usize {
        let n = nanos.max(1);
        let octave = (63 - u64::leading_zeros(n) as usize).min(OCTAVES - 1);
        let sub = if octave >= SUB_BITS {
            ((n >> (octave - SUB_BITS)) & ((1 << SUB_BITS) - 1)) as usize
        } else {
            0 // octaves below 2^SUB_BITS ns have no sub-resolution
        };
        (octave << SUB_BITS) + sub
    }

    /// Upper edge (exclusive) of bucket `i`, in nanoseconds.
    fn bucket_upper(i: usize) -> u64 {
        let octave = i >> SUB_BITS;
        let sub = (i & ((1 << SUB_BITS) - 1)) as u64;
        if octave >= SUB_BITS {
            (1u64 << octave) + ((sub + 1) << (octave - SUB_BITS))
        } else {
            1u64 << (octave + 1)
        }
    }

    /// Record one sample.
    pub fn record(&self, latency: Duration) {
        let idx = Self::bucket_index(latency.as_nanos().min(u128::from(u64::MAX)) as u64);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// Zero every bucket. Concurrent `record`s land in either the old or
    /// the new window — fine for the rolling-window use the admission
    /// controller puts this to, where a sample's window is advisory.
    pub fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
    }

    /// The `q`-quantile (0 ≤ q ≤ 1) as the upper edge of the bucket that
    /// contains it, or `None` if the histogram is empty. Log-linear edges
    /// bound the true quantile within 25% — the usual trade for a lock-free
    /// fixed-size histogram.
    pub fn quantile(&self, q: f64) -> Option<Duration> {
        let counts: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return None;
        }
        let target = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, c) in counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Some(Duration::from_nanos(Self::bucket_upper(i)));
            }
        }
        Some(Duration::from_nanos(u64::MAX))
    }
}

/// Per-shard counters (all relaxed atomics).
#[derive(Debug, Default)]
pub struct ShardMetrics {
    /// Requests accepted into the shard's queue.
    pub enqueued: AtomicU64,
    /// Decisions served (replied to).
    pub served: AtomicU64,
    /// Requests shed at admission (queue full or adaptive bound → `Busy`).
    pub shed: AtomicU64,
    /// Requests refused because their tenant was over quota (`Throttled`).
    pub throttled: AtomicU64,
    /// Requests whose caller gave up waiting (`Timeout`).
    pub timeouts: AtomicU64,
    /// Requests hard-rejected by a tripped guard policy.
    pub rejected: AtomicU64,
    /// Decisions served in degraded audit-and-flag mode.
    pub flagged: AtomicU64,
    /// Micro-batches executed.
    pub batches: AtomicU64,
    /// Sum of batch sizes (mean batch = batch_items / batches).
    pub batch_items: AtomicU64,
    /// Current queue depth (gauge).
    pub depth: AtomicU64,
    /// High-water mark of the queue depth.
    pub depth_max: AtomicU64,
}

impl ShardMetrics {
    /// Bump the depth gauge (on successful enqueue).
    pub fn depth_inc(&self) {
        let d = self.depth.fetch_add(1, Ordering::Relaxed) + 1;
        self.depth_max.fetch_max(d, Ordering::Relaxed);
    }

    /// Drop the depth gauge (on dequeue).
    pub fn depth_dec(&self) {
        self.depth.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Feature-cache counters (all relaxed atomics), shared between a
/// [`CachedFeatureSource`](crate::cache::CachedFeatureSource) and the
/// registry that reports it. All zeros when no cache is configured.
#[derive(Debug, Default)]
pub struct CacheStats {
    /// Keys answered from a fresh positive entry (no upstream work).
    pub hits: AtomicU64,
    /// Keys absent or expired at lookup time (an upstream fetch followed).
    pub misses: AtomicU64,
    /// Keys answered from a fresh *negative* entry: the upstream recently
    /// failed for them, so the batch failed fast without an upstream call.
    pub negative_hits: AtomicU64,
    /// Entries removed to make room for an insert at capacity (lazy drops
    /// of already-expired entries are not counted).
    pub evictions: AtomicU64,
    /// Cold-key fetches that joined another batch's in-flight upstream
    /// call instead of issuing their own (single-flight coalescing).
    pub coalesced: AtomicU64,
    /// Batched calls actually forwarded upstream.
    pub upstream_batches: AtomicU64,
    /// Entries dropped because they were stamped before the last
    /// [`invalidate`](crate::cache::CachedFeatureSource::invalidate) —
    /// stale-generation rows lazily discarded on access.
    pub invalidated: AtomicU64,
}

impl CacheStats {
    /// An instantaneous plain-data copy of every counter.
    pub fn snapshot(&self) -> CacheSnapshot {
        CacheSnapshot {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            negative_hits: self.negative_hits.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            coalesced: self.coalesced.load(Ordering::Relaxed),
            upstream_batches: self.upstream_batches.load(Ordering::Relaxed),
            invalidated: self.invalidated.load(Ordering::Relaxed),
        }
    }
}

/// Plain-data copy of [`CacheStats`] at one instant.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CacheSnapshot {
    /// Keys served from a fresh positive entry.
    pub hits: u64,
    /// Keys that had to go upstream.
    pub misses: u64,
    /// Keys failed fast from a fresh negative entry.
    pub negative_hits: u64,
    /// Entries evicted for capacity.
    pub evictions: u64,
    /// Fetches coalesced onto another batch's in-flight upstream call.
    pub coalesced: u64,
    /// Batched calls forwarded upstream.
    pub upstream_batches: u64,
    /// Stale-generation entries dropped after an invalidation.
    pub invalidated: u64,
}

impl CacheSnapshot {
    /// Hit fraction over all positive-path lookups (hits + misses);
    /// zero when the cache saw no traffic.
    pub fn hit_rate(&self) -> f64 {
        let looked = self.hits + self.misses;
        if looked == 0 {
            0.0
        } else {
            self.hits as f64 / looked as f64
        }
    }
}

/// Stripes for the per-tenant counter map: bounds lock contention without
/// a per-tenant allocation on the hot path.
const TENANT_STRIPES: usize = 8;
/// Max tenants tracked per stripe; ids beyond the cap fold into
/// [`AdmissionStats::untracked`] so an id-spraying tenant cannot grow the
/// map without bound.
const TENANTS_PER_STRIPE: usize = 64;

/// Per-tenant admission outcomes (plain integers; only ever touched under
/// their stripe lock).
#[derive(Debug, Default, Clone, Copy)]
struct TenantCounters {
    admitted: u64,
    shed: u64,
    throttled: u64,
}

/// Admission-control counters, shared between the
/// [`AdmissionController`](crate::admission::AdmissionController) and the
/// registry that reports it. All zeros when admission control is not
/// configured.
#[derive(Debug)]
pub struct AdmissionStats {
    /// Requests refused because their tenant was over quota.
    pub throttled: AtomicU64,
    /// Requests shed by the *adaptive* bound (depth ≥ effective capacity);
    /// a subset of the shard-level `shed` counters, which also count
    /// channel-full sheds.
    pub shed: AtomicU64,
    /// Control-loop ticks executed.
    pub ticks: AtomicU64,
    /// Ticks that shrank effective capacity (window p99 over target).
    pub shrinks: AtomicU64,
    /// Ticks that grew effective capacity (window p99 under target, or an
    /// idle window).
    pub grows: AtomicU64,
    /// Current effective queue capacity (gauge; 0 when admission control
    /// is off or `queue_cap` is 0).
    pub effective_cap: AtomicU64,
    tenants: Vec<Mutex<HashMap<u64, TenantCounters>>>,
    /// Admission outcomes for tenants beyond the tracking cap (counted,
    /// never dropped silently).
    pub untracked: AtomicU64,
}

impl Default for AdmissionStats {
    fn default() -> Self {
        AdmissionStats {
            throttled: AtomicU64::new(0),
            shed: AtomicU64::new(0),
            ticks: AtomicU64::new(0),
            shrinks: AtomicU64::new(0),
            grows: AtomicU64::new(0),
            effective_cap: AtomicU64::new(0),
            tenants: (0..TENANT_STRIPES)
                .map(|_| Mutex::new(HashMap::new()))
                .collect(),
            untracked: AtomicU64::new(0),
        }
    }
}

impl AdmissionStats {
    fn with_tenant(&self, tenant: u64, f: impl FnOnce(&mut TenantCounters)) {
        let stripe = &self.tenants[(tenant as usize) % TENANT_STRIPES];
        let mut map = stripe.lock().expect("tenant stripe lock");
        if let Some(c) = map.get_mut(&tenant) {
            f(c);
            return;
        }
        if map.len() >= TENANTS_PER_STRIPE {
            self.untracked.fetch_add(1, Ordering::Relaxed);
            return;
        }
        f(map.entry(tenant).or_default());
    }

    /// Count one admitted request for `tenant`.
    pub fn tenant_admitted(&self, tenant: u64) {
        self.with_tenant(tenant, |c| c.admitted += 1);
    }

    /// Count one adaptive-bound shed for `tenant`.
    pub fn tenant_shed(&self, tenant: u64) {
        self.with_tenant(tenant, |c| c.shed += 1);
    }

    /// Count one quota throttle for `tenant`.
    pub fn tenant_throttled(&self, tenant: u64) {
        self.with_tenant(tenant, |c| c.throttled += 1);
    }

    /// An instantaneous plain-data copy, tenants sorted by id.
    pub fn snapshot(&self) -> AdmissionSnapshot {
        let mut tenants: Vec<TenantSnapshot> = Vec::new();
        for stripe in &self.tenants {
            let map = stripe.lock().expect("tenant stripe lock");
            tenants.extend(map.iter().map(|(&tenant, c)| TenantSnapshot {
                tenant,
                admitted: c.admitted,
                shed: c.shed,
                throttled: c.throttled,
            }));
        }
        tenants.sort_by_key(|t| t.tenant);
        AdmissionSnapshot {
            throttled: self.throttled.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            ticks: self.ticks.load(Ordering::Relaxed),
            shrinks: self.shrinks.load(Ordering::Relaxed),
            grows: self.grows.load(Ordering::Relaxed),
            effective_cap: self.effective_cap.load(Ordering::Relaxed),
            untracked: self.untracked.load(Ordering::Relaxed),
            tenants,
        }
    }
}

/// One tenant's admission outcomes at one instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TenantSnapshot {
    /// Tenant id (as carried on [`DecisionRequest`](crate::DecisionRequest)).
    pub tenant: u64,
    /// Requests this tenant got past admission.
    pub admitted: u64,
    /// Requests shed for this tenant by the adaptive bound.
    pub shed: u64,
    /// Requests throttled for this tenant by its quota.
    pub throttled: u64,
}

/// Plain-data copy of [`AdmissionStats`] at one instant.
#[derive(Debug, Clone, Default)]
pub struct AdmissionSnapshot {
    /// Quota throttles across all tenants.
    pub throttled: u64,
    /// Adaptive-bound sheds across all tenants.
    pub shed: u64,
    /// Control-loop ticks executed.
    pub ticks: u64,
    /// Capacity-shrinking ticks.
    pub shrinks: u64,
    /// Capacity-growing ticks.
    pub grows: u64,
    /// Effective queue capacity at snapshot time.
    pub effective_cap: u64,
    /// Outcomes attributed to tenants beyond the tracking cap.
    pub untracked: u64,
    /// Per-tenant outcomes, sorted by tenant id.
    pub tenants: Vec<TenantSnapshot>,
}

impl AdmissionSnapshot {
    /// The snapshot for one tenant, if tracked.
    pub fn tenant(&self, tenant: u64) -> Option<&TenantSnapshot> {
        self.tenants.iter().find(|t| t.tenant == tenant)
    }
}

/// The service-wide registry: one [`ShardMetrics`] per shard plus global
/// latency, guard, and feature-cache counters. Shared via `Arc`; all
/// methods take `&self`.
#[derive(Debug)]
pub struct MetricsRegistry {
    shards: Vec<ShardMetrics>,
    /// End-to-end decision latency (enqueue → reply).
    pub latency: LatencyHistogram,
    /// Guard alerts forwarded to the global channel (after debouncing).
    pub alerts: AtomicU64,
    /// Differential-privacy budget spent, in micro-ε (ε × 1e6), summed
    /// across shards.
    pub epsilon_micro: AtomicU64,
    /// Feature-cache counters; all zeros unless `ServeConfig.cache` wired
    /// a [`CachedFeatureSource`](crate::cache::CachedFeatureSource) in.
    pub cache: Arc<CacheStats>,
    /// Admission-control counters; all zeros unless `ServeConfig.admission`
    /// wired an [`AdmissionController`](crate::admission::AdmissionController) in.
    pub admission: Arc<AdmissionStats>,
    /// Audit-archiver counters; all zeros unless the audit sink was
    /// configured with [`AuditSinkConfig::archive`](crate::AuditSinkConfig::archive)
    /// (the sink's own [`ArchiveStats`](crate::archive::ArchiveStats) is
    /// shared in via [`with_archive_stats`](MetricsRegistry::with_archive_stats)).
    pub archive: Arc<crate::archive::ArchiveStats>,
}

impl MetricsRegistry {
    /// A registry for `shards` worker shards.
    pub fn new(shards: usize) -> Self {
        Self::with_archive_stats(shards, Arc::new(crate::archive::ArchiveStats::default()))
    }

    /// A registry for `shards` worker shards that reports `archive` — the
    /// live counter block owned by an audit sink's background archiver —
    /// alongside the serving counters.
    pub fn with_archive_stats(shards: usize, archive: Arc<crate::archive::ArchiveStats>) -> Self {
        MetricsRegistry {
            shards: (0..shards).map(|_| ShardMetrics::default()).collect(),
            latency: LatencyHistogram::new(),
            alerts: AtomicU64::new(0),
            epsilon_micro: AtomicU64::new(0),
            cache: Arc::new(CacheStats::default()),
            admission: Arc::new(AdmissionStats::default()),
            archive,
        }
    }

    /// The counters for one shard.
    pub fn shard(&self, i: usize) -> &ShardMetrics {
        &self.shards[i]
    }

    /// Number of shards.
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    /// Record ε spent on a DP release.
    pub fn add_epsilon(&self, epsilon: f64) {
        self.epsilon_micro
            .fetch_add((epsilon * 1e6).round() as u64, Ordering::Relaxed);
    }

    /// An instantaneous copy of every counter plus latency quantiles.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let shards: Vec<ShardSnapshot> = self
            .shards
            .iter()
            .map(|s| ShardSnapshot {
                enqueued: s.enqueued.load(Ordering::Relaxed),
                served: s.served.load(Ordering::Relaxed),
                shed: s.shed.load(Ordering::Relaxed),
                throttled: s.throttled.load(Ordering::Relaxed),
                timeouts: s.timeouts.load(Ordering::Relaxed),
                rejected: s.rejected.load(Ordering::Relaxed),
                flagged: s.flagged.load(Ordering::Relaxed),
                batches: s.batches.load(Ordering::Relaxed),
                batch_items: s.batch_items.load(Ordering::Relaxed),
                depth: s.depth.load(Ordering::Relaxed),
                depth_max: s.depth_max.load(Ordering::Relaxed),
            })
            .collect();
        MetricsSnapshot {
            shards,
            latency_count: self.latency.count(),
            p50: self.latency.quantile(0.50),
            p95: self.latency.quantile(0.95),
            p99: self.latency.quantile(0.99),
            alerts: self.alerts.load(Ordering::Relaxed),
            epsilon_spent: self.epsilon_micro.load(Ordering::Relaxed) as f64 / 1e6,
            cache: self.cache.snapshot(),
            admission: self.admission.snapshot(),
            archive: self.archive.snapshot(),
        }
    }
}

/// Plain-data copy of one shard's counters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardSnapshot {
    /// Requests accepted into the queue.
    pub enqueued: u64,
    /// Decisions served.
    pub served: u64,
    /// Requests shed at admission.
    pub shed: u64,
    /// Requests throttled by a tenant quota.
    pub throttled: u64,
    /// Caller-side timeouts.
    pub timeouts: u64,
    /// Hard rejections from a tripped guard.
    pub rejected: u64,
    /// Audit-and-flag decisions.
    pub flagged: u64,
    /// Micro-batches executed.
    pub batches: u64,
    /// Sum of batch sizes.
    pub batch_items: u64,
    /// Queue depth at snapshot time.
    pub depth: u64,
    /// Queue-depth high-water mark.
    pub depth_max: u64,
}

impl ShardSnapshot {
    /// Mean micro-batch size.
    pub fn mean_batch(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.batch_items as f64 / self.batches as f64
        }
    }
}

/// Plain-data copy of the whole registry at one instant.
#[derive(Debug, Clone)]
pub struct MetricsSnapshot {
    /// Per-shard counters.
    pub shards: Vec<ShardSnapshot>,
    /// Latency samples recorded.
    pub latency_count: u64,
    /// Median end-to-end latency (bucket upper edge).
    pub p50: Option<Duration>,
    /// 95th-percentile latency.
    pub p95: Option<Duration>,
    /// 99th-percentile latency.
    pub p99: Option<Duration>,
    /// Alerts forwarded to the global channel.
    pub alerts: u64,
    /// Total differential-privacy ε spent.
    pub epsilon_spent: f64,
    /// Feature-cache counters (all zero when no cache is configured).
    pub cache: CacheSnapshot,
    /// Admission-control counters (all zero when admission is off).
    pub admission: AdmissionSnapshot,
    /// Audit-archiver counters (all zero when archiving is off).
    pub archive: crate::archive::ArchiveSnapshot,
}

impl MetricsSnapshot {
    /// Total decisions served across shards.
    pub fn served(&self) -> u64 {
        self.shards.iter().map(|s| s.served).sum()
    }

    /// Total requests shed across shards.
    pub fn shed(&self) -> u64 {
        self.shards.iter().map(|s| s.shed).sum()
    }

    /// Total quota throttles across shards.
    pub fn throttled(&self) -> u64 {
        self.shards.iter().map(|s| s.throttled).sum()
    }

    /// Render as a plain-text block (one line per shard plus totals),
    /// suitable for logs or a `/metrics`-style endpoint.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        out.push_str(
            "shard  served  shed  throttle  timeout  reject  flagged  depth  depth_max  mean_batch\n",
        );
        for (i, s) in self.shards.iter().enumerate() {
            out.push_str(&format!(
                "{:>5}  {:>6}  {:>4}  {:>8}  {:>7}  {:>6}  {:>7}  {:>5}  {:>9}  {:>10.2}\n",
                i,
                s.served,
                s.shed,
                s.throttled,
                s.timeouts,
                s.rejected,
                s.flagged,
                s.depth,
                s.depth_max,
                s.mean_batch(),
            ));
        }
        let fmt = |d: Option<Duration>| match d {
            Some(d) => format!("{:.1}us", d.as_nanos() as f64 / 1e3),
            None => "-".to_string(),
        };
        out.push_str(&format!(
            "total served={} shed={} alerts={} eps_spent={:.4} p50={} p95={} p99={}\n",
            self.served(),
            self.shed(),
            self.alerts,
            self.epsilon_spent,
            fmt(self.p50),
            fmt(self.p95),
            fmt(self.p99),
        ));
        out.push_str(&format!(
            "cache hits={} misses={} neg_hits={} evictions={} coalesced={} upstream={} \
             invalidated={} hit_rate={:.3}\n",
            self.cache.hits,
            self.cache.misses,
            self.cache.negative_hits,
            self.cache.evictions,
            self.cache.coalesced,
            self.cache.upstream_batches,
            self.cache.invalidated,
            self.cache.hit_rate(),
        ));
        let a = &self.admission;
        out.push_str(&format!(
            "admission cap={} ticks={} shrinks={} grows={} throttled={} adm_shed={} untracked={}\n",
            a.effective_cap, a.ticks, a.shrinks, a.grows, a.throttled, a.shed, a.untracked,
        ));
        for t in &a.tenants {
            out.push_str(&format!(
                "tenant {} admitted={} shed={} throttled={}\n",
                t.tenant, t.admitted, t.shed, t.throttled,
            ));
        }
        let ar = &self.archive;
        out.push_str(&format!(
            "archive segments={} bytes_before={} bytes_after={} ratio={:.3} \
             verify_failures={} deletes={} ticks={}\n",
            ar.segments_archived,
            ar.bytes_before,
            ar.bytes_after,
            ar.ratio(),
            ar.verify_failures,
            ar.deletes_completed,
            ar.ticks,
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_and_quantiles() {
        let h = LatencyHistogram::new();
        assert_eq!(h.quantile(0.5), None);
        for _ in 0..90 {
            h.record(Duration::from_micros(100)); // ~2^17 ns
        }
        for _ in 0..10 {
            h.record(Duration::from_millis(10)); // ~2^23 ns
        }
        assert_eq!(h.count(), 100);
        let p50 = h.quantile(0.50).unwrap();
        let p99 = h.quantile(0.99).unwrap();
        assert!(p50 < Duration::from_millis(1), "p50 {p50:?}");
        assert!(p99 >= Duration::from_millis(8), "p99 {p99:?}");
        assert!(h.quantile(0.0).unwrap() <= p50);
    }

    #[test]
    fn quantile_upper_edge_bounds_sample() {
        let h = LatencyHistogram::new();
        h.record(Duration::from_nanos(1000));
        // 1000 ns is in [512, 1024): upper edge 1024
        assert_eq!(h.quantile(1.0).unwrap(), Duration::from_nanos(1024));
    }

    #[test]
    fn registry_snapshot_reads_counters() {
        let m = MetricsRegistry::new(2);
        m.shard(0).served.fetch_add(3, Ordering::Relaxed);
        m.shard(1).shed.fetch_add(2, Ordering::Relaxed);
        m.shard(0).depth_inc();
        m.shard(0).depth_inc();
        m.shard(0).depth_dec();
        m.add_epsilon(0.25);
        let snap = m.snapshot();
        assert_eq!(snap.served(), 3);
        assert_eq!(snap.shed(), 2);
        assert_eq!(snap.shards[0].depth, 1);
        assert_eq!(snap.shards[0].depth_max, 2);
        assert!((snap.epsilon_spent - 0.25).abs() < 1e-9);
        let text = snap.render_text();
        assert!(text.contains("total served=3"));
        assert!(text.contains("cache hits=0"));
        assert!(text.contains("admission cap=0"));
        assert!(text.contains("archive segments=0"));
        // header + 2 shards + totals + cache + admission + archive
        // (no tenants seen)
        assert!(text.lines().count() == 7);
    }

    #[test]
    fn histogram_reset_zeroes_counts() {
        let h = LatencyHistogram::new();
        h.record(Duration::from_micros(50));
        h.record(Duration::from_micros(500));
        assert_eq!(h.count(), 2);
        h.reset();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.99), None);
    }

    #[test]
    fn admission_stats_track_tenants_with_bounded_map() {
        let a = AdmissionStats::default();
        a.tenant_admitted(7);
        a.tenant_admitted(7);
        a.tenant_throttled(7);
        a.tenant_shed(9);
        let snap = a.snapshot();
        let t7 = snap.tenant(7).unwrap();
        assert_eq!((t7.admitted, t7.shed, t7.throttled), (2, 0, 1));
        assert_eq!(snap.tenant(9).unwrap().shed, 1);
        assert!(snap.tenant(1).is_none());
        // spray ids far beyond the cap: map stays bounded, spill is counted
        for id in 0..10_000u64 {
            a.tenant_admitted(id);
        }
        let snap = a.snapshot();
        assert!(snap.tenants.len() <= TENANT_STRIPES * TENANTS_PER_STRIPE);
        // every tracked tenant absorbed exactly one spray call; the rest spilled
        let tracked = snap.tenants.iter().map(|t| t.admitted).sum::<u64>() - 2;
        assert_eq!(snap.untracked, 10_000 - tracked);
    }

    #[test]
    fn cache_stats_snapshot_and_hit_rate() {
        let stats = CacheStats::default();
        assert_eq!(stats.snapshot(), CacheSnapshot::default());
        assert_eq!(stats.snapshot().hit_rate(), 0.0);
        stats.hits.fetch_add(3, Ordering::Relaxed);
        stats.misses.fetch_add(1, Ordering::Relaxed);
        stats.negative_hits.fetch_add(2, Ordering::Relaxed);
        let snap = stats.snapshot();
        assert_eq!(snap.hits, 3);
        assert_eq!(snap.negative_hits, 2);
        assert!((snap.hit_rate() - 0.75).abs() < 1e-12);
    }
}
