//! Durable, hash-chained audit sink: the persistence layer behind
//! audit-and-flag serving.
//!
//! `fact-serve` used to *count* flagged decisions; a crash erased exactly
//! the evidence the audit-and-flag degrade policy exists to preserve. This
//! module makes the trail durable and tamper-evident:
//!
//! * **One writer thread** is fed by an `std::sync::mpsc` channel from all
//!   shard workers. Events are batched (up to `batch_max`, or after
//!   `flush_interval` of quiet) and each batch becomes one storage append
//!   followed by one fsync — so a crash can tear at most the last batch.
//! * **Every entry extends the [`fact_transparency`] hash chain**: the
//!   writer carries a [`ChainHead`] and serializes chained
//!   [`AuditEntry`]s as JSONL, one line per entry. The file itself *is*
//!   the chain; any edit, deletion, or reorder is detectable offline with
//!   [`verify_chain_from`](fact_transparency::audit::verify_chain_from).
//! * **The chain head is persisted** after every synced batch (a small
//!   sidecar the storage keeps next to the log). It is advisory: losing it
//!   never loses decisions, but comparing it against the recovered log
//!   bounds and *reports* what a crash took.
//! * **The log is segmented.** The writer rolls to a new segment
//!   (`<path>.000001.jsonl`, `<path>.000002.jsonl`, …) once the active one
//!   exceeds [`AuditSinkConfig::max_segment_bytes`], and opens each new
//!   segment with a **handoff record**: a normal chained entry whose
//!   `details` restate the head it continues
//!   ([`ChainHead::handoff_details`]). Because the claim is covered by the
//!   entry's own digest, every segment verifies **standalone** — no need
//!   to replay history from genesis — and old segments can be archived or
//!   verified lazily ([`verify_segment`], [`verify_all_segments`]).
//! * **Sealed segments can be archived.** When
//!   [`AuditSinkConfig::archive`] is set, a background
//!   [`Archiver`] thread (never the writer hot
//!   path) compresses sealed segments past a retention horizon into
//!   verified `.facz` containers and deletes the originals — see
//!   [`crate::archive`] for the crash-safe protocol. Recovery and
//!   [`verify_all_segments`] read archived segments transparently via
//!   [`read_segment_or_archive`], so history stays verifiable across the
//!   live/archived boundary.
//! * **A startup recovery pass** replays only the *newest* segment: its
//!   handoff record says where the chain resumes, so recovery work is
//!   O(segment), not O(history). A torn tail is truncated at the exact cut
//!   point; a segment whose opening handoff itself tore (a crash during
//!   the roll) is wiped and recovery falls back one segment. A *missing
//!   middle* segment is reported as provable loss, quantified from the
//!   neighbors' handoff claims — never silently skipped.
//!
//! Storage is injectable through [`AuditStorage`], which is what the
//! crash/fault-injection test suite drives: [`MemStorage`] can fail an
//! append outright, persist a short write, die mid-batch or at a segment
//! boundary like a killed process, or lose a head-sidecar rename the way
//! an un-fsynced directory does — the same failure surface any
//! checkpoint/WAL path has.

use std::collections::BTreeMap;
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, RecvTimeoutError, SyncSender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use fact_transparency::audit::{
    is_handoff, parse_handoff_details, verify_segment_entries, AuditEntry, ChainHead, SegmentCheck,
    SegmentError, SEGMENT_HANDOFF_ACTION,
};

use crate::archive::{decode_archive, ArchiveConfig, ArchiveSnapshot, ArchiveStats, Archiver};

/// Where the audit log's bytes live: an ordered set of append-only
/// segments plus a small sidecar slot for the persisted chain head.
/// Implementations are moved into the writer thread, so they must be
/// `Send`.
///
/// The contract mirrors real files: `append_log` may persist a *prefix*
/// of the buffer before failing (short write, kill), nothing is considered
/// durable until `sync_log` returns `Ok`, and `truncate_segment` is
/// durable on return.
pub trait AuditStorage: Send {
    /// Segment ids that exist, in ascending order.
    fn list_segments(&mut self) -> io::Result<Vec<u64>>;
    /// Read one whole segment (recovery and verification).
    fn read_segment(&mut self, segment: u64) -> io::Result<Vec<u8>>;
    /// Create `segment` if absent and make it the append target.
    fn open_segment(&mut self, segment: u64) -> io::Result<()>;
    /// Append raw bytes to the active segment (one batch per call).
    fn append_log(&mut self, buf: &[u8]) -> io::Result<()>;
    /// Durably cut `segment` back to `len` bytes (tear off a torn tail).
    fn truncate_segment(&mut self, segment: u64, len: u64) -> io::Result<()>;
    /// Make previous appends durable (fsync).
    fn sync_log(&mut self) -> io::Result<()>;
    /// Read the persisted chain head, if one exists.
    fn read_head(&mut self) -> io::Result<Option<Vec<u8>>>;
    /// Durably replace the persisted chain head.
    fn write_head(&mut self, buf: &[u8]) -> io::Result<()>;

    // --- archive surface (defaulted: a storage without archive support
    // --- lists no archives and refuses to write them) ---

    /// Archived segment ids present, ascending.
    fn list_archives(&mut self) -> io::Result<Vec<u64>> {
        Ok(Vec::new())
    }
    /// Read one segment's archive container bytes
    /// (see [`crate::archive::decode_archive`]).
    fn read_archive(&mut self, segment: u64) -> io::Result<Vec<u8>> {
        let _ = segment;
        Err(io::Error::new(io::ErrorKind::NotFound, "no such archive"))
    }
    /// Durably replace one segment's archive container. Must be atomic
    /// (write-temp + fsync + rename): a crash leaves the old container or
    /// the new one, never a torn mix.
    fn write_archive(&mut self, segment: u64, buf: &[u8]) -> io::Result<()> {
        let _ = (segment, buf);
        Err(io::Error::other("storage does not support archives"))
    }
    /// Durably remove a *sealed* segment's live file (the archiver's final
    /// step). Implementations must refuse to remove the active segment.
    fn remove_segment_file(&mut self, segment: u64) -> io::Result<()> {
        let _ = segment;
        Err(io::Error::other("storage does not support archives"))
    }
    /// Read the archive-manifest sidecar, if one exists.
    fn read_manifest(&mut self) -> io::Result<Option<Vec<u8>>> {
        Ok(None)
    }
    /// Durably replace the archive-manifest sidecar (atomic, like
    /// [`write_archive`](AuditStorage::write_archive)).
    fn write_manifest(&mut self, buf: &[u8]) -> io::Result<()> {
        let _ = buf;
        Err(io::Error::other("storage does not support archives"))
    }
    /// A second, independent handle onto the *same* bytes for the archiver
    /// thread, so archiving never serializes against the writer's handle.
    /// `None` (the default) means archiving is unsupported; configuring
    /// [`AuditSinkConfig::archive`] over such a storage refuses at open.
    fn archive_handle(&self) -> Option<Box<dyn AuditStorage>> {
        None
    }
}

// ---------------------------------------------------------------------------
// file-backed storage
// ---------------------------------------------------------------------------

/// Real-file storage: segment 0 is the JSONL log at `path` itself, later
/// segments sit next to it as `<path>.000001.jsonl`, …, the chain head
/// lives in a `<path>.head` sidecar, archives in `<segment path>.facz`,
/// and the archive manifest in `<path>.archive` — sidecars are replaced
/// via write-temp-then-rename-then-directory-fsync.
#[derive(Debug)]
pub struct FileStorage {
    base: PathBuf,
    head_path: PathBuf,
    manifest_path: PathBuf,
    active: Option<(u64, std::fs::File)>,
}

impl FileStorage {
    /// Open storage rooted at `path` (creating parent directories if
    /// absent); the head sidecar lives at `<path>.head`. No segment is
    /// created until [`open_segment`](AuditStorage::open_segment).
    pub fn open(path: &Path) -> io::Result<Self> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let mut head_path = path.as_os_str().to_owned();
        head_path.push(".head");
        let mut manifest_path = path.as_os_str().to_owned();
        manifest_path.push(".archive");
        Ok(FileStorage {
            base: path.to_path_buf(),
            head_path: PathBuf::from(head_path),
            manifest_path: PathBuf::from(manifest_path),
            active: None,
        })
    }

    /// `{:06}` pads to *at least* six digits, so ids past 999999 simply
    /// widen (`.1000000.jsonl`); listing parses digits numerically rather
    /// than relying on the pad width.
    fn seg_path(&self, segment: u64) -> PathBuf {
        if segment == 0 {
            self.base.clone()
        } else {
            let mut name = self.base.as_os_str().to_owned();
            name.push(format!(".{segment:06}.jsonl"));
            PathBuf::from(name)
        }
    }

    fn archive_path(&self, segment: u64) -> PathBuf {
        let mut name = self.seg_path(segment).into_os_string();
        name.push(".facz");
        PathBuf::from(name)
    }

    /// Atomically replace `path`: write `<path>.tmp`, fsync it, rename
    /// over the target, fsync the directory.
    fn write_atomic(&self, path: &Path, buf: &[u8]) -> io::Result<()> {
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(".tmp");
        let tmp = PathBuf::from(tmp);
        {
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(buf)?;
            f.sync_data()?;
        }
        std::fs::rename(&tmp, path)?;
        // Without this directory fsync the rename itself is not durable: a
        // power cut could revert the file to its previous content even
        // though `rename` returned.
        self.sync_dir()
    }

    /// Parse `name` as one of this log's files with the given extra
    /// suffix: `<base><suffix>` is segment 0,
    /// `<base>.<digits>.jsonl<suffix>` is that numeric segment (any digit
    /// width — ids past the six-digit pad must still be accepted).
    fn parse_segment_name(base_name: &str, name: &str, suffix: &str) -> Option<u64> {
        let stem = name.strip_suffix(suffix)?;
        if stem == base_name {
            return Some(0);
        }
        let mid = stem
            .strip_prefix(base_name)
            .and_then(|r| r.strip_prefix('.'))
            .and_then(|r| r.strip_suffix(".jsonl"))?;
        if mid.is_empty() || !mid.bytes().all(|b| b.is_ascii_digit()) {
            return None;
        }
        mid.parse::<u64>().ok().filter(|&n| n > 0)
    }

    fn list_by_suffix(&mut self, suffix: &str) -> io::Result<Vec<u64>> {
        let base_name = self
            .base
            .file_name()
            .and_then(|n| n.to_str())
            .map(str::to_owned)
            .ok_or_else(|| io::Error::other("audit log path has no file name"))?;
        let mut segs = Vec::new();
        for entry in std::fs::read_dir(self.dir())? {
            let Ok(name) = entry?.file_name().into_string() else {
                continue;
            };
            if let Some(n) = Self::parse_segment_name(&base_name, &name, suffix) {
                segs.push(n);
            }
        }
        segs.sort_unstable();
        segs.dedup();
        Ok(segs)
    }

    fn dir(&self) -> PathBuf {
        match self.base.parent() {
            Some(p) if !p.as_os_str().is_empty() => p.to_path_buf(),
            _ => PathBuf::from("."),
        }
    }

    /// fsync the directory holding the log: file creations and renames
    /// are directory mutations and survive power loss only once the
    /// directory inode itself is synced.
    fn sync_dir(&self) -> io::Result<()> {
        std::fs::File::open(self.dir())?.sync_all()
    }
}

impl AuditStorage for FileStorage {
    fn list_segments(&mut self) -> io::Result<Vec<u64>> {
        self.list_by_suffix("")
    }

    fn read_segment(&mut self, segment: u64) -> io::Result<Vec<u8>> {
        std::fs::read(self.seg_path(segment))
    }

    fn open_segment(&mut self, segment: u64) -> io::Result<()> {
        let file = std::fs::OpenOptions::new()
            .read(true)
            .create(true)
            .append(true)
            .open(self.seg_path(segment))?;
        self.sync_dir()?;
        self.active = Some((segment, file));
        Ok(())
    }

    fn append_log(&mut self, buf: &[u8]) -> io::Result<()> {
        // O_APPEND: writes land at the end regardless of other handles
        match &mut self.active {
            Some((_, file)) => file.write_all(buf),
            None => Err(io::Error::other("no active segment")),
        }
    }

    fn truncate_segment(&mut self, segment: u64, len: u64) -> io::Result<()> {
        if let Some((active, file)) = &self.active {
            if *active == segment {
                file.set_len(len)?;
                return file.sync_data();
            }
        }
        let file = std::fs::OpenOptions::new()
            .write(true)
            .open(self.seg_path(segment))?;
        file.set_len(len)?;
        file.sync_data()
    }

    fn sync_log(&mut self) -> io::Result<()> {
        match &self.active {
            Some((_, file)) => file.sync_data(),
            None => Err(io::Error::other("no active segment")),
        }
    }

    fn read_head(&mut self) -> io::Result<Option<Vec<u8>>> {
        match std::fs::read(&self.head_path) {
            Ok(b) => Ok(Some(b)),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(e),
        }
    }

    fn write_head(&mut self, buf: &[u8]) -> io::Result<()> {
        let head_path = self.head_path.clone();
        self.write_atomic(&head_path, buf)
    }

    fn list_archives(&mut self) -> io::Result<Vec<u64>> {
        self.list_by_suffix(".facz")
    }

    fn read_archive(&mut self, segment: u64) -> io::Result<Vec<u8>> {
        std::fs::read(self.archive_path(segment))
    }

    fn write_archive(&mut self, segment: u64, buf: &[u8]) -> io::Result<()> {
        let path = self.archive_path(segment);
        self.write_atomic(&path, buf)
    }

    fn remove_segment_file(&mut self, segment: u64) -> io::Result<()> {
        if let Some((active, _)) = &self.active {
            if *active == segment {
                return Err(io::Error::other("refusing to remove the active segment"));
            }
        }
        std::fs::remove_file(self.seg_path(segment))?;
        self.sync_dir()
    }

    fn read_manifest(&mut self) -> io::Result<Option<Vec<u8>>> {
        match std::fs::read(&self.manifest_path) {
            Ok(b) => Ok(Some(b)),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(e),
        }
    }

    fn write_manifest(&mut self, buf: &[u8]) -> io::Result<()> {
        let path = self.manifest_path.clone();
        self.write_atomic(&path, buf)
    }

    fn archive_handle(&self) -> Option<Box<dyn AuditStorage>> {
        // a fresh handle on the same paths: its own fds, no shared state
        FileStorage::open(&self.base)
            .ok()
            .map(|s| Box::new(s) as Box<dyn AuditStorage>)
    }
}

// ---------------------------------------------------------------------------
// in-memory storage with fault injection
// ---------------------------------------------------------------------------

#[derive(Debug, Default)]
struct MemInner {
    segments: BTreeMap<u64, Vec<u8>>,
    active: Option<u64>,
    head: Option<Vec<u8>>,
    appends: u64,
    /// Appends (0-based) at or beyond this index fail with nothing
    /// persisted — a storage layer that starts erroring.
    fail_appends_from: Option<u64>,
    /// The next append persists only this many bytes, then errors — a
    /// short write surfaced to the caller.
    short_write_next: Option<usize>,
    /// Total log size (summed across segments) is capped here: the append
    /// that would cross it persists only up to the cap and the storage
    /// dies — a process killed mid-batch, torn line and all.
    kill_at_byte: Option<u64>,
    /// Opening segment ids at or beyond this value creates the (empty)
    /// segment and then kills the storage — a crash exactly at the
    /// rotation boundary, after the dir entry, before the handoff.
    kill_on_open_segment: Option<u64>,
    /// Head-sidecar writes report success but do not persist — the
    /// un-fsynced-directory rename that a power cut reverts.
    revert_head_writes: bool,
    /// Archive containers, keyed by segment id.
    archives: BTreeMap<u64, Vec<u8>>,
    /// The archive-manifest sidecar.
    manifest: Option<Vec<u8>>,
    /// Writing an archive for segment ids at or beyond this value kills
    /// the storage with *nothing* persisted — a crash before the atomic
    /// rename landed the container.
    kill_on_archive_write: Option<u64>,
    /// Removing the source file of segment ids at or beyond this value
    /// kills the storage with the file *retained* — a crash after the
    /// manifest committed but before the delete.
    kill_on_source_delete: Option<u64>,
    dead: bool,
}

impl MemInner {
    fn total_len(&self) -> usize {
        self.segments.values().map(Vec::len).sum()
    }
}

fn dead_err() -> io::Error {
    io::Error::new(io::ErrorKind::BrokenPipe, "storage dead")
}

/// In-memory [`AuditStorage`] shared through an `Arc`: cloning yields a
/// second handle onto the *same* bytes, which is how tests "restart" a
/// sink over whatever a fault left behind. Fault injection is explicit:
/// [`fail_appends_from`](MemStorage::fail_appends_from),
/// [`short_write_next`](MemStorage::short_write_next),
/// [`kill_at_byte`](MemStorage::kill_at_byte),
/// [`kill_on_open_segment`](MemStorage::kill_on_open_segment), and
/// [`revert_head_writes`](MemStorage::revert_head_writes).
#[derive(Debug, Clone, Default)]
pub struct MemStorage {
    inner: Arc<Mutex<MemInner>>,
}

impl MemStorage {
    /// Fresh, empty, fault-free storage.
    pub fn new() -> Self {
        MemStorage::default()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, MemInner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Make append number `n` (0-based) and all later ones fail, persisting
    /// nothing.
    pub fn fail_appends_from(&self, n: u64) {
        self.lock().fail_appends_from = Some(n);
    }

    /// Make the next append persist only the first `n` bytes, then error.
    pub fn short_write_next(&self, n: usize) {
        self.lock().short_write_next = Some(n);
    }

    /// Kill the storage once the log (summed across segments) reaches
    /// `cap` total bytes: the crossing append persists a prefix up to the
    /// cap (a torn line) and every operation after that fails, like a dead
    /// process's fds.
    pub fn kill_at_byte(&self, cap: u64) {
        self.lock().kill_at_byte = Some(cap);
    }

    /// Kill the storage when segment `n` (or any later id) is opened: the
    /// empty segment is created — the directory entry a real crash leaves
    /// behind — but nothing is ever written to it.
    pub fn kill_on_open_segment(&self, n: u64) {
        self.lock().kill_on_open_segment = Some(n);
    }

    /// Make every subsequent head-sidecar write report success without
    /// persisting — the rename a power cut reverts when the directory was
    /// never fsynced (the pre-fix [`FileStorage`] behavior).
    pub fn revert_head_writes(&self) {
        self.lock().revert_head_writes = true;
    }

    /// Kill the storage when an archive for segment `n` (or any later id)
    /// is written: the container never lands — a crash *before* the
    /// atomic tmp+fsync+rename completed, so the original must survive.
    pub fn kill_on_archive_write(&self, n: u64) {
        self.lock().kill_on_archive_write = Some(n);
    }

    /// Kill the storage when segment `n`'s (or any later id's) source
    /// file is removed: the file is retained — a crash *after* the
    /// manifest commit but before the delete, so both copies survive.
    pub fn kill_on_source_delete(&self, n: u64) {
        self.lock().kill_on_source_delete = Some(n);
    }

    /// Clear all fault plans and revive a killed storage — the "restart".
    pub fn restart(&self) -> MemStorage {
        let mut g = self.lock();
        g.fail_appends_from = None;
        g.short_write_next = None;
        g.kill_at_byte = None;
        g.kill_on_open_segment = None;
        g.revert_head_writes = false;
        g.kill_on_archive_write = None;
        g.kill_on_source_delete = None;
        g.dead = false;
        MemStorage {
            inner: Arc::clone(&self.inner),
        }
    }

    /// All segments' bytes concatenated in segment order (inspection).
    pub fn log_bytes(&self) -> Vec<u8> {
        let g = self.lock();
        let mut out = Vec::with_capacity(g.total_len());
        for bytes in g.segments.values() {
            out.extend_from_slice(bytes);
        }
        out
    }

    /// One segment's bytes, if it exists (inspection).
    pub fn segment_bytes(&self, segment: u64) -> Option<Vec<u8>> {
        self.lock().segments.get(&segment).cloned()
    }

    /// Segment ids currently present (inspection).
    pub fn segment_ids(&self) -> Vec<u64> {
        self.lock().segments.keys().copied().collect()
    }

    /// Delete a segment outright — the "operator removed a middle file"
    /// fault. Returns whether it existed.
    pub fn remove_segment(&self, segment: u64) -> bool {
        self.lock().segments.remove(&segment).is_some()
    }

    /// Current persisted head bytes (inspection).
    pub fn head_bytes(&self) -> Option<Vec<u8>> {
        self.lock().head.clone()
    }

    /// Archived segment ids currently present (inspection).
    pub fn archive_ids(&self) -> Vec<u64> {
        self.lock().archives.keys().copied().collect()
    }

    /// One archive's container bytes, if it exists (inspection).
    pub fn archive_bytes(&self, segment: u64) -> Option<Vec<u8>> {
        self.lock().archives.get(&segment).cloned()
    }

    /// Delete an archive outright — the "operator removed an archive"
    /// fault. Returns whether it existed.
    pub fn remove_archive(&self, segment: u64) -> bool {
        self.lock().archives.remove(&segment).is_some()
    }

    /// Overwrite an archive's bytes in place — the bit-rot fault the
    /// archiver's read-back verification must catch. Returns whether the
    /// archive existed.
    pub fn corrupt_archive(&self, segment: u64, bytes: Vec<u8>) -> bool {
        let mut g = self.lock();
        match g.archives.get_mut(&segment) {
            Some(slot) => {
                *slot = bytes;
                true
            }
            None => false,
        }
    }
}

impl AuditStorage for MemStorage {
    fn list_segments(&mut self) -> io::Result<Vec<u64>> {
        let g = self.lock();
        if g.dead {
            return Err(dead_err());
        }
        Ok(g.segments.keys().copied().collect())
    }

    fn read_segment(&mut self, segment: u64) -> io::Result<Vec<u8>> {
        let g = self.lock();
        if g.dead {
            return Err(dead_err());
        }
        g.segments
            .get(&segment)
            .cloned()
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "no such segment"))
    }

    fn open_segment(&mut self, segment: u64) -> io::Result<()> {
        let mut g = self.lock();
        if g.dead {
            return Err(dead_err());
        }
        if matches!(g.kill_on_open_segment, Some(n) if segment >= n) {
            // the boundary crash: the segment's directory entry exists,
            // but the process died before writing its handoff record
            g.segments.entry(segment).or_default();
            g.dead = true;
            return Err(io::Error::new(
                io::ErrorKind::BrokenPipe,
                "killed at segment boundary",
            ));
        }
        g.segments.entry(segment).or_default();
        g.active = Some(segment);
        Ok(())
    }

    fn append_log(&mut self, buf: &[u8]) -> io::Result<()> {
        let mut g = self.lock();
        if g.dead {
            return Err(dead_err());
        }
        let this_append = g.appends;
        g.appends += 1;
        if matches!(g.fail_appends_from, Some(n) if this_append >= n) {
            return Err(io::Error::other("injected append failure"));
        }
        let Some(active) = g.active else {
            return Err(io::Error::other("no active segment"));
        };
        if let Some(n) = g.short_write_next.take() {
            let n = n.min(buf.len());
            let prefix = buf[..n].to_vec();
            g.segments.entry(active).or_default().extend(prefix);
            return Err(io::Error::new(
                io::ErrorKind::WriteZero,
                "injected short write",
            ));
        }
        if let Some(cap) = g.kill_at_byte {
            let room = (cap as usize).saturating_sub(g.total_len());
            if buf.len() > room {
                let prefix = buf[..room].to_vec();
                g.segments.entry(active).or_default().extend(prefix);
                g.dead = true;
                return Err(io::Error::new(
                    io::ErrorKind::BrokenPipe,
                    "killed mid-batch",
                ));
            }
        }
        g.segments.entry(active).or_default().extend_from_slice(buf);
        Ok(())
    }

    fn truncate_segment(&mut self, segment: u64, len: u64) -> io::Result<()> {
        let mut g = self.lock();
        if g.dead {
            return Err(dead_err());
        }
        match g.segments.get_mut(&segment) {
            Some(bytes) => {
                bytes.truncate(len as usize);
                Ok(())
            }
            None => Err(io::Error::new(io::ErrorKind::NotFound, "no such segment")),
        }
    }

    fn sync_log(&mut self) -> io::Result<()> {
        let g = self.lock();
        if g.dead {
            return Err(dead_err());
        }
        Ok(())
    }

    fn read_head(&mut self) -> io::Result<Option<Vec<u8>>> {
        let g = self.lock();
        if g.dead {
            return Err(dead_err());
        }
        Ok(g.head.clone())
    }

    fn write_head(&mut self, buf: &[u8]) -> io::Result<()> {
        let mut g = self.lock();
        if g.dead {
            return Err(dead_err());
        }
        if g.revert_head_writes {
            // reports success; the bytes never land (reverted rename)
            return Ok(());
        }
        g.head = Some(buf.to_vec());
        Ok(())
    }

    fn list_archives(&mut self) -> io::Result<Vec<u64>> {
        let g = self.lock();
        if g.dead {
            return Err(dead_err());
        }
        Ok(g.archives.keys().copied().collect())
    }

    fn read_archive(&mut self, segment: u64) -> io::Result<Vec<u8>> {
        let g = self.lock();
        if g.dead {
            return Err(dead_err());
        }
        g.archives
            .get(&segment)
            .cloned()
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "no such archive"))
    }

    fn write_archive(&mut self, segment: u64, buf: &[u8]) -> io::Result<()> {
        let mut g = self.lock();
        if g.dead {
            return Err(dead_err());
        }
        if matches!(g.kill_on_archive_write, Some(n) if segment >= n) {
            // the crash lands before the atomic rename: no container
            // persists, and every later operation fails like dead fds
            g.dead = true;
            return Err(io::Error::new(
                io::ErrorKind::BrokenPipe,
                "killed before archive rename",
            ));
        }
        g.archives.insert(segment, buf.to_vec());
        Ok(())
    }

    fn remove_segment_file(&mut self, segment: u64) -> io::Result<()> {
        let mut g = self.lock();
        if g.dead {
            return Err(dead_err());
        }
        if matches!(g.kill_on_source_delete, Some(n) if segment >= n) {
            // the crash lands after the manifest commit, before the
            // delete: the original survives alongside its archive
            g.dead = true;
            return Err(io::Error::new(
                io::ErrorKind::BrokenPipe,
                "killed before source delete",
            ));
        }
        if g.active == Some(segment) {
            return Err(io::Error::other("refusing to remove the active segment"));
        }
        match g.segments.remove(&segment) {
            Some(_) => Ok(()),
            None => Err(io::Error::new(io::ErrorKind::NotFound, "no such segment")),
        }
    }

    fn read_manifest(&mut self) -> io::Result<Option<Vec<u8>>> {
        let g = self.lock();
        if g.dead {
            return Err(dead_err());
        }
        Ok(g.manifest.clone())
    }

    fn write_manifest(&mut self, buf: &[u8]) -> io::Result<()> {
        let mut g = self.lock();
        if g.dead {
            return Err(dead_err());
        }
        g.manifest = Some(buf.to_vec());
        Ok(())
    }

    fn archive_handle(&self) -> Option<Box<dyn AuditStorage>> {
        // the same Arc: a kill knob kills both handles at once, exactly
        // the way one dead process takes the writer and archiver together
        Some(Box::new(self.clone()))
    }
}

// ---------------------------------------------------------------------------
// events, config, reports
// ---------------------------------------------------------------------------

/// One auditable occurrence, as sent from shard workers to the writer.
#[derive(Debug, Clone)]
pub enum AuditEvent {
    /// A decision served in degraded audit-and-flag mode.
    Flagged {
        /// Shard that served it.
        shard: usize,
        /// Routing key of the request.
        route_key: u64,
        /// Model probability of the favorable class.
        probability: f64,
        /// The decision at the configured threshold.
        favorable: bool,
        /// Protected-group membership observed by the fairness guard.
        group_b: bool,
    },
    /// A decision refused under the hard-reject policy.
    Rejected {
        /// Shard that refused it.
        shard: usize,
        /// Routing key of the request.
        route_key: u64,
    },
    /// A guard alert forwarded to the global channel.
    Alert {
        /// Shard that raised it.
        shard: usize,
        /// The shard's decision count when it was raised.
        at_decision: u64,
        /// Human-readable rendering of the alert.
        summary: String,
    },
    /// A sink lifecycle marker (start/stop), written by the sink itself.
    Lifecycle {
        /// The marker action (e.g. `sink_start`).
        what: String,
        /// Free-form detail.
        detail: String,
    },
}

impl AuditEvent {
    /// Map the event onto the audit-entry triple (actor, action, details).
    fn into_parts(self) -> (String, String, String) {
        match self {
            AuditEvent::Flagged {
                shard,
                route_key,
                probability,
                favorable,
                group_b,
            } => (
                format!("shard-{shard}"),
                "flagged_decision".into(),
                format!(
                    "key={route_key} p={probability:.6} favorable={favorable} group_b={group_b}"
                ),
            ),
            AuditEvent::Rejected { shard, route_key } => (
                format!("shard-{shard}"),
                "rejected_decision".into(),
                format!("key={route_key} policy=hard_reject"),
            ),
            AuditEvent::Alert {
                shard,
                at_decision,
                summary,
            } => (
                format!("shard-{shard}"),
                "guard_alert".into(),
                format!("at={at_decision} {summary}"),
            ),
            AuditEvent::Lifecycle { what, detail } => ("fact-serve".into(), what, detail),
        }
    }
}

/// Sink configuration.
#[derive(Debug, Clone)]
pub struct AuditSinkConfig {
    /// JSONL log path (the chain head sidecar sits next to it). Ignored
    /// when storage is injected explicitly.
    pub path: PathBuf,
    /// Largest batch the writer accumulates before an append+fsync.
    pub batch_max: usize,
    /// How long a partial batch may wait before it is flushed anyway.
    pub flush_interval: Duration,
    /// Bounded capacity of the worker→writer channel. Workers block when
    /// it fills (audit events are evidence, not telemetry — they are never
    /// silently shed while the sink is healthy).
    pub queue_cap: usize,
    /// Roll to a new segment *before* appending a batch that would push
    /// the active one past this many bytes. A segment exceeds the cap
    /// only when one single batch is alone larger than it (the batch is
    /// never split across segments).
    pub max_segment_bytes: u64,
    /// Background archiving of sealed segments; `None` (the default)
    /// disables it and segments accumulate until pruned out of band. See
    /// [`crate::archive`] for the verify → compress → commit → delete
    /// protocol and its crash-safety guarantees.
    pub archive: Option<ArchiveConfig>,
}

impl Default for AuditSinkConfig {
    fn default() -> Self {
        AuditSinkConfig {
            path: PathBuf::from("audit.jsonl"),
            batch_max: 64,
            flush_interval: Duration::from_millis(5),
            queue_cap: 8_192,
            max_segment_bytes: 64 * 1024 * 1024,
            archive: None,
        }
    }
}

/// What the startup recovery pass found and did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Intact chained entries replayed (the newest segment's — recovery
    /// never re-reads older segments unless it has to fall back).
    pub recovered: u64,
    /// Byte offset appending resumes at within the active segment.
    pub cut_offset: u64,
    /// Bytes removed across segments (torn or unverifiable tails).
    pub truncated_bytes: u64,
    /// Complete lines discarded past the cut point (a torn final fragment
    /// without a newline is not counted here).
    pub cut_lines: u64,
    /// Sequence number of the first entry that failed chain verification,
    /// when the cut was a chain break rather than a torn/unparseable tail.
    pub cut_seq: Option<u64>,
    /// Entries provably lost: what the persisted chain head promised
    /// beyond the recovered log, plus entries missing-middle segments
    /// held (quantified from the neighbors' handoff claims). Bounded by
    /// one batch when the only fault was a kill (the unsynced tail).
    pub lost: u64,
    /// The chain head appending resumes from.
    pub resumed: ChainHead,
    /// Segments present after recovery.
    pub segments: u64,
    /// Segment id appending resumes into.
    pub active_segment: u64,
    /// Segments the pass actually read end-to-end: 1 normally, 2 when a
    /// torn/empty newest segment forced a one-segment fallback, 0 for a
    /// fresh log. Gap accounting may read more, but only when segments
    /// are already missing.
    pub replayed_segments: u64,
    /// Segment ids missing between present neighbors (middle gaps; a
    /// leading gap is legitimate archival, not loss).
    pub missing_segments: u64,
    /// Entries those missing segments provably held, per the surviving
    /// neighbors' handoff claims.
    pub missing_entries: u64,
    /// Whether the writer's first flush must open the active segment with
    /// a fresh handoff record (set after a fallback wiped a torn roll).
    pub needs_handoff: bool,
}

/// Final accounting returned by [`AuditSink::finish`].
#[derive(Debug, Clone)]
pub struct SinkReport {
    /// Event entries appended *and* fsynced during this run (including
    /// lifecycle markers; handoff records are counted in `rolls` instead,
    /// so total chain entries written = `audited + rolls` + any handoff
    /// re-emitted after a fallback recovery).
    pub audited: u64,
    /// Events dropped because the storage had failed (poisoned sink).
    pub dropped: u64,
    /// Storage errors observed (append/sync/head-write/roll).
    pub io_errors: u64,
    /// Segment rolls performed this run.
    pub rolls: u64,
    /// Segments present at the end of the run.
    pub segments: u64,
    /// What recovery found at startup.
    pub recovery: RecoveryReport,
    /// What the background archiver did this run (all-zero when archiving
    /// is off).
    pub archive: ArchiveSnapshot,
}

#[derive(Debug, Default)]
struct SinkShared {
    audited: AtomicU64,
    dropped: AtomicU64,
    io_errors: AtomicU64,
    rolls: AtomicU64,
    active_segment: AtomicU64,
}

/// A cheap, cloneable sender side of the sink: shard workers hold one and
/// [`record`](AuditSinkHandle::record) events into it.
#[derive(Clone)]
pub struct AuditSinkHandle {
    tx: SyncSender<AuditEvent>,
    shared: Arc<SinkShared>,
}

impl AuditSinkHandle {
    /// Enqueue one event. Blocks while the writer's queue is full; if the
    /// writer is gone (sink finished early), the event is counted dropped.
    pub fn record(&self, event: AuditEvent) {
        if self.tx.send(event).is_err() {
            self.shared.dropped.fetch_add(1, Ordering::Relaxed);
        }
    }
}

// ---------------------------------------------------------------------------
// recovery
// ---------------------------------------------------------------------------

/// Line-by-line scan of one segment's bytes: establish the start head
/// from the first entry (genesis, or a handoff record's claim), then walk
/// the chain until it tears or breaks.
struct SegmentScan {
    recovered: u64,
    good_len: usize,
    cut_seq: Option<u64>,
    end: ChainHead,
}

fn scan_segment(bytes: &[u8]) -> SegmentScan {
    let mut head = ChainHead::genesis();
    let mut started = false;
    let mut recovered = 0u64;
    let mut good_len = 0usize;
    let mut cut_seq = None;
    let mut pos = 0usize;
    while pos < bytes.len() {
        let Some(nl) = bytes[pos..].iter().position(|&b| b == b'\n') else {
            break; // unterminated final fragment: torn mid-line
        };
        let parsed = std::str::from_utf8(&bytes[pos..pos + nl])
            .ok()
            .and_then(|s| serde_json::from_str::<AuditEntry>(s).ok());
        let Some(entry) = parsed else {
            break; // torn or garbled line
        };
        if !started {
            started = true;
            if is_handoff(&entry) {
                match parse_handoff_details(&entry.details) {
                    // the claim is only *trusted* if the entry itself
                    // chains onto it, which the follows() check does below
                    Some((_, claim)) => head = claim,
                    None => break,
                }
            }
            // a non-handoff first entry must start at genesis; anything
            // else fails the follows() check and cuts at offset 0
        }
        if head.follows(&entry) {
            head = ChainHead::advanced_past(&entry);
            recovered += 1;
            pos += nl + 1;
            good_len = pos;
        } else {
            // parseable but breaks the chain: corruption or tampering
            cut_seq = Some(entry.seq);
            break;
        }
    }
    SegmentScan {
        recovered,
        good_len,
        cut_seq,
        // nothing verified → the segment pins no chain position; resume
        // from genesis and let the head sidecar report the loss
        end: if recovered == 0 {
            ChainHead::genesis()
        } else {
            head
        },
    }
}

/// The (self-verified) claim of a segment's opening handoff record, if it
/// has one.
fn first_handoff_claim(bytes: &[u8]) -> Option<ChainHead> {
    let nl = bytes.iter().position(|&b| b == b'\n')?;
    let entry: AuditEntry = serde_json::from_str(std::str::from_utf8(&bytes[..nl]).ok()?).ok()?;
    if !is_handoff(&entry) {
        return None;
    }
    let (_, claim) = parse_handoff_details(&entry.details)?;
    claim.follows(&entry).then_some(claim)
}

fn count_newlines(bytes: &[u8]) -> u64 {
    bytes.iter().filter(|&&b| b == b'\n').count() as u64
}

/// Replay the **newest live segment** in `storage`, verify it standalone
/// from its own handoff record (or genesis), truncate whatever tail does
/// not verify, and return the head appending should resume from.
///
/// Archived segments count as present: a segment the archiver compacted
/// and deleted is *not* loss — its verified archive is read transparently
/// wherever recovery would have read the live file. Older segments are
/// not re-read — that is what makes restart cost O(segment) instead of
/// O(history) — except when recovery must fall back one segment (the
/// newest is empty or its opening handoff tore: the crash hit the roll
/// itself), or when segments are missing in the middle and their
/// neighbors are consulted to *quantify* the provable loss.
pub fn recover(storage: &mut dyn AuditStorage) -> io::Result<RecoveryReport> {
    let live = storage.list_segments()?;
    let present = union_segments(storage)?;
    if present.is_empty() {
        storage.open_segment(0)?;
        return Ok(RecoveryReport {
            recovered: 0,
            cut_offset: 0,
            truncated_bytes: 0,
            cut_lines: 0,
            cut_seq: None,
            lost: 0,
            resumed: ChainHead::genesis(),
            segments: 1,
            active_segment: 0,
            replayed_segments: 0,
            missing_segments: 0,
            missing_entries: 0,
            needs_handoff: false,
        });
    }

    // Middle gaps: a leading gap is legitimate archival+pruning of old
    // segments, but a hole between present segments — no live file *and*
    // no archive — is loss. It is *provable* loss: the segment after the
    // gap opens with a handoff claiming the chain position at the end of
    // the segment before it, and the last present segment before the gap
    // replays to its own end — the difference is exactly the entries the
    // hole swallowed.
    let mut missing_segments = 0u64;
    let mut missing_entries = 0u64;
    for w in present.windows(2) {
        let (a, b) = (w[0], w[1]);
        if b > a + 1 {
            missing_segments += b - a - 1;
            let before = scan_segment(&read_segment_or_archive(storage, a)?);
            if let Some(claim) = first_handoff_claim(&read_segment_or_archive(storage, b)?) {
                missing_entries += claim.next_seq.saturating_sub(before.end.next_seq);
            }
        }
    }

    // The head sidecar is written after the batch fsync, so it can only
    // lag the log, never legitimately lead it — a lead is tail loss.
    let persisted: Option<ChainHead> = storage
        .read_head()?
        .and_then(|b| String::from_utf8(b).ok())
        .and_then(|s| serde_json::from_str(&s).ok());

    let Some(&active) = live.last() else {
        // Every segment is archived and its live file removed (the sink
        // was compacted to nothing while closed). Resume the chain in a
        // fresh segment past the newest archive, opened with a handoff —
        // exactly as if the writer had just rolled.
        let newest = *present.last().expect("non-empty");
        let scan = scan_segment(&read_segment_or_archive(storage, newest)?);
        storage.open_segment(newest + 1)?;
        let tail_lost = persisted.map_or(0, |p| p.next_seq.saturating_sub(scan.end.next_seq));
        return Ok(RecoveryReport {
            recovered: scan.recovered,
            cut_offset: 0,
            truncated_bytes: 0,
            cut_lines: 0,
            cut_seq: scan.cut_seq,
            lost: tail_lost + missing_entries,
            resumed: scan.end,
            segments: present.len() as u64 + 1,
            active_segment: newest + 1,
            replayed_segments: 1,
            missing_segments,
            missing_entries,
            needs_handoff: true,
        });
    };

    let lowest = present[0];
    let bytes = storage.read_segment(active)?;
    let scan = scan_segment(&bytes);
    let mut truncated_bytes = 0u64;
    let mut cut_lines = 0u64;
    let mut replayed_segments = 1u64;
    let mut needs_handoff = false;
    let (recovered, cut_offset, cut_seq, resumed);

    if scan.good_len == 0 && active > lowest {
        // The newest segment is empty or its opening handoff tore — the
        // crash hit the roll itself. Wipe it and fall back one present
        // segment (live or archived); the writer re-opens the wiped
        // segment with a fresh handoff on its first flush.
        truncated_bytes += bytes.len() as u64;
        cut_lines += count_newlines(&bytes);
        if !bytes.is_empty() {
            storage.truncate_segment(active, 0)?;
        }
        let at = present
            .iter()
            .position(|&p| p == active)
            .expect("active is present");
        let prev = present[at - 1];
        let pbytes = read_segment_or_archive(storage, prev)?;
        let pscan = scan_segment(&pbytes);
        replayed_segments = 2;
        needs_handoff = true;
        if pscan.good_len < pbytes.len() {
            truncated_bytes += (pbytes.len() - pscan.good_len) as u64;
            cut_lines += count_newlines(&pbytes[pscan.good_len..]);
            // an archived predecessor is immutable (and was verified when
            // archived); only a live file can carry — and shed — a tail
            if live.binary_search(&prev).is_ok() {
                storage.truncate_segment(prev, pscan.good_len as u64)?;
            }
        }
        recovered = pscan.recovered;
        cut_offset = 0u64;
        cut_seq = pscan.cut_seq;
        resumed = pscan.end;
    } else {
        if scan.good_len < bytes.len() {
            truncated_bytes += (bytes.len() - scan.good_len) as u64;
            cut_lines += count_newlines(&bytes[scan.good_len..]);
            storage.truncate_segment(active, scan.good_len as u64)?;
        }
        recovered = scan.recovered;
        cut_offset = scan.good_len as u64;
        cut_seq = scan.cut_seq;
        resumed = scan.end;
    }
    storage.open_segment(active)?;

    let tail_lost = persisted.map_or(0, |p| p.next_seq.saturating_sub(resumed.next_seq));
    Ok(RecoveryReport {
        recovered,
        cut_offset,
        truncated_bytes,
        cut_lines,
        cut_seq,
        lost: tail_lost + missing_entries,
        resumed,
        segments: present.len() as u64,
        active_segment: active,
        replayed_segments,
        missing_segments,
        missing_entries,
        needs_handoff,
    })
}

// ---------------------------------------------------------------------------
// lazy segment verification
// ---------------------------------------------------------------------------

/// Read one segment's JSONL content, falling back to its archive when the
/// live file is gone: the container is decoded
/// ([`crate::archive::decode_archive`] verifies magic, length, and
/// SHA-256) and must hold the segment id asked for. This is what keeps
/// history verifiable across the live/archived boundary — callers never
/// care which side a segment is on.
pub fn read_segment_or_archive(
    storage: &mut dyn AuditStorage,
    segment: u64,
) -> io::Result<Vec<u8>> {
    match storage.read_segment(segment) {
        Ok(b) => Ok(b),
        Err(e) if e.kind() == io::ErrorKind::NotFound => {
            let container = storage.read_archive(segment)?;
            let (held, bytes) = decode_archive(&container)?;
            if held != segment {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "archive container holds a different segment id",
                ));
            }
            Ok(bytes)
        }
        Err(e) => Err(e),
    }
}

/// All segment ids with *any* surviving copy — live file, archive, or
/// both — ascending.
fn union_segments(storage: &mut dyn AuditStorage) -> io::Result<Vec<u64>> {
    let mut ids = storage.list_segments()?;
    ids.extend(storage.list_archives()?);
    ids.sort_unstable();
    ids.dedup();
    Ok(ids)
}

/// Verify one segment **standalone** against the hash chain: parse its
/// bytes (live or archived — see [`read_segment_or_archive`]) and check
/// it from its own handoff record (or genesis) via
/// [`verify_segment_entries`]. The outer `Result` is storage I/O; the
/// inner one is the verification verdict.
pub fn verify_segment(
    storage: &mut dyn AuditStorage,
    segment: u64,
) -> io::Result<Result<SegmentCheck, SegmentError>> {
    let bytes = read_segment_or_archive(storage, segment)?;
    Ok(check_segment_bytes(&bytes))
}

/// Parse raw segment bytes and verify them standalone against the chain
/// (the in-memory half of [`verify_segment`]; the archiver uses it to
/// vet a segment before compacting it).
pub(crate) fn check_segment_bytes(bytes: &[u8]) -> Result<SegmentCheck, SegmentError> {
    let mut entries = Vec::new();
    let mut pos = 0usize;
    let mut torn = false;
    while pos < bytes.len() {
        let Some(nl) = bytes[pos..].iter().position(|&b| b == b'\n') else {
            torn = true;
            break;
        };
        match std::str::from_utf8(&bytes[pos..pos + nl])
            .ok()
            .and_then(|s| serde_json::from_str::<AuditEntry>(s).ok())
        {
            Some(e) => {
                entries.push(e);
                pos += nl + 1;
            }
            None => {
                torn = true;
                break;
            }
        }
    }
    let check = verify_segment_entries(&entries)?;
    if torn {
        return Err(SegmentError::TornTail(entries.len()));
    }
    Ok(check)
}

/// Outcome of verifying every present segment standalone plus stitching
/// adjacent pairs, from [`verify_all_segments`].
#[derive(Debug, Clone)]
pub struct SegmentAudit {
    /// Per-segment verdicts, ascending by segment id.
    pub segments: Vec<(u64, Result<SegmentCheck, SegmentError>)>,
    /// Whether every present segment verified, every adjacent pair is
    /// gap-free, each handoff's claimed segment id matches its file, and
    /// each segment's start equals its predecessor's end.
    pub continuous: bool,
}

/// Verify **every** present segment standalone and check cross-segment
/// continuity. Archived segments participate exactly like live ones
/// (decompressed on demand), so a store the archiver has partially
/// compacted still audits end to end. This is the full-history audit the
/// lazy design defers out of the restart path; run it offline or on
/// demand.
pub fn verify_all_segments(storage: &mut dyn AuditStorage) -> io::Result<SegmentAudit> {
    let present = union_segments(storage)?;
    let mut segments = Vec::with_capacity(present.len());
    let mut continuous = true;
    let mut prev: Option<(u64, ChainHead)> = None;
    for &id in &present {
        let verdict = verify_segment(storage, id)?;
        match &verdict {
            Ok(check) => {
                if id > present[0] && check.handoff_segment != Some(id) {
                    continuous = false; // renamed/transplanted segment file
                }
                if let Some((pid, pend)) = prev {
                    if pid + 1 != id || check.start != pend {
                        continuous = false;
                    }
                }
                prev = Some((id, check.end));
            }
            Err(_) => {
                continuous = false;
                prev = None;
            }
        }
        segments.push((id, verdict));
    }
    Ok(SegmentAudit {
        segments,
        continuous,
    })
}

// ---------------------------------------------------------------------------
// the sink
// ---------------------------------------------------------------------------

/// The durable audit sink: owns the writer thread and the storage moved
/// into it. Create with [`open`](AuditSink::open) (file-backed) or
/// [`open_with_storage`](AuditSink::open_with_storage) (anything,
/// including fault-injecting test storage); hand
/// [`handle`](AuditSink::handle)s to producers; call
/// [`finish`](AuditSink::finish) to drain, write the stop marker, fsync,
/// and collect the [`SinkReport`].
pub struct AuditSink {
    tx: Option<SyncSender<AuditEvent>>,
    writer: Option<JoinHandle<()>>,
    shared: Arc<SinkShared>,
    recovery: RecoveryReport,
    archiver: Option<Archiver>,
    archive_stats: Arc<ArchiveStats>,
}

impl AuditSink {
    /// Open a file-backed sink at `config.path`, running recovery first.
    pub fn open(config: &AuditSinkConfig) -> io::Result<AuditSink> {
        let storage = FileStorage::open(&config.path)?;
        Self::open_with_storage(config, Box::new(storage))
    }

    /// Open over explicit storage (`config.path` is ignored), running
    /// recovery first.
    pub fn open_with_storage(
        config: &AuditSinkConfig,
        mut storage: Box<dyn AuditStorage>,
    ) -> io::Result<AuditSink> {
        assert!(config.batch_max > 0, "batch_max must be positive");
        assert!(config.queue_cap > 0, "queue_cap must be positive");
        assert!(
            config.max_segment_bytes > 0,
            "max_segment_bytes must be positive"
        );
        // take the archiver's independent handle *before* the writer owns
        // the storage; refuse up front rather than silently not archiving
        let archiver_storage = match &config.archive {
            Some(_) => Some(storage.archive_handle().ok_or_else(|| {
                io::Error::other("archive configured but storage offers no archive handle")
            })?),
            None => None,
        };
        let recovery = recover(storage.as_mut())?;
        let shared = Arc::new(SinkShared::default());
        shared
            .active_segment
            .store(recovery.active_segment, Ordering::Relaxed);
        let (tx, rx) = sync_channel::<AuditEvent>(config.queue_cap);
        let writer = Writer {
            rx,
            storage,
            head: recovery.resumed,
            batch_max: config.batch_max,
            flush_interval: config.flush_interval,
            max_segment_bytes: config.max_segment_bytes,
            active_segment: recovery.active_segment,
            active_bytes: recovery.cut_offset,
            needs_handoff: recovery.needs_handoff,
            shared: Arc::clone(&shared),
            recovery: recovery.clone(),
            poisoned: false,
        };
        let writer = std::thread::Builder::new()
            .name("fact-audit-sink".into())
            .spawn(move || writer.run())
            .map_err(io::Error::other)?;
        let archive_stats = Arc::new(ArchiveStats::default());
        let archiver = match (&config.archive, archiver_storage) {
            (Some(acfg), Some(handle)) => {
                let watcher = Arc::clone(&shared);
                Some(Archiver::spawn(
                    acfg.clone(),
                    handle,
                    move || watcher.active_segment.load(Ordering::Relaxed),
                    Arc::clone(&archive_stats),
                )?)
            }
            _ => None,
        };
        Ok(AuditSink {
            tx: Some(tx),
            writer: Some(writer),
            shared,
            recovery,
            archiver,
            archive_stats,
        })
    }

    /// A sender handle for one producer (clone freely).
    pub fn handle(&self) -> AuditSinkHandle {
        AuditSinkHandle {
            tx: self.tx.clone().expect("sink not finished"),
            shared: Arc::clone(&self.shared),
        }
    }

    /// What the startup recovery pass found.
    pub fn recovery(&self) -> &RecoveryReport {
        &self.recovery
    }

    /// Entries durably synced so far this run.
    pub fn audited(&self) -> u64 {
        self.shared.audited.load(Ordering::Relaxed)
    }

    /// Segment rolls performed so far this run.
    pub fn rolls(&self) -> u64 {
        self.shared.rolls.load(Ordering::Relaxed)
    }

    /// Segment id currently being appended to.
    pub fn active_segment(&self) -> u64 {
        self.shared.active_segment.load(Ordering::Relaxed)
    }

    /// The live archiver counters (all-zero, never advancing, when
    /// archiving is off). The same `Arc` can be handed to a metrics
    /// registry so operators watch archiving progress in-flight.
    pub fn archive_stats(&self) -> Arc<ArchiveStats> {
        Arc::clone(&self.archive_stats)
    }

    /// Drop the sender, let the writer drain, stamp the stop marker, and
    /// join; then stop the archiver (it runs one final pass first).
    /// (Outstanding [`AuditSinkHandle`]s keep the writer alive until they
    /// are dropped too.)
    pub fn finish(mut self) -> SinkReport {
        self.tx.take();
        if let Some(w) = self.writer.take() {
            let _ = w.join();
        }
        if let Some(a) = self.archiver.take() {
            a.stop();
        }
        let rolls = self.shared.rolls.load(Ordering::Relaxed);
        SinkReport {
            audited: self.shared.audited.load(Ordering::Relaxed),
            dropped: self.shared.dropped.load(Ordering::Relaxed),
            io_errors: self.shared.io_errors.load(Ordering::Relaxed),
            rolls,
            segments: self.recovery.segments + rolls,
            recovery: self.recovery.clone(),
            archive: self.archive_stats.snapshot(),
        }
    }
}

impl Drop for AuditSink {
    fn drop(&mut self) {
        self.tx.take();
        if let Some(w) = self.writer.take() {
            let _ = w.join();
        }
        if let Some(a) = self.archiver.take() {
            a.stop();
        }
    }
}

struct Writer {
    rx: Receiver<AuditEvent>,
    storage: Box<dyn AuditStorage>,
    head: ChainHead,
    batch_max: usize,
    flush_interval: Duration,
    max_segment_bytes: u64,
    active_segment: u64,
    active_bytes: u64,
    /// The active segment is freshly opened and its first entry must be a
    /// handoff record restating the current head, so the segment verifies
    /// standalone. Set by a roll, or by recovery after wiping a torn roll.
    needs_handoff: bool,
    shared: Arc<SinkShared>,
    recovery: RecoveryReport,
    poisoned: bool,
}

impl Writer {
    fn run(mut self) {
        // the restart itself is an auditable event, chained like any other
        let mut batch = vec![AuditEvent::Lifecycle {
            what: "sink_start".into(),
            detail: format!(
                "recovered={} truncated_bytes={} lost={}",
                self.recovery.recovered, self.recovery.truncated_bytes, self.recovery.lost
            ),
        }];
        self.flush(&mut batch);

        let mut deadline: Option<Instant> = None;
        loop {
            let received = match deadline {
                None => match self.rx.recv() {
                    Ok(ev) => Some(ev),
                    Err(_) => break,
                },
                Some(d) => {
                    let now = Instant::now();
                    if now >= d {
                        self.flush(&mut batch);
                        deadline = None;
                        continue;
                    }
                    match self.rx.recv_timeout(d - now) {
                        Ok(ev) => Some(ev),
                        Err(RecvTimeoutError::Timeout) => {
                            self.flush(&mut batch);
                            deadline = None;
                            continue;
                        }
                        Err(RecvTimeoutError::Disconnected) => break,
                    }
                }
            };
            if let Some(ev) = received {
                batch.push(ev);
                if deadline.is_none() {
                    deadline = Some(Instant::now() + self.flush_interval);
                }
                if batch.len() >= self.batch_max {
                    self.flush(&mut batch);
                    deadline = None;
                }
            }
        }

        // channel disconnected: whatever is pending plus the stop marker
        let audited_so_far = self.shared.audited.load(Ordering::Relaxed) + batch.len() as u64 + 1;
        batch.push(AuditEvent::Lifecycle {
            what: "sink_stop".into(),
            detail: format!("audited={audited_so_far}"),
        });
        self.flush(&mut batch);
    }

    /// Turn the batch into chained JSONL lines, append them in ONE storage
    /// call, fsync, then persist the advanced head. When the batch would
    /// push the active segment past its byte budget, roll to a fresh
    /// segment *before* appending and open it with a handoff record (so a
    /// flush never splits across segments, every segment's first entry
    /// carries its resume point, and a segment exceeds the cap only when
    /// a single batch is alone larger than it). A failure poisons the
    /// sink: later events are counted dropped instead of risking a forked
    /// chain on storage that already tore.
    fn flush(&mut self, batch: &mut Vec<AuditEvent>) {
        if batch.is_empty() {
            return;
        }
        let n = batch.len() as u64;
        if self.poisoned {
            self.shared.dropped.fetch_add(n, Ordering::Relaxed);
            batch.clear();
            return;
        }
        let events: Vec<(String, String, String)> =
            batch.drain(..).map(AuditEvent::into_parts).collect();
        let mut head = self.head;
        let mut buf = build_lines(&mut head, self.needs_handoff, self.active_segment, &events);
        let mut handoff_written = self.needs_handoff;
        // Pre-append roll: this batch would overflow the segment, so it
        // goes into a fresh one instead. A freshly opened segment
        // (needs_handoff) or an empty one never rolls again — that is
        // where an over-cap single batch is allowed to land, bounding the
        // overshoot at exactly one batch.
        if !self.needs_handoff
            && self.active_bytes > 0
            && self.active_bytes + buf.len() as u64 > self.max_segment_bytes
        {
            match self.storage.open_segment(self.active_segment + 1) {
                Ok(()) => {
                    self.active_segment += 1;
                    self.active_bytes = 0;
                    self.needs_handoff = true;
                    self.shared.rolls.fetch_add(1, Ordering::Relaxed);
                    self.shared
                        .active_segment
                        .store(self.active_segment, Ordering::Relaxed);
                    // re-serialize: the new segment opens with a handoff
                    // and every entry's digest chains past it
                    head = self.head;
                    buf = build_lines(&mut head, true, self.active_segment, &events);
                    handoff_written = true;
                }
                Err(_) => {
                    // soft failure: keep appending to the oversized
                    // current segment rather than lose evidence
                    self.shared.io_errors.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
        let written = self
            .storage
            .append_log(&buf)
            .and_then(|()| self.storage.sync_log());
        match written {
            Ok(()) => {
                self.head = head;
                self.active_bytes += buf.len() as u64;
                if handoff_written {
                    self.needs_handoff = false;
                }
                self.shared.audited.fetch_add(n, Ordering::Relaxed);
                // the head sidecar is advisory (loss *reporting*); its
                // failure must not stop the log itself
                let head_json = serde_json::to_string(&head).expect("chain head serializes");
                if self.storage.write_head(head_json.as_bytes()).is_err() {
                    self.shared.io_errors.fetch_add(1, Ordering::Relaxed);
                }
            }
            Err(_) => {
                self.shared.io_errors.fetch_add(1, Ordering::Relaxed);
                self.shared.dropped.fetch_add(n, Ordering::Relaxed);
                self.poisoned = true;
            }
        }
    }
}

/// Serialize `events` as chained JSONL, optionally preceded by a handoff
/// record for `segment`, advancing `head` past everything serialized.
fn build_lines(
    head: &mut ChainHead,
    with_handoff: bool,
    segment: u64,
    events: &[(String, String, String)],
) -> Vec<u8> {
    let mut buf = Vec::with_capacity(events.len() * 128 + 192);
    if with_handoff {
        let claim = *head;
        let entry = head.extend(
            "fact-serve",
            SEGMENT_HANDOFF_ACTION,
            claim.handoff_details(segment),
        );
        let line = serde_json::to_string(&entry).expect("audit entry serializes");
        buf.extend_from_slice(line.as_bytes());
        buf.push(b'\n');
    }
    for (actor, action, details) in events {
        let entry = head.extend(actor.clone(), action.clone(), details.clone());
        let line = serde_json::to_string(&entry).expect("audit entry serializes");
        buf.extend_from_slice(line.as_bytes());
        buf.push(b'\n');
    }
    buf
}

/// Parse a recovered JSONL log back into entries (verification helper for
/// tests and offline audit tooling). Stops at the first unparseable line.
pub fn parse_log(bytes: &[u8]) -> Vec<AuditEntry> {
    let mut out = Vec::new();
    for line in bytes.split(|&b| b == b'\n') {
        if line.is_empty() {
            continue;
        }
        match std::str::from_utf8(line)
            .ok()
            .and_then(|s| serde_json::from_str::<AuditEntry>(s).ok())
        {
            Some(e) => out.push(e),
            None => break,
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use fact_transparency::audit::verify_chain_from;

    fn flagged(shard: usize, key: u64) -> AuditEvent {
        AuditEvent::Flagged {
            shard,
            route_key: key,
            probability: 0.25,
            favorable: false,
            group_b: key.is_multiple_of(2),
        }
    }

    fn open_mem(storage: &MemStorage, batch_max: usize) -> AuditSink {
        AuditSink::open_with_storage(
            &AuditSinkConfig {
                batch_max,
                flush_interval: Duration::from_millis(1),
                ..AuditSinkConfig::default()
            },
            Box::new(storage.clone()),
        )
        .unwrap()
    }

    /// `max_segment_bytes = 1` makes every flush after the first roll to a
    /// fresh segment — the deterministic way to exercise rotation.
    fn open_mem_rotating(storage: &MemStorage, batch_max: usize) -> AuditSink {
        AuditSink::open_with_storage(
            &AuditSinkConfig {
                batch_max,
                flush_interval: Duration::from_millis(1),
                max_segment_bytes: 1,
                ..AuditSinkConfig::default()
            },
            Box::new(storage.clone()),
        )
        .unwrap()
    }

    #[test]
    fn events_become_a_verifiable_chain() {
        let storage = MemStorage::new();
        let sink = open_mem(&storage, 4);
        let h = sink.handle();
        for k in 0..10 {
            h.record(flagged(0, k));
        }
        drop(h);
        let report = sink.finish();
        // 10 events + sink_start + sink_stop
        assert_eq!(report.audited, 12);
        assert_eq!(report.dropped, 0);
        let entries = parse_log(&storage.log_bytes());
        assert_eq!(entries.len(), 12);
        assert_eq!(verify_chain_from(ChainHead::genesis(), &entries), None);
        assert_eq!(entries[0].action, "sink_start");
        assert_eq!(entries[11].action, "sink_stop");
        assert_eq!(entries[1].actor, "shard-0");
        assert!(entries[1].details.contains("key=0"));
        // the persisted head matches the file's last entry
        let head: ChainHead =
            serde_json::from_str(&String::from_utf8(storage.head_bytes().unwrap()).unwrap())
                .unwrap();
        assert_eq!(head, ChainHead::advanced_past(entries.last().unwrap()));
    }

    #[test]
    fn restart_resumes_the_same_chain() {
        let storage = MemStorage::new();
        let sink = open_mem(&storage, 4);
        let h = sink.handle();
        for k in 0..5 {
            h.record(flagged(0, k));
        }
        drop(h);
        sink.finish();

        let sink2 = open_mem(&storage, 4);
        assert_eq!(sink2.recovery().recovered, 7); // 5 + start/stop
        assert_eq!(sink2.recovery().truncated_bytes, 0);
        assert_eq!(sink2.recovery().lost, 0);
        let h2 = sink2.handle();
        for k in 5..8 {
            h2.record(flagged(1, k));
        }
        drop(h2);
        sink2.finish();

        let entries = parse_log(&storage.log_bytes());
        assert_eq!(entries.len(), 12); // 7 + start + 3 + stop
        assert_eq!(verify_chain_from(ChainHead::genesis(), &entries), None);
    }

    #[test]
    fn append_failure_poisons_but_does_not_wedge() {
        let storage = MemStorage::new();
        storage.fail_appends_from(1); // sink_start succeeds, then failure
        let sink = open_mem(&storage, 2);
        let h = sink.handle();
        for k in 0..20 {
            h.record(flagged(0, k));
        }
        drop(h);
        let report = sink.finish();
        assert_eq!(report.audited, 1); // only sink_start landed
        assert!(report.io_errors >= 1);
        // every event after the poison (incl. sink_stop) is counted dropped
        assert_eq!(report.dropped, 21);
        let entries = parse_log(&storage.log_bytes());
        assert_eq!(verify_chain_from(ChainHead::genesis(), &entries), None);
        assert_eq!(entries.len(), 1);
    }

    #[test]
    fn torn_tail_is_truncated_and_reported() {
        let storage = MemStorage::new();
        let sink = open_mem(&storage, 4);
        let h = sink.handle();
        for k in 0..6 {
            h.record(flagged(0, k));
        }
        drop(h);
        sink.finish();
        // tear the file mid-line, as a kill between write and sync would
        let full = storage.log_bytes();
        let cut = full.len() - 17;
        let mut s = storage.clone();
        s.truncate_segment(0, cut as u64).unwrap();

        let sink2 = open_mem(&storage, 4);
        let rec = sink2.recovery().clone();
        assert!(rec.truncated_bytes > 0, "{rec:?}");
        assert_eq!(rec.cut_seq, None, "a torn line is not a chain break");
        // the head sidecar still said 8 entries: the tear cost exactly one
        assert_eq!(rec.recovered, 7);
        assert_eq!(rec.lost, 1);
        sink2.finish();
        let entries = parse_log(&storage.log_bytes());
        assert_eq!(verify_chain_from(ChainHead::genesis(), &entries), None);
    }

    #[test]
    fn mid_chain_corruption_cuts_at_the_tamper_point() {
        let storage = MemStorage::new();
        let sink = open_mem(&storage, 4);
        let h = sink.handle();
        for k in 0..6 {
            h.record(flagged(0, k));
        }
        drop(h);
        sink.finish();
        // flip one byte inside the details of an entry in the middle
        let mut bytes = storage.log_bytes();
        let target = bytes
            .windows(7)
            .position(|w| w == b"key=3 p".as_slice())
            .expect("entry for key 3 present");
        bytes[target + 4] = b'9';
        let mut s = storage.clone();
        s.open_segment(0).unwrap();
        s.truncate_segment(0, 0).unwrap();
        s.append_log(&bytes).unwrap();

        let sink2 = open_mem(&storage, 4);
        let rec = sink2.recovery().clone();
        assert_eq!(rec.cut_seq, Some(4), "{rec:?}"); // entry 4 = key=3 (after sink_start)
        assert_eq!(rec.recovered, 4);
        assert!(rec.cut_lines >= 1);
        sink2.finish();
        let entries = parse_log(&storage.log_bytes());
        assert_eq!(verify_chain_from(ChainHead::genesis(), &entries), None);
    }

    #[test]
    fn file_storage_round_trips_and_recovers() {
        let dir = std::env::temp_dir().join(format!(
            "fact-audit-sink-test-{}-{}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .as_nanos()
        ));
        let path = dir.join("audit.jsonl");
        let cfg = AuditSinkConfig {
            path: path.clone(),
            batch_max: 4,
            flush_interval: Duration::from_millis(1),
            ..AuditSinkConfig::default()
        };
        let sink = AuditSink::open(&cfg).unwrap();
        let h = sink.handle();
        for k in 0..5 {
            h.record(flagged(0, k));
        }
        drop(h);
        let report = sink.finish();
        assert_eq!(report.audited, 7);

        // reopen: chain intact, appending resumes
        let sink2 = AuditSink::open(&cfg).unwrap();
        assert_eq!(sink2.recovery().recovered, 7);
        assert_eq!(sink2.recovery().lost, 0);
        sink2.finish();
        let entries = parse_log(&std::fs::read(&path).unwrap());
        assert_eq!(entries.len(), 9);
        assert_eq!(verify_chain_from(ChainHead::genesis(), &entries), None);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn writer_rolls_segments_and_each_verifies_standalone() {
        let storage = MemStorage::new();
        let sink = open_mem_rotating(&storage, 2);
        let h = sink.handle();
        for k in 0..10 {
            h.record(flagged(0, k));
        }
        drop(h);
        let report = sink.finish();
        assert_eq!(report.audited, 12); // handoffs are counted in rolls
        assert!(report.rolls >= 2, "{report:?}");
        assert_eq!(report.segments, report.rolls + 1);
        assert_eq!(storage.segment_ids().len() as u64, report.segments);

        // every segment verifies standalone and the set stitches
        let mut probe: Box<dyn AuditStorage> = Box::new(storage.clone());
        let audit = verify_all_segments(probe.as_mut()).unwrap();
        assert!(audit.continuous, "{audit:?}");
        assert_eq!(audit.segments.len() as u64, report.segments);
        for (id, verdict) in &audit.segments {
            let check = verdict.as_ref().unwrap_or_else(|e| panic!("seg {id}: {e}"));
            if *id == 0 {
                assert_eq!(check.handoff_segment, None);
            } else {
                assert_eq!(check.handoff_segment, Some(*id));
            }
        }
        // the concatenation is still one chain from genesis
        let entries = parse_log(&storage.log_bytes());
        assert_eq!(entries.len() as u64, report.audited + report.rolls);
        assert_eq!(verify_chain_from(ChainHead::genesis(), &entries), None);
    }

    #[test]
    fn recovery_replays_only_the_newest_segment() {
        let storage = MemStorage::new();
        let sink = open_mem_rotating(&storage, 2);
        let h = sink.handle();
        for k in 0..10 {
            h.record(flagged(0, k));
        }
        drop(h);
        let report = sink.finish();
        let total = report.audited + report.rolls;
        let newest = *storage.segment_ids().last().unwrap();
        let newest_entries = parse_log(&storage.segment_bytes(newest).unwrap()).len() as u64;

        let sink2 = open_mem_rotating(&storage, 2);
        let rec = sink2.recovery().clone();
        assert_eq!(rec.replayed_segments, 1, "{rec:?}");
        assert_eq!(rec.recovered, newest_entries);
        assert!(rec.recovered < total, "recovery must not replay history");
        assert_eq!(rec.lost, 0);
        assert_eq!(rec.active_segment, newest);
        assert!(!rec.needs_handoff);
        let h2 = sink2.handle();
        for k in 10..13 {
            h2.record(flagged(1, k));
        }
        drop(h2);
        sink2.finish();
        // appends resumed the same chain across the restart
        let entries = parse_log(&storage.log_bytes());
        assert_eq!(verify_chain_from(ChainHead::genesis(), &entries), None);
    }

    #[test]
    fn file_storage_rotates_lists_and_reopens() {
        let dir = std::env::temp_dir().join(format!(
            "fact-audit-rotate-test-{}-{}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .as_nanos()
        ));
        let path = dir.join("audit.jsonl");
        let cfg = AuditSinkConfig {
            path: path.clone(),
            batch_max: 2,
            flush_interval: Duration::from_millis(1),
            max_segment_bytes: 1,
            ..AuditSinkConfig::default()
        };
        let sink = AuditSink::open(&cfg).unwrap();
        let h = sink.handle();
        for k in 0..8 {
            h.record(flagged(0, k));
        }
        drop(h);
        let report = sink.finish();
        assert!(report.rolls >= 2, "{report:?}");
        assert!(path.exists());
        assert!(dir.join("audit.jsonl.000001.jsonl").exists());

        let mut fs: Box<dyn AuditStorage> = Box::new(FileStorage::open(&path).unwrap());
        let listed = fs.list_segments().unwrap();
        assert_eq!(listed.len() as u64, report.segments);
        assert_eq!(listed[0], 0);
        let audit = verify_all_segments(fs.as_mut()).unwrap();
        assert!(audit.continuous, "{audit:?}");

        let sink2 = AuditSink::open(&cfg).unwrap();
        assert_eq!(sink2.recovery().replayed_segments, 1);
        assert_eq!(sink2.recovery().lost, 0);
        sink2.finish();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn file_storage_lists_wide_segment_ids_numerically() {
        let dir = std::env::temp_dir().join(format!(
            "fact-audit-wide-id-test-{}-{}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .as_nanos()
        ));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("audit.jsonl");
        std::fs::write(&path, b"").unwrap();
        // the zero-pad stops at six digits: the next id is seven wide, and
        // sorts lexicographically *before* 999999 — the bug being pinned
        std::fs::write(dir.join("audit.jsonl.999999.jsonl"), b"nine").unwrap();
        std::fs::write(dir.join("audit.jsonl.1000000.jsonl"), b"wide").unwrap();
        // neighbors that must not parse as segments
        std::fs::write(dir.join("audit.jsonl.head"), b"").unwrap();
        std::fs::write(dir.join("audit.jsonl.archive"), b"").unwrap();
        std::fs::write(dir.join("audit.jsonl.12x.jsonl"), b"").unwrap();
        std::fs::write(dir.join("audit.jsonl.999999.jsonl.facz"), b"").unwrap();
        std::fs::write(dir.join("audit.jsonl.1000000.jsonl.facz"), b"").unwrap();

        let mut fs = FileStorage::open(&path).unwrap();
        assert_eq!(fs.list_segments().unwrap(), vec![0, 999_999, 1_000_000]);
        assert_eq!(fs.list_archives().unwrap(), vec![999_999, 1_000_000]);
        // wide ids resolve to their (naturally widened) paths on read
        assert_eq!(fs.read_segment(999_999).unwrap(), b"nine");
        assert_eq!(fs.read_segment(1_000_000).unwrap(), b"wide");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn oversized_batch_rolls_to_a_fresh_segment_before_appending() {
        let storage = MemStorage::new();
        let cap = 4096u64;
        // a huge flush_interval means the only flushes are batch_max fills
        // and lifecycle markers: sink_start lands alone in segment 0, then
        // one 64-event batch (~9 KiB serialized, over the cap) arrives
        let sink = AuditSink::open_with_storage(
            &AuditSinkConfig {
                batch_max: 64,
                flush_interval: Duration::from_secs(3600),
                max_segment_bytes: cap,
                ..AuditSinkConfig::default()
            },
            Box::new(storage.clone()),
        )
        .unwrap();
        let h = sink.handle();
        for k in 0..64 {
            h.record(flagged(0, k));
        }
        drop(h);
        let report = sink.finish();
        assert_eq!(report.audited, 66); // start + 64 + stop
        assert_eq!(report.dropped, 0);

        // the batch rolled *before* appending: segment 0 stays under the
        // cap, and the whole batch landed together in segment 1 (the one
        // place an over-cap batch may overshoot)
        assert!(report.rolls >= 1, "{report:?}");
        let seg0 = storage.segment_bytes(0).unwrap();
        assert!(
            seg0.len() as u64 <= cap,
            "pre-append roll must keep sealed segments under the cap \
             ({} > {cap})",
            seg0.len()
        );
        let seg1 = storage.segment_bytes(1).unwrap();
        assert!(seg1.len() as u64 > cap, "the big batch lands whole");
        let seg1_entries = parse_log(&seg1);
        assert_eq!(seg1_entries.len(), 65); // handoff + all 64 events
        assert!(is_handoff(&seg1_entries[0]));

        // the rotated set still stitches into one chain
        let mut probe: Box<dyn AuditStorage> = Box::new(storage.clone());
        let audit = verify_all_segments(probe.as_mut()).unwrap();
        assert!(audit.continuous, "{audit:?}");
        let entries = parse_log(&storage.log_bytes());
        assert_eq!(verify_chain_from(ChainHead::genesis(), &entries), None);
    }

    #[test]
    fn archived_segments_read_verify_and_recover_transparently() {
        use crate::archive::{run_once, ArchiveConfig, ArchiveStats};

        let storage = MemStorage::new();
        let sink = open_mem_rotating(&storage, 2);
        let h = sink.handle();
        for k in 0..10 {
            h.record(flagged(0, k));
        }
        drop(h);
        sink.finish();
        let live_before = storage.segment_ids();
        let newest = *live_before.last().unwrap();
        assert!(live_before.len() >= 3, "{live_before:?}");
        let originals: Vec<(u64, Vec<u8>)> = live_before
            .iter()
            .map(|&id| (id, storage.segment_bytes(id).unwrap()))
            .collect();

        // compact every sealed segment, retaining none
        let mut probe: Box<dyn AuditStorage> = Box::new(storage.clone());
        let stats = ArchiveStats::default();
        let cfg = ArchiveConfig {
            retain_segments: 0,
            ..ArchiveConfig::default()
        };
        let pass = run_once(probe.as_mut(), &cfg, newest, &stats).unwrap();
        assert_eq!(pass.archived, live_before[..live_before.len() - 1]);
        assert!(pass.skipped.is_empty(), "{pass:?}");
        assert_eq!(storage.segment_ids(), vec![newest]);
        assert_eq!(storage.archive_ids(), pass.archived);
        assert!(
            stats.snapshot().bytes_after < stats.snapshot().bytes_before,
            "JSONL must compress"
        );

        // reads fall through to the archive, byte-identical
        for (id, bytes) in &originals {
            assert_eq!(
                &read_segment_or_archive(probe.as_mut(), *id).unwrap(),
                bytes
            );
        }
        // verification spans the live/archived boundary
        let audit = verify_all_segments(probe.as_mut()).unwrap();
        assert!(audit.continuous, "{audit:?}");
        assert_eq!(audit.segments.len(), live_before.len());

        // a restart over the compacted store sees zero loss and resumes
        let sink2 = open_mem_rotating(&storage, 2);
        let rec = sink2.recovery().clone();
        assert_eq!(rec.lost, 0, "{rec:?}");
        assert_eq!(rec.missing_segments, 0);
        assert_eq!(rec.active_segment, newest);
        let h2 = sink2.handle();
        for k in 10..13 {
            h2.record(flagged(1, k));
        }
        drop(h2);
        sink2.finish();
        let mut probe2: Box<dyn AuditStorage> = Box::new(storage.clone());
        let audit2 = verify_all_segments(probe2.as_mut()).unwrap();
        assert!(audit2.continuous, "{audit2:?}");
    }

    #[test]
    fn fully_archived_store_resumes_in_a_fresh_segment() {
        use crate::archive::{encode_archive, run_once, ArchiveConfig, ArchiveStats};

        let storage = MemStorage::new();
        let sink = open_mem_rotating(&storage, 2);
        let h = sink.handle();
        for k in 0..6 {
            h.record(flagged(0, k));
        }
        drop(h);
        sink.finish();
        let live = storage.segment_ids();
        let newest = *live.last().unwrap();

        let mut probe: Box<dyn AuditStorage> = Box::new(storage.clone());
        let stats = ArchiveStats::default();
        let cfg = ArchiveConfig {
            retain_segments: 0,
            ..ArchiveConfig::default()
        };
        run_once(probe.as_mut(), &cfg, newest, &stats).unwrap();
        // the operator compacts the closed log's final segment by hand
        let bytes = storage.segment_bytes(newest).unwrap();
        probe
            .as_mut()
            .write_archive(newest, &encode_archive(newest, &bytes))
            .unwrap();
        assert!(storage.remove_segment(newest));
        assert!(storage.segment_ids().is_empty());

        // recovery resumes past the newest archive, opening with a handoff
        let sink2 = open_mem_rotating(&storage, 2);
        let rec = sink2.recovery().clone();
        assert_eq!(rec.lost, 0, "{rec:?}");
        assert_eq!(rec.active_segment, newest + 1);
        assert!(rec.needs_handoff);
        let h2 = sink2.handle();
        h2.record(flagged(1, 99));
        drop(h2);
        sink2.finish();

        let mut probe2: Box<dyn AuditStorage> = Box::new(storage.clone());
        let audit = verify_all_segments(probe2.as_mut()).unwrap();
        assert!(audit.continuous, "{audit:?}");
        // the whole history — every archive plus the new live tail — is
        // still one unbroken chain from genesis
        let mut all = Vec::new();
        for id in 0..=newest + 1 {
            all.extend(read_segment_or_archive(probe2.as_mut(), id).unwrap());
        }
        let entries = parse_log(&all);
        assert_eq!(verify_chain_from(ChainHead::genesis(), &entries), None);
    }
}
