//! Durable, hash-chained audit sink: the persistence layer behind
//! audit-and-flag serving.
//!
//! `fact-serve` used to *count* flagged decisions; a crash erased exactly
//! the evidence the audit-and-flag degrade policy exists to preserve. This
//! module makes the trail durable and tamper-evident:
//!
//! * **One writer thread** is fed by an `std::sync::mpsc` channel from all
//!   shard workers. Events are batched (up to `batch_max`, or after
//!   `flush_interval` of quiet) and each batch becomes one storage append
//!   followed by one fsync — so a crash can tear at most the last batch.
//! * **Every entry extends the [`fact_transparency`] hash chain**: the
//!   writer carries a [`ChainHead`] and serializes chained
//!   [`AuditEntry`]s as JSONL, one line per entry. The file itself *is*
//!   the chain; any edit, deletion, or reorder is detectable offline with
//!   [`verify_chain_from`](fact_transparency::audit::verify_chain_from).
//! * **The chain head is persisted** after every synced batch (a small
//!   sidecar the storage keeps next to the log). It is advisory: losing it
//!   never loses decisions, but comparing it against the recovered log
//!   bounds and *reports* what a crash took.
//! * **A startup recovery pass** re-reads the log, verifies the chain from
//!   genesis, truncates a torn tail (an unterminated or unparseable final
//!   batch) at the exact cut point, and resumes appending with `prev_hash`
//!   continuity across the restart.
//!
//! Storage is injectable through [`AuditStorage`], which is what the
//! crash/fault-injection test suite drives: [`MemStorage`] can fail an
//! append outright, persist a short write, or die mid-batch like a killed
//! process — the same failure surface any checkpoint/WAL path has.

use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, RecvTimeoutError, SyncSender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use fact_transparency::audit::{AuditEntry, ChainHead};

/// Where the audit log's bytes live. The sink only needs append, sync,
/// truncate, and whole-log read (recovery), plus a small sidecar slot for
/// the persisted chain head. Implementations are moved into the writer
/// thread, so they must be `Send`.
///
/// The contract mirrors a real file: `append_log` may persist a *prefix*
/// of the buffer before failing (short write, kill), and nothing is
/// considered durable until `sync_log` returns `Ok`.
pub trait AuditStorage: Send {
    /// Read the entire log (recovery pass).
    fn read_log(&mut self) -> io::Result<Vec<u8>>;
    /// Append raw bytes to the log (one batch per call).
    fn append_log(&mut self, buf: &[u8]) -> io::Result<()>;
    /// Cut the log back to `len` bytes (tear off a torn tail).
    fn truncate_log(&mut self, len: u64) -> io::Result<()>;
    /// Make previous appends durable (fsync).
    fn sync_log(&mut self) -> io::Result<()>;
    /// Read the persisted chain head, if one exists.
    fn read_head(&mut self) -> io::Result<Option<Vec<u8>>>;
    /// Durably replace the persisted chain head.
    fn write_head(&mut self, buf: &[u8]) -> io::Result<()>;
}

// ---------------------------------------------------------------------------
// file-backed storage
// ---------------------------------------------------------------------------

/// Real-file storage: an append-only JSONL log at `path` and the chain
/// head in a `<path>.head` sidecar, replaced via write-temp-then-rename.
#[derive(Debug)]
pub struct FileStorage {
    log: std::fs::File,
    head_path: PathBuf,
}

impl FileStorage {
    /// Open (creating if absent) the log at `path`; the head sidecar lives
    /// at `<path>.head`.
    pub fn open(path: &Path) -> io::Result<Self> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let log = std::fs::OpenOptions::new()
            .read(true)
            .create(true)
            .append(true)
            .open(path)?;
        let mut head_path = path.as_os_str().to_owned();
        head_path.push(".head");
        Ok(FileStorage {
            log,
            head_path: PathBuf::from(head_path),
        })
    }
}

impl AuditStorage for FileStorage {
    fn read_log(&mut self) -> io::Result<Vec<u8>> {
        self.log.seek(SeekFrom::Start(0))?;
        let mut buf = Vec::new();
        self.log.read_to_end(&mut buf)?;
        Ok(buf)
    }

    fn append_log(&mut self, buf: &[u8]) -> io::Result<()> {
        // O_APPEND: writes land at the end regardless of read seeks
        self.log.write_all(buf)
    }

    fn truncate_log(&mut self, len: u64) -> io::Result<()> {
        self.log.set_len(len)
    }

    fn sync_log(&mut self) -> io::Result<()> {
        self.log.sync_data()
    }

    fn read_head(&mut self) -> io::Result<Option<Vec<u8>>> {
        match std::fs::read(&self.head_path) {
            Ok(b) => Ok(Some(b)),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(e),
        }
    }

    fn write_head(&mut self, buf: &[u8]) -> io::Result<()> {
        let mut tmp = self.head_path.as_os_str().to_owned();
        tmp.push(".tmp");
        let tmp = PathBuf::from(tmp);
        {
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(buf)?;
            f.sync_data()?;
        }
        std::fs::rename(&tmp, &self.head_path)
    }
}

// ---------------------------------------------------------------------------
// in-memory storage with fault injection
// ---------------------------------------------------------------------------

#[derive(Debug, Default)]
struct MemInner {
    log: Vec<u8>,
    head: Option<Vec<u8>>,
    appends: u64,
    /// Appends (0-based) at or beyond this index fail with nothing
    /// persisted — a storage layer that starts erroring.
    fail_appends_from: Option<u64>,
    /// The next append persists only this many bytes, then errors — a
    /// short write surfaced to the caller.
    short_write_next: Option<usize>,
    /// Total log size is capped here: the append that would cross it
    /// persists only up to the cap and the storage dies — a process
    /// killed mid-batch, torn line and all.
    kill_at_byte: Option<u64>,
    dead: bool,
}

/// In-memory [`AuditStorage`] shared through an `Arc`: cloning yields a
/// second handle onto the *same* bytes, which is how tests "restart" a
/// sink over whatever a fault left behind. Fault injection is explicit:
/// [`fail_appends_from`](MemStorage::fail_appends_from),
/// [`short_write_next`](MemStorage::short_write_next), and
/// [`kill_at_byte`](MemStorage::kill_at_byte).
#[derive(Debug, Clone, Default)]
pub struct MemStorage {
    inner: Arc<Mutex<MemInner>>,
}

impl MemStorage {
    /// Fresh, empty, fault-free storage.
    pub fn new() -> Self {
        MemStorage::default()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, MemInner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Make append number `n` (0-based) and all later ones fail, persisting
    /// nothing.
    pub fn fail_appends_from(&self, n: u64) {
        self.lock().fail_appends_from = Some(n);
    }

    /// Make the next append persist only the first `n` bytes, then error.
    pub fn short_write_next(&self, n: usize) {
        self.lock().short_write_next = Some(n);
    }

    /// Kill the storage once the log reaches `cap` total bytes: the
    /// crossing append persists a prefix up to the cap (a torn line) and
    /// every operation after that fails, like a dead process's fds.
    pub fn kill_at_byte(&self, cap: u64) {
        self.lock().kill_at_byte = Some(cap);
    }

    /// Clear all fault plans and revive a killed storage — the "restart".
    pub fn restart(&self) -> MemStorage {
        let mut g = self.lock();
        g.fail_appends_from = None;
        g.short_write_next = None;
        g.kill_at_byte = None;
        g.dead = false;
        MemStorage {
            inner: Arc::clone(&self.inner),
        }
    }

    /// Current log bytes (inspection).
    pub fn log_bytes(&self) -> Vec<u8> {
        self.lock().log.clone()
    }

    /// Current persisted head bytes (inspection).
    pub fn head_bytes(&self) -> Option<Vec<u8>> {
        self.lock().head.clone()
    }
}

impl AuditStorage for MemStorage {
    fn read_log(&mut self) -> io::Result<Vec<u8>> {
        let g = self.lock();
        if g.dead {
            return Err(io::Error::new(io::ErrorKind::BrokenPipe, "storage dead"));
        }
        Ok(g.log.clone())
    }

    fn append_log(&mut self, buf: &[u8]) -> io::Result<()> {
        let mut g = self.lock();
        if g.dead {
            return Err(io::Error::new(io::ErrorKind::BrokenPipe, "storage dead"));
        }
        let this_append = g.appends;
        g.appends += 1;
        if matches!(g.fail_appends_from, Some(n) if this_append >= n) {
            return Err(io::Error::other("injected append failure"));
        }
        if let Some(n) = g.short_write_next.take() {
            let n = n.min(buf.len());
            g.log.extend_from_slice(&buf[..n]);
            return Err(io::Error::new(
                io::ErrorKind::WriteZero,
                "injected short write",
            ));
        }
        if let Some(cap) = g.kill_at_byte {
            let room = (cap as usize).saturating_sub(g.log.len());
            if buf.len() > room {
                g.log.extend_from_slice(&buf[..room]);
                g.dead = true;
                return Err(io::Error::new(
                    io::ErrorKind::BrokenPipe,
                    "killed mid-batch",
                ));
            }
        }
        g.log.extend_from_slice(buf);
        Ok(())
    }

    fn truncate_log(&mut self, len: u64) -> io::Result<()> {
        let mut g = self.lock();
        if g.dead {
            return Err(io::Error::new(io::ErrorKind::BrokenPipe, "storage dead"));
        }
        g.log.truncate(len as usize);
        Ok(())
    }

    fn sync_log(&mut self) -> io::Result<()> {
        let g = self.lock();
        if g.dead {
            return Err(io::Error::new(io::ErrorKind::BrokenPipe, "storage dead"));
        }
        Ok(())
    }

    fn read_head(&mut self) -> io::Result<Option<Vec<u8>>> {
        let g = self.lock();
        if g.dead {
            return Err(io::Error::new(io::ErrorKind::BrokenPipe, "storage dead"));
        }
        Ok(g.head.clone())
    }

    fn write_head(&mut self, buf: &[u8]) -> io::Result<()> {
        let mut g = self.lock();
        if g.dead {
            return Err(io::Error::new(io::ErrorKind::BrokenPipe, "storage dead"));
        }
        g.head = Some(buf.to_vec());
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// events, config, reports
// ---------------------------------------------------------------------------

/// One auditable occurrence, as sent from shard workers to the writer.
#[derive(Debug, Clone)]
pub enum AuditEvent {
    /// A decision served in degraded audit-and-flag mode.
    Flagged {
        /// Shard that served it.
        shard: usize,
        /// Routing key of the request.
        route_key: u64,
        /// Model probability of the favorable class.
        probability: f64,
        /// The decision at the configured threshold.
        favorable: bool,
        /// Protected-group membership observed by the fairness guard.
        group_b: bool,
    },
    /// A decision refused under the hard-reject policy.
    Rejected {
        /// Shard that refused it.
        shard: usize,
        /// Routing key of the request.
        route_key: u64,
    },
    /// A guard alert forwarded to the global channel.
    Alert {
        /// Shard that raised it.
        shard: usize,
        /// The shard's decision count when it was raised.
        at_decision: u64,
        /// Human-readable rendering of the alert.
        summary: String,
    },
    /// A sink lifecycle marker (start/stop), written by the sink itself.
    Lifecycle {
        /// The marker action (e.g. `sink_start`).
        what: String,
        /// Free-form detail.
        detail: String,
    },
}

impl AuditEvent {
    /// Map the event onto the audit-entry triple (actor, action, details).
    fn into_parts(self) -> (String, String, String) {
        match self {
            AuditEvent::Flagged {
                shard,
                route_key,
                probability,
                favorable,
                group_b,
            } => (
                format!("shard-{shard}"),
                "flagged_decision".into(),
                format!(
                    "key={route_key} p={probability:.6} favorable={favorable} group_b={group_b}"
                ),
            ),
            AuditEvent::Rejected { shard, route_key } => (
                format!("shard-{shard}"),
                "rejected_decision".into(),
                format!("key={route_key} policy=hard_reject"),
            ),
            AuditEvent::Alert {
                shard,
                at_decision,
                summary,
            } => (
                format!("shard-{shard}"),
                "guard_alert".into(),
                format!("at={at_decision} {summary}"),
            ),
            AuditEvent::Lifecycle { what, detail } => ("fact-serve".into(), what, detail),
        }
    }
}

/// Sink configuration.
#[derive(Debug, Clone)]
pub struct AuditSinkConfig {
    /// JSONL log path (the chain head sidecar sits next to it). Ignored
    /// when storage is injected explicitly.
    pub path: PathBuf,
    /// Largest batch the writer accumulates before an append+fsync.
    pub batch_max: usize,
    /// How long a partial batch may wait before it is flushed anyway.
    pub flush_interval: Duration,
    /// Bounded capacity of the worker→writer channel. Workers block when
    /// it fills (audit events are evidence, not telemetry — they are never
    /// silently shed while the sink is healthy).
    pub queue_cap: usize,
}

impl Default for AuditSinkConfig {
    fn default() -> Self {
        AuditSinkConfig {
            path: PathBuf::from("audit.jsonl"),
            batch_max: 64,
            flush_interval: Duration::from_millis(5),
            queue_cap: 8_192,
        }
    }
}

/// What the startup recovery pass found and did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Intact chained entries retained.
    pub recovered: u64,
    /// Byte offset the log was truncated to (equals the log's length when
    /// nothing was cut).
    pub cut_offset: u64,
    /// Bytes removed past the cut point (torn or unverifiable tail).
    pub truncated_bytes: u64,
    /// Complete lines discarded past the cut point (a torn final fragment
    /// without a newline is not counted here).
    pub cut_lines: u64,
    /// Sequence number of the first entry that failed chain verification,
    /// when the cut was a chain break rather than a torn/unparseable tail.
    pub cut_seq: Option<u64>,
    /// Entries the persisted chain head promised but the recovered log
    /// lacks — what the crash provably cost. Bounded by one batch when the
    /// only fault was a kill (the unsynced tail).
    pub lost: u64,
    /// The chain head appending resumes from.
    pub resumed: ChainHead,
}

/// Final accounting returned by [`AuditSink::finish`].
#[derive(Debug, Clone)]
pub struct SinkReport {
    /// Entries appended *and* fsynced during this run (including lifecycle
    /// markers).
    pub audited: u64,
    /// Events dropped because the storage had failed (poisoned sink).
    pub dropped: u64,
    /// Storage errors observed (append/sync/head-write).
    pub io_errors: u64,
    /// What recovery found at startup.
    pub recovery: RecoveryReport,
}

#[derive(Debug, Default)]
struct SinkShared {
    audited: AtomicU64,
    dropped: AtomicU64,
    io_errors: AtomicU64,
}

/// A cheap, cloneable sender side of the sink: shard workers hold one and
/// [`record`](AuditSinkHandle::record) events into it.
#[derive(Clone)]
pub struct AuditSinkHandle {
    tx: SyncSender<AuditEvent>,
    shared: Arc<SinkShared>,
}

impl AuditSinkHandle {
    /// Enqueue one event. Blocks while the writer's queue is full; if the
    /// writer is gone (sink finished early), the event is counted dropped.
    pub fn record(&self, event: AuditEvent) {
        if self.tx.send(event).is_err() {
            self.shared.dropped.fetch_add(1, Ordering::Relaxed);
        }
    }
}

// ---------------------------------------------------------------------------
// recovery
// ---------------------------------------------------------------------------

/// Replay the log in `storage`, verify the hash chain from genesis,
/// truncate whatever tail does not verify, and return the head appending
/// should resume from.
pub fn recover(storage: &mut dyn AuditStorage) -> io::Result<RecoveryReport> {
    let bytes = storage.read_log()?;
    let mut head = ChainHead::genesis();
    let mut recovered = 0u64;
    let mut good_len = 0usize;
    let mut cut_seq = None;
    let mut pos = 0usize;
    while pos < bytes.len() {
        let Some(nl) = bytes[pos..].iter().position(|&b| b == b'\n') else {
            break; // unterminated final fragment: torn mid-line
        };
        let parsed = std::str::from_utf8(&bytes[pos..pos + nl])
            .ok()
            .and_then(|s| serde_json::from_str::<AuditEntry>(s).ok());
        match parsed {
            Some(entry) if head.follows(&entry) => {
                head = ChainHead::advanced_past(&entry);
                recovered += 1;
                pos += nl + 1;
                good_len = pos;
            }
            Some(entry) => {
                // parseable but breaks the chain: corruption or tampering
                cut_seq = Some(entry.seq);
                break;
            }
            None => break, // torn or garbled line
        }
    }
    let cut_lines = bytes[good_len..].iter().filter(|&&b| b == b'\n').count() as u64;
    let truncated_bytes = (bytes.len() - good_len) as u64;
    if truncated_bytes > 0 {
        storage.truncate_log(good_len as u64)?;
        storage.sync_log()?;
    }
    let persisted: Option<ChainHead> = storage
        .read_head()?
        .and_then(|b| String::from_utf8(b).ok())
        .and_then(|s| serde_json::from_str(&s).ok());
    // The head is written after the batch fsync, so it can only lag the
    // log, never legitimately lead it — a lead is exactly the loss.
    let lost = persisted.map_or(0, |p: ChainHead| p.next_seq.saturating_sub(head.next_seq));
    Ok(RecoveryReport {
        recovered,
        cut_offset: good_len as u64,
        truncated_bytes,
        cut_lines,
        cut_seq,
        lost,
        resumed: head,
    })
}

// ---------------------------------------------------------------------------
// the sink
// ---------------------------------------------------------------------------

/// The durable audit sink: owns the writer thread and the storage moved
/// into it. Create with [`open`](AuditSink::open) (file-backed) or
/// [`open_with_storage`](AuditSink::open_with_storage) (anything,
/// including fault-injecting test storage); hand
/// [`handle`](AuditSink::handle)s to producers; call
/// [`finish`](AuditSink::finish) to drain, write the stop marker, fsync,
/// and collect the [`SinkReport`].
pub struct AuditSink {
    tx: Option<SyncSender<AuditEvent>>,
    writer: Option<JoinHandle<()>>,
    shared: Arc<SinkShared>,
    recovery: RecoveryReport,
}

impl AuditSink {
    /// Open a file-backed sink at `config.path`, running recovery first.
    pub fn open(config: &AuditSinkConfig) -> io::Result<AuditSink> {
        let storage = FileStorage::open(&config.path)?;
        Self::open_with_storage(config, Box::new(storage))
    }

    /// Open over explicit storage (`config.path` is ignored), running
    /// recovery first.
    pub fn open_with_storage(
        config: &AuditSinkConfig,
        mut storage: Box<dyn AuditStorage>,
    ) -> io::Result<AuditSink> {
        assert!(config.batch_max > 0, "batch_max must be positive");
        assert!(config.queue_cap > 0, "queue_cap must be positive");
        let recovery = recover(storage.as_mut())?;
        let shared = Arc::new(SinkShared::default());
        let (tx, rx) = sync_channel::<AuditEvent>(config.queue_cap);
        let writer = Writer {
            rx,
            storage,
            head: recovery.resumed,
            batch_max: config.batch_max,
            flush_interval: config.flush_interval,
            shared: Arc::clone(&shared),
            recovery: recovery.clone(),
            poisoned: false,
        };
        let writer = std::thread::Builder::new()
            .name("fact-audit-sink".into())
            .spawn(move || writer.run())
            .map_err(io::Error::other)?;
        Ok(AuditSink {
            tx: Some(tx),
            writer: Some(writer),
            shared,
            recovery,
        })
    }

    /// A sender handle for one producer (clone freely).
    pub fn handle(&self) -> AuditSinkHandle {
        AuditSinkHandle {
            tx: self.tx.clone().expect("sink not finished"),
            shared: Arc::clone(&self.shared),
        }
    }

    /// What the startup recovery pass found.
    pub fn recovery(&self) -> &RecoveryReport {
        &self.recovery
    }

    /// Entries durably synced so far this run.
    pub fn audited(&self) -> u64 {
        self.shared.audited.load(Ordering::Relaxed)
    }

    /// Drop the sender, let the writer drain, stamp the stop marker, and
    /// join. (Outstanding [`AuditSinkHandle`]s keep the writer alive until
    /// they are dropped too.)
    pub fn finish(mut self) -> SinkReport {
        self.tx.take();
        if let Some(w) = self.writer.take() {
            let _ = w.join();
        }
        SinkReport {
            audited: self.shared.audited.load(Ordering::Relaxed),
            dropped: self.shared.dropped.load(Ordering::Relaxed),
            io_errors: self.shared.io_errors.load(Ordering::Relaxed),
            recovery: self.recovery.clone(),
        }
    }
}

impl Drop for AuditSink {
    fn drop(&mut self) {
        self.tx.take();
        if let Some(w) = self.writer.take() {
            let _ = w.join();
        }
    }
}

struct Writer {
    rx: Receiver<AuditEvent>,
    storage: Box<dyn AuditStorage>,
    head: ChainHead,
    batch_max: usize,
    flush_interval: Duration,
    shared: Arc<SinkShared>,
    recovery: RecoveryReport,
    poisoned: bool,
}

impl Writer {
    fn run(mut self) {
        // the restart itself is an auditable event, chained like any other
        let mut batch = vec![AuditEvent::Lifecycle {
            what: "sink_start".into(),
            detail: format!(
                "recovered={} truncated_bytes={} lost={}",
                self.recovery.recovered, self.recovery.truncated_bytes, self.recovery.lost
            ),
        }];
        self.flush(&mut batch);

        let mut deadline: Option<Instant> = None;
        loop {
            let received = match deadline {
                None => match self.rx.recv() {
                    Ok(ev) => Some(ev),
                    Err(_) => break,
                },
                Some(d) => {
                    let now = Instant::now();
                    if now >= d {
                        self.flush(&mut batch);
                        deadline = None;
                        continue;
                    }
                    match self.rx.recv_timeout(d - now) {
                        Ok(ev) => Some(ev),
                        Err(RecvTimeoutError::Timeout) => {
                            self.flush(&mut batch);
                            deadline = None;
                            continue;
                        }
                        Err(RecvTimeoutError::Disconnected) => break,
                    }
                }
            };
            if let Some(ev) = received {
                batch.push(ev);
                if deadline.is_none() {
                    deadline = Some(Instant::now() + self.flush_interval);
                }
                if batch.len() >= self.batch_max {
                    self.flush(&mut batch);
                    deadline = None;
                }
            }
        }

        // channel disconnected: whatever is pending plus the stop marker
        let audited_so_far = self.shared.audited.load(Ordering::Relaxed) + batch.len() as u64 + 1;
        batch.push(AuditEvent::Lifecycle {
            what: "sink_stop".into(),
            detail: format!("audited={audited_so_far}"),
        });
        self.flush(&mut batch);
    }

    /// Turn the batch into chained JSONL lines, append them in ONE storage
    /// call, fsync, then persist the advanced head. A failure poisons the
    /// sink: later events are counted dropped instead of risking a forked
    /// chain on storage that already tore.
    fn flush(&mut self, batch: &mut Vec<AuditEvent>) {
        if batch.is_empty() {
            return;
        }
        let n = batch.len() as u64;
        if self.poisoned {
            self.shared.dropped.fetch_add(n, Ordering::Relaxed);
            batch.clear();
            return;
        }
        let mut head = self.head;
        let mut buf = Vec::with_capacity(batch.len() * 128);
        for ev in batch.drain(..) {
            let (actor, action, details) = ev.into_parts();
            let entry = head.extend(actor, action, details);
            let line = serde_json::to_string(&entry).expect("audit entry serializes");
            buf.extend_from_slice(line.as_bytes());
            buf.push(b'\n');
        }
        let written = self
            .storage
            .append_log(&buf)
            .and_then(|()| self.storage.sync_log());
        match written {
            Ok(()) => {
                self.head = head;
                self.shared.audited.fetch_add(n, Ordering::Relaxed);
                // the head sidecar is advisory (loss *reporting*); its
                // failure must not stop the log itself
                let head_json = serde_json::to_string(&head).expect("chain head serializes");
                if self.storage.write_head(head_json.as_bytes()).is_err() {
                    self.shared.io_errors.fetch_add(1, Ordering::Relaxed);
                }
            }
            Err(_) => {
                self.shared.io_errors.fetch_add(1, Ordering::Relaxed);
                self.shared.dropped.fetch_add(n, Ordering::Relaxed);
                self.poisoned = true;
            }
        }
    }
}

/// Parse a recovered JSONL log back into entries (verification helper for
/// tests and offline audit tooling). Stops at the first unparseable line.
pub fn parse_log(bytes: &[u8]) -> Vec<AuditEntry> {
    let mut out = Vec::new();
    for line in bytes.split(|&b| b == b'\n') {
        if line.is_empty() {
            continue;
        }
        match std::str::from_utf8(line)
            .ok()
            .and_then(|s| serde_json::from_str::<AuditEntry>(s).ok())
        {
            Some(e) => out.push(e),
            None => break,
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use fact_transparency::audit::verify_chain_from;

    fn flagged(shard: usize, key: u64) -> AuditEvent {
        AuditEvent::Flagged {
            shard,
            route_key: key,
            probability: 0.25,
            favorable: false,
            group_b: key.is_multiple_of(2),
        }
    }

    fn open_mem(storage: &MemStorage, batch_max: usize) -> AuditSink {
        AuditSink::open_with_storage(
            &AuditSinkConfig {
                batch_max,
                flush_interval: Duration::from_millis(1),
                ..AuditSinkConfig::default()
            },
            Box::new(storage.clone()),
        )
        .unwrap()
    }

    #[test]
    fn events_become_a_verifiable_chain() {
        let storage = MemStorage::new();
        let sink = open_mem(&storage, 4);
        let h = sink.handle();
        for k in 0..10 {
            h.record(flagged(0, k));
        }
        drop(h);
        let report = sink.finish();
        // 10 events + sink_start + sink_stop
        assert_eq!(report.audited, 12);
        assert_eq!(report.dropped, 0);
        let entries = parse_log(&storage.log_bytes());
        assert_eq!(entries.len(), 12);
        assert_eq!(verify_chain_from(ChainHead::genesis(), &entries), None);
        assert_eq!(entries[0].action, "sink_start");
        assert_eq!(entries[11].action, "sink_stop");
        assert_eq!(entries[1].actor, "shard-0");
        assert!(entries[1].details.contains("key=0"));
        // the persisted head matches the file's last entry
        let head: ChainHead =
            serde_json::from_str(&String::from_utf8(storage.head_bytes().unwrap()).unwrap())
                .unwrap();
        assert_eq!(head, ChainHead::advanced_past(entries.last().unwrap()));
    }

    #[test]
    fn restart_resumes_the_same_chain() {
        let storage = MemStorage::new();
        let sink = open_mem(&storage, 4);
        let h = sink.handle();
        for k in 0..5 {
            h.record(flagged(0, k));
        }
        drop(h);
        sink.finish();

        let sink2 = open_mem(&storage, 4);
        assert_eq!(sink2.recovery().recovered, 7); // 5 + start/stop
        assert_eq!(sink2.recovery().truncated_bytes, 0);
        assert_eq!(sink2.recovery().lost, 0);
        let h2 = sink2.handle();
        for k in 5..8 {
            h2.record(flagged(1, k));
        }
        drop(h2);
        sink2.finish();

        let entries = parse_log(&storage.log_bytes());
        assert_eq!(entries.len(), 12); // 7 + start + 3 + stop
        assert_eq!(verify_chain_from(ChainHead::genesis(), &entries), None);
    }

    #[test]
    fn append_failure_poisons_but_does_not_wedge() {
        let storage = MemStorage::new();
        storage.fail_appends_from(1); // sink_start succeeds, then failure
        let sink = open_mem(&storage, 2);
        let h = sink.handle();
        for k in 0..20 {
            h.record(flagged(0, k));
        }
        drop(h);
        let report = sink.finish();
        assert_eq!(report.audited, 1); // only sink_start landed
        assert!(report.io_errors >= 1);
        // every event after the poison (incl. sink_stop) is counted dropped
        assert_eq!(report.dropped, 21);
        let entries = parse_log(&storage.log_bytes());
        assert_eq!(verify_chain_from(ChainHead::genesis(), &entries), None);
        assert_eq!(entries.len(), 1);
    }

    #[test]
    fn torn_tail_is_truncated_and_reported() {
        let storage = MemStorage::new();
        let sink = open_mem(&storage, 4);
        let h = sink.handle();
        for k in 0..6 {
            h.record(flagged(0, k));
        }
        drop(h);
        sink.finish();
        // tear the file mid-line, as a kill between write and sync would
        let full = storage.log_bytes();
        let cut = full.len() - 17;
        let mut s = storage.clone();
        s.truncate_log(cut as u64).unwrap();

        let sink2 = open_mem(&storage, 4);
        let rec = sink2.recovery().clone();
        assert!(rec.truncated_bytes > 0, "{rec:?}");
        assert_eq!(rec.cut_seq, None, "a torn line is not a chain break");
        // the head sidecar still said 8 entries: the tear cost exactly one
        assert_eq!(rec.recovered, 7);
        assert_eq!(rec.lost, 1);
        sink2.finish();
        let entries = parse_log(&storage.log_bytes());
        assert_eq!(verify_chain_from(ChainHead::genesis(), &entries), None);
    }

    #[test]
    fn mid_chain_corruption_cuts_at_the_tamper_point() {
        let storage = MemStorage::new();
        let sink = open_mem(&storage, 4);
        let h = sink.handle();
        for k in 0..6 {
            h.record(flagged(0, k));
        }
        drop(h);
        sink.finish();
        // flip one byte inside the details of an entry in the middle
        let mut bytes = storage.log_bytes();
        let target = bytes
            .windows(7)
            .position(|w| w == b"key=3 p".as_slice())
            .expect("entry for key 3 present");
        bytes[target + 4] = b'9';
        let mut s = storage.clone();
        s.truncate_log(0).unwrap();
        s.append_log(&bytes).unwrap();

        let sink2 = open_mem(&storage, 4);
        let rec = sink2.recovery().clone();
        assert_eq!(rec.cut_seq, Some(4), "{rec:?}"); // entry 4 = key=3 (after sink_start)
        assert_eq!(rec.recovered, 4);
        assert!(rec.cut_lines >= 1);
        sink2.finish();
        let entries = parse_log(&storage.log_bytes());
        assert_eq!(verify_chain_from(ChainHead::genesis(), &entries), None);
    }

    #[test]
    fn file_storage_round_trips_and_recovers() {
        let dir = std::env::temp_dir().join(format!(
            "fact-audit-sink-test-{}-{}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .as_nanos()
        ));
        let path = dir.join("audit.jsonl");
        let cfg = AuditSinkConfig {
            path: path.clone(),
            batch_max: 4,
            flush_interval: Duration::from_millis(1),
            ..AuditSinkConfig::default()
        };
        let sink = AuditSink::open(&cfg).unwrap();
        let h = sink.handle();
        for k in 0..5 {
            h.record(flagged(0, k));
        }
        drop(h);
        let report = sink.finish();
        assert_eq!(report.audited, 7);

        // reopen: chain intact, appending resumes
        let sink2 = AuditSink::open(&cfg).unwrap();
        assert_eq!(sink2.recovery().recovered, 7);
        assert_eq!(sink2.recovery().lost, 0);
        sink2.finish();
        let entries = parse_log(&std::fs::read(&path).unwrap());
        assert_eq!(entries.len(), 9);
        assert_eq!(verify_chain_from(ChainHead::genesis(), &entries), None);
        std::fs::remove_dir_all(&dir).ok();
    }
}
