//! Feature sources: where a shard's feature vectors come from.
//!
//! Experiment E11 simulated a remote feature store by sleeping inside the
//! model's `predict_proba`. That conflated two very different costs —
//! feature *fetch* latency (I/O, overlappable across shards) and model
//! *compute* — so the simulation is promoted to a first-class seam here:
//! a [`FeatureSource`] runs **once per micro-batch, before the model**,
//! turning the batch's routing keys and inline features into the matrix the
//! model scores. One batched fetch amortizes the round trip across the
//! whole micro-batch, exactly how a production feature store would be
//! called.
//!
//! [`InlineFeatures`] (the default wired by [`DecisionService::start`])
//! passes the request-supplied vectors through untouched. A
//! [`SimulatedRemoteSource`] adds a fixed per-batch latency in front, which
//! is what `exp_e11` now uses in place of its sleeping model wrapper.
//!
//! [`DecisionService::start`]: crate::service::DecisionService::start

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use fact_data::{FactError, Matrix, Result};

/// A per-batch provider of model-ready feature matrices.
///
/// `keys` are the routing keys of the jobs in the micro-batch (one per
/// row); `inline` holds the feature vectors the requests carried. A real
/// implementation would look the keys up in a feature store and may ignore
/// the inline vectors entirely; the bundled implementations derive the
/// matrix from `inline`.
///
/// Implementations are shared across shard workers, so they must be
/// `Send + Sync`; a fetch error fails every job in the batch with
/// [`ServeError::Internal`](crate::ServeError::Internal).
pub trait FeatureSource: Send + Sync {
    /// Assemble the feature matrix for one micro-batch.
    fn fetch_batch(&self, keys: &[u64], inline: &[Vec<f64>]) -> Result<Matrix>;
}

/// The default source: requests already carry their features; batch
/// assembly is a row-copy with no I/O.
#[derive(Debug, Clone, Copy, Default)]
pub struct InlineFeatures;

impl FeatureSource for InlineFeatures {
    fn fetch_batch(&self, _keys: &[u64], inline: &[Vec<f64>]) -> Result<Matrix> {
        Matrix::from_rows(inline)
    }
}

/// A feature store simulated as a fixed round-trip latency per batched
/// fetch. The returned features are the inline ones — only the *cost* of a
/// remote call is modeled, which is all the serving experiments need.
#[derive(Debug, Clone, Copy)]
pub struct SimulatedRemoteSource {
    /// Round-trip latency charged once per `fetch_batch` call.
    pub latency: Duration,
}

impl SimulatedRemoteSource {
    /// A source charging `latency` per batched fetch.
    pub fn new(latency: Duration) -> Self {
        SimulatedRemoteSource { latency }
    }
}

impl FeatureSource for SimulatedRemoteSource {
    fn fetch_batch(&self, _keys: &[u64], inline: &[Vec<f64>]) -> Result<Matrix> {
        if !self.latency.is_zero() {
            std::thread::sleep(self.latency);
        }
        Matrix::from_rows(inline)
    }
}

/// A fault-injecting wrapper around another [`FeatureSource`], for
/// resilience tests: a configurable window of batched fetches fails (as a
/// feature store outage would), and every fetch can be stalled by an extra
/// latency. Failure is by *fetch index* — deterministic under a
/// single-shard service — and the wrapper counts fetches and failures so
/// tests can assert the outage actually happened.
pub struct FailingFeatureSource {
    inner: Arc<dyn FeatureSource>,
    fetches: AtomicU64,
    failures: AtomicU64,
    /// Fetch indices in `fail_from..fail_until` (0-based, half-open) fail.
    fail_from: u64,
    fail_until: u64,
    extra_latency: Duration,
}

impl FailingFeatureSource {
    /// Wrap `inner` with no faults configured (a passthrough).
    pub fn new(inner: Arc<dyn FeatureSource>) -> Self {
        FailingFeatureSource {
            inner,
            fetches: AtomicU64::new(0),
            failures: AtomicU64::new(0),
            fail_from: 0,
            fail_until: 0,
            extra_latency: Duration::ZERO,
        }
    }

    /// Fail every batched fetch whose 0-based index falls in
    /// `from..until` — a bounded outage.
    pub fn fail_window(mut self, from: u64, until: u64) -> Self {
        self.fail_from = from;
        self.fail_until = until;
        self
    }

    /// Fail every fetch from `from` on — an outage that never heals.
    pub fn fail_from(self, from: u64) -> Self {
        self.fail_window(from, u64::MAX)
    }

    /// Stall every fetch (failing or not) by `latency` — a degraded, slow
    /// store rather than a dead one.
    pub fn with_latency(mut self, latency: Duration) -> Self {
        self.extra_latency = latency;
        self
    }

    /// Batched fetches attempted so far.
    pub fn fetches(&self) -> u64 {
        self.fetches.load(Ordering::Relaxed)
    }

    /// Fetches that were failed by injection.
    pub fn failures(&self) -> u64 {
        self.failures.load(Ordering::Relaxed)
    }
}

impl FeatureSource for FailingFeatureSource {
    fn fetch_batch(&self, keys: &[u64], inline: &[Vec<f64>]) -> Result<Matrix> {
        let n = self.fetches.fetch_add(1, Ordering::Relaxed);
        if !self.extra_latency.is_zero() {
            std::thread::sleep(self.extra_latency);
        }
        if (self.fail_from..self.fail_until).contains(&n) {
            self.failures.fetch_add(1, Ordering::Relaxed);
            return Err(FactError::Io(std::io::Error::new(
                std::io::ErrorKind::ConnectionReset,
                format!("injected feature-store failure (fetch {n})"),
            )));
        }
        self.inner.fetch_batch(keys, inline)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Instant;

    #[test]
    fn inline_source_is_a_passthrough() {
        let rows = vec![vec![1.0, 2.0], vec![3.0, 4.0]];
        let m = InlineFeatures.fetch_batch(&[7, 8], &rows).unwrap();
        assert_eq!(m.rows(), 2);
        assert_eq!(m.get(1, 0), 3.0);
    }

    #[test]
    fn simulated_source_charges_latency_per_batch_not_per_row() {
        let src = SimulatedRemoteSource::new(Duration::from_millis(5));
        let rows: Vec<Vec<f64>> = (0..50).map(|i| vec![i as f64]).collect();
        let keys: Vec<u64> = (0..50).collect();
        let t0 = Instant::now();
        let m = src.fetch_batch(&keys, &rows).unwrap();
        let elapsed = t0.elapsed();
        assert_eq!(m.rows(), 50);
        assert!(elapsed >= Duration::from_millis(5));
        assert!(
            elapsed < Duration::from_millis(100),
            "latency must not scale with rows: {elapsed:?}"
        );
    }
}
