//! Guard-state checkpointing: periodic + on-shutdown serialization of each
//! shard's fairness window, ε ledger, and monitor counters to a sidecar
//! file, restored on restart so a respawned shard **resumes** instead of
//! silently resetting.
//!
//! The fairness window travels as a [`WindowSummary`] — per-segment paired
//! count-vectors — so what a restart loses is *provable and bounded*: at
//! most the decisions since the last checkpoint, and within the restored
//! window at most one segment's worth of event ordering. The ε ledger is
//! exact (every recorded expenditure is replayed into a fresh accountant).
//! The drift monitor's recent-score window is deliberately *not*
//! checkpointed: its reference distribution is configuration, and its
//! sliding window refills within `window` decisions.
//!
//! Files are one JSON document per shard, `shard-N.json`, written
//! tmp + rename + fsync so a crash mid-write leaves the previous
//! checkpoint intact rather than a torn one.

use std::fs;
use std::io::{self, Write};
use std::path::{Path, PathBuf};

use fact_fairness::WindowSummary;
use serde::{Deserialize, Serialize};

/// When and where guard state is checkpointed.
#[derive(Debug, Clone)]
pub struct CheckpointConfig {
    /// Directory holding one `shard-N.json` per shard.
    pub dir: PathBuf,
    /// Decisions between periodic checkpoints (a final checkpoint is
    /// always written on clean worker exit regardless).
    pub every: u64,
    /// Segment resolution for the serialized fairness window: smaller
    /// segments mean finer restored ordering at more checkpoint bytes.
    pub segment_events: usize,
}

impl CheckpointConfig {
    /// Checkpoint every `every` decisions into `dir` at the default
    /// resolution (1/16 of nothing in particular — 128-event segments).
    pub fn new(dir: impl Into<PathBuf>, every: u64) -> Self {
        CheckpointConfig {
            dir: dir.into(),
            every,
            segment_events: 128,
        }
    }
}

/// One recorded ε/δ expenditure, as serialized.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LedgerEntry {
    /// Purpose label from the accountant's ledger.
    pub label: String,
    /// Epsilon spent.
    pub epsilon: f64,
    /// Delta spent.
    pub delta: f64,
}

/// Everything a shard's guard set needs to resume after a restart.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GuardCheckpoint {
    /// Shard index this checkpoint belongs to.
    pub shard: u64,
    /// Lifetime decisions served by the shard at checkpoint time
    /// (survives restarts: a restored shard keeps counting from here).
    pub decisions: u64,
    /// The fairness monitor's sliding window, segment-summarized.
    pub window: WindowSummary,
    /// The privacy accountant's full expenditure ledger.
    pub ledger: Vec<LedgerEntry>,
    /// The accountant's ε budget (sanity-checked against config on load).
    pub budget_epsilon: f64,
    /// The accountant's δ budget.
    pub budget_delta: f64,
    /// Decisions accumulated toward the DP counter's next release.
    pub dp_pending: u64,
    /// Whether the DP counter already reported budget exhaustion.
    pub dp_exhausted: bool,
}

/// `dir/shard-N.json`.
pub fn checkpoint_path(dir: &Path, shard: usize) -> PathBuf {
    dir.join(format!("shard-{shard}.json"))
}

/// Durably write `ck` under `dir`, creating the directory if needed.
/// Atomic against crashes: the JSON is written to a temp file, fsynced,
/// and renamed over the previous checkpoint.
pub fn write_checkpoint(dir: &Path, ck: &GuardCheckpoint) -> io::Result<()> {
    fs::create_dir_all(dir)?;
    let final_path = checkpoint_path(dir, ck.shard as usize);
    let tmp_path = dir.join(format!("shard-{}.json.tmp", ck.shard));
    let json = serde_json::to_string(ck)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    {
        let mut f = fs::File::create(&tmp_path)?;
        f.write_all(json.as_bytes())?;
        f.sync_all()?;
    }
    fs::rename(&tmp_path, &final_path)?;
    // fsync the directory so the rename itself is durable
    if let Ok(d) = fs::File::open(dir) {
        let _ = d.sync_all();
    }
    Ok(())
}

/// Load shard `shard`'s checkpoint from `dir`; `Ok(None)` when none has
/// been written yet (first boot). A present-but-unparseable checkpoint is
/// an error, not a silent reset — resuming from nothing when state was
/// expected is exactly the failure checkpointing exists to prevent.
pub fn load_checkpoint(dir: &Path, shard: usize) -> io::Result<Option<GuardCheckpoint>> {
    let path = checkpoint_path(dir, shard);
    let json = match fs::read_to_string(&path) {
        Ok(s) => s,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e),
    };
    serde_json::from_str(&json)
        .map(Some)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("fact-ckpt-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn sample(shard: u64) -> GuardCheckpoint {
        let window =
            WindowSummary::from_events(100, 10, (0..37u64).map(|i| (i % 2 == 0, i % 3 == 0)))
                .unwrap();
        GuardCheckpoint {
            shard,
            decisions: 1234,
            window,
            ledger: vec![
                LedgerEntry {
                    label: "dp-release".into(),
                    epsilon: 0.01,
                    delta: 0.0,
                },
                LedgerEntry {
                    label: "dp-release".into(),
                    epsilon: 0.01,
                    delta: 0.0,
                },
            ],
            budget_epsilon: 1.0,
            budget_delta: 0.0,
            dp_pending: 42,
            dp_exhausted: false,
        }
    }

    #[test]
    fn roundtrips_through_disk() {
        let dir = temp_dir("roundtrip");
        let ck = sample(3);
        write_checkpoint(&dir, &ck).unwrap();
        let back = load_checkpoint(&dir, 3).unwrap().unwrap();
        assert_eq!(back, ck);
        // other shards are unaffected / absent
        assert!(load_checkpoint(&dir, 4).unwrap().is_none());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_dir_is_first_boot_not_error() {
        let dir = temp_dir("absent");
        assert!(load_checkpoint(&dir, 0).unwrap().is_none());
    }

    #[test]
    fn rewrite_replaces_atomically_and_corruption_is_loud() {
        let dir = temp_dir("rewrite");
        write_checkpoint(&dir, &sample(0)).unwrap();
        let mut newer = sample(0);
        newer.decisions = 9999;
        write_checkpoint(&dir, &newer).unwrap();
        assert_eq!(load_checkpoint(&dir, 0).unwrap().unwrap().decisions, 9999);
        // no stray tmp files left behind
        let stray: Vec<_> = fs::read_dir(&dir)
            .unwrap()
            .filter(|e| {
                e.as_ref()
                    .unwrap()
                    .path()
                    .extension()
                    .is_some_and(|x| x == "tmp")
            })
            .collect();
        assert!(stray.is_empty());

        fs::write(checkpoint_path(&dir, 0), b"{ torn").unwrap();
        assert!(load_checkpoint(&dir, 0).is_err(), "corruption must be loud");
        let _ = fs::remove_dir_all(&dir);
    }
}
