//! # fact-serve — concurrent FACT-guarded decision serving
//!
//! §3 of the paper frames the scale problem with the "Internet Minute":
//! responsible data science has to hold *while decisions are being served*,
//! millions per minute, not only in offline audits. This crate is the
//! serving fabric for that regime, built on `std` alone (threads + mpsc —
//! the build environment has no async runtime):
//!
//! * **Sharding** — [`DecisionService::start`] spins up one worker thread
//!   per shard; requests are routed by key hash so a user's decisions stay
//!   on one shard (and one guard window).
//! * **Admission control** — every shard queue is *bounded*. A full queue
//!   sheds the request immediately with [`ServeError::Busy`] rather than
//!   buffering into latency collapse; callers that wait bound their own
//!   exposure with [`ServeError::Timeout`]. Setting
//!   [`ServeConfig::admission`] layers an *adaptive* bound on top: an
//!   AIMD latency-target controller shrinks the effective capacity when
//!   the rolling p99 exceeds [`AdmissionConfig::target_p99`] and grows it
//!   back when under, while per-tenant token quotas shed a flooding
//!   tenant with [`ServeError::Throttled`] before it can starve anyone
//!   else (see [`admission`]).
//! * **Micro-batching** — workers drain their queue into batches (up to
//!   `batch_max`, lingering `batch_linger` for stragglers) so one
//!   matrix-level [`Classifier::predict_proba`] call amortizes model
//!   overhead across requests.
//! * **Feature sources** — each micro-batch's feature matrix is assembled
//!   by a [`FeatureSource`] (one `fetch_batch` call per batch, ahead of the
//!   model): [`InlineFeatures`] by default, or a remote store —
//!   [`SimulatedRemoteSource`] in the experiments — via
//!   [`DecisionService::start_with_source`], so a fetch round trip is paid
//!   per batch, not per request.
//! * **Feature caching** — setting [`ServeConfig::cache`] wraps the source
//!   in a [`CachedFeatureSource`]: a sharded TTL map with negative caching
//!   (recently failed keys fail fast instead of hammering a dead store)
//!   and single-flight stampede protection (concurrent batches missing on
//!   one key issue one upstream call). Warm entries bridge store outages;
//!   hit/miss/negative-hit/eviction counters land in the metrics and the
//!   final report.
//! * **Streaming guards** — each shard owns a
//!   [`StreamingFairnessMonitor`], an optional [`DriftMonitor`] over the
//!   decision scores, and a [`StreamingDpCounter`] spending a per-shard ε
//!   budget. Alerts are debounced per kind and merged into one channel
//!   ([`DecisionService::drain_alerts`]). A trip engages the
//!   [`DegradePolicy`]: keep serving but flag decisions for audit, or
//!   hard-reject until the cooldown passes — responsibility degrades the
//!   service, never silently disables itself.
//! * **Observability** — a lock-free [`MetricsRegistry`]: relaxed-atomic
//!   counters, power-of-two latency buckets with p50/p95/p99, per-shard
//!   queue depth and shed/timeout counts, rendered as text.
//! * **Graceful shutdown** — [`DecisionService::shutdown`] stops admission,
//!   lets every shard serve what it already accepted, and returns a
//!   [`ServiceReport`] with decisions served, alerts raised, and ε spent.
//!
//! ```
//! use std::sync::Arc;
//! use fact_data::{Matrix, Result};
//! use fact_ml::Classifier;
//! use fact_serve::{DecisionRequest, DecisionService, ServeConfig};
//!
//! struct Threshold;
//! impl Classifier for Threshold {
//!     fn predict_proba(&self, x: &Matrix) -> Result<Vec<f64>> {
//!         Ok((0..x.rows()).map(|i| x.get(i, 0)).collect())
//!     }
//! }
//!
//! let service = DecisionService::start(
//!     Arc::new(Threshold),
//!     ServeConfig { shards: 2, n_features: 1, ..ServeConfig::default() },
//! ).unwrap();
//! let decision = service.decide(DecisionRequest {
//!     features: vec![0.9],
//!     group_b: false,
//!     route_key: 17,
//!     tenant: 0,
//! }).unwrap();
//! assert!(decision.favorable);
//! let report = service.shutdown();
//! assert_eq!(report.decisions_served, 1);
//! ```
//!
//! [`Classifier::predict_proba`]: fact_ml::Classifier::predict_proba
//! [`StreamingFairnessMonitor`]: fact_core::runtime::StreamingFairnessMonitor
//! [`StreamingDpCounter`]: fact_core::runtime::StreamingDpCounter
//! [`DriftMonitor`]: fact_core::drift::DriftMonitor

#![warn(missing_docs)]

pub mod admission;
pub mod archive;
pub mod audit_sink;
pub mod cache;
pub mod checkpoint;
pub mod guards;
pub mod metrics;
pub mod reshard;
pub mod service;
pub mod source;

pub use admission::{AdmissionConfig, AdmissionController, AdmissionDecision};
pub use archive::{
    decode_archive, encode_archive, run_once as archive_run_once, ArchiveConfig, ArchiveManifest,
    ArchivePassReport, ArchiveRecord, ArchiveSnapshot, ArchiveStats, Archiver,
};
pub use audit_sink::{
    read_segment_or_archive, verify_all_segments, verify_segment, AuditEvent, AuditSink,
    AuditSinkConfig, AuditSinkHandle, AuditStorage, FileStorage, MemStorage, RecoveryReport,
    SegmentAudit, SinkReport,
};
pub use cache::{CacheConfig, CachedFeatureSource, Clock, ManualClock, SystemClock};
pub use checkpoint::{
    checkpoint_path, load_checkpoint, write_checkpoint, CheckpointConfig, GuardCheckpoint,
    LedgerEntry,
};
pub use guards::{AlertKind, DegradePolicy, GuardConfig, ServiceAlert};
pub use metrics::{
    AdmissionSnapshot, AdmissionStats, CacheSnapshot, CacheStats, LatencyHistogram,
    MetricsRegistry, MetricsSnapshot, ShardSnapshot, TenantSnapshot,
};
pub use reshard::{
    transform_checkpoints, ReshardConfig, ReshardReport, ReshardableService, TransformReport,
};
pub use service::{
    Decision, DecisionHandle, DecisionRequest, DecisionService, NetShardHandler, RemoteShardReport,
    ServeConfig, ServeError, ServiceReport, ShardReport, ShardSlot,
};
pub use source::{FailingFeatureSource, FeatureSource, InlineFeatures, SimulatedRemoteSource};

#[cfg(test)]
mod tests {
    use super::*;
    use fact_data::{Matrix, Result};
    use fact_ml::Classifier;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;
    use std::time::Duration;

    /// Probability = first feature; optionally stalls per batch so tests
    /// can fill queues deterministically.
    struct StubModel {
        stall: Duration,
        batches: AtomicU64,
    }

    impl StubModel {
        fn instant() -> Self {
            StubModel {
                stall: Duration::ZERO,
                batches: AtomicU64::new(0),
            }
        }

        fn slow(stall: Duration) -> Self {
            StubModel {
                stall,
                batches: AtomicU64::new(0),
            }
        }
    }

    impl Classifier for StubModel {
        fn predict_proba(&self, x: &Matrix) -> Result<Vec<f64>> {
            self.batches.fetch_add(1, Ordering::Relaxed);
            if !self.stall.is_zero() {
                std::thread::sleep(self.stall);
            }
            Ok((0..x.rows()).map(|i| x.get(i, 0).clamp(0.0, 1.0)).collect())
        }
    }

    fn request(p: f64, key: u64) -> DecisionRequest {
        DecisionRequest {
            features: vec![p],
            group_b: key % 2 == 0,
            route_key: key,
            tenant: 0,
        }
    }

    fn base_config() -> ServeConfig {
        ServeConfig {
            shards: 2,
            n_features: 1,
            queue_cap: 64,
            batch_max: 8,
            batch_linger: Duration::from_micros(100),
            default_timeout: Duration::from_secs(5),
            guards: None,
            ..ServeConfig::default()
        }
    }

    #[test]
    fn batching_returns_each_caller_its_own_prediction() {
        let model = Arc::new(StubModel::slow(Duration::from_millis(2)));
        let service = DecisionService::start(
            Arc::clone(&model) as Arc<dyn Classifier + Send + Sync>,
            ServeConfig {
                shards: 1,
                batch_max: 16,
                batch_linger: Duration::from_millis(5),
                ..base_config()
            },
        )
        .unwrap();
        // enqueue k requests with distinct known probabilities, then reap:
        // micro-batching must not permute replies across callers
        let k = 32;
        let handles: Vec<_> = (0..k)
            .map(|i| {
                let p = i as f64 / k as f64;
                (p, service.submit(request(p, i as u64)).unwrap())
            })
            .collect();
        for (p, h) in handles {
            let d = h.wait(Duration::from_secs(10)).unwrap();
            assert!(
                (d.probability - p).abs() < 1e-12,
                "got {} want {p}",
                d.probability
            );
            assert_eq!(d.favorable, p >= 0.5);
            assert_eq!(d.shard, 0);
        }
        let report = service.shutdown();
        assert_eq!(report.decisions_served, k as u64);
        // the slow model forces queue build-up, so batching must have kicked
        // in: far fewer batches than requests
        assert!(
            model.batches.load(Ordering::Relaxed) < k as u64,
            "expected micro-batches, got one call per request"
        );
    }

    #[test]
    fn bounded_queue_sheds_with_busy() {
        // one shard, tiny queue, model stalled long enough that nothing
        // drains while we flood
        let service = DecisionService::start(
            Arc::new(StubModel::slow(Duration::from_millis(200))),
            ServeConfig {
                shards: 1,
                queue_cap: 4,
                batch_max: 1,
                batch_linger: Duration::ZERO,
                ..base_config()
            },
        )
        .unwrap();
        let mut accepted = Vec::new();
        let mut busy = 0;
        for i in 0..64 {
            match service.submit(request(0.5, i)) {
                Ok(h) => accepted.push(h),
                Err(ServeError::Busy { shard }) => {
                    assert_eq!(shard, 0);
                    busy += 1;
                }
                Err(e) => panic!("unexpected error: {e}"),
            }
        }
        assert!(busy > 0, "flooding a capacity-4 queue must shed");
        // capacity + at most a couple in flight
        assert!(accepted.len() <= 8, "accepted {}", accepted.len());
        let snap = service.metrics();
        assert_eq!(snap.shed(), busy);
        // every accepted request is still answered
        for h in accepted {
            h.wait(Duration::from_secs(30)).unwrap();
        }
        service.shutdown();
    }

    #[test]
    fn caller_timeout_is_typed_and_counted() {
        let service = DecisionService::start(
            Arc::new(StubModel::slow(Duration::from_millis(100))),
            ServeConfig {
                shards: 1,
                ..base_config()
            },
        )
        .unwrap();
        let h = service.submit(request(0.5, 1)).unwrap();
        match h.wait(Duration::from_millis(1)) {
            Err(ServeError::Timeout { waited }) => {
                assert_eq!(waited, Duration::from_millis(1))
            }
            other => panic!("expected Timeout, got {other:?}"),
        }
        let snap = service.metrics();
        assert_eq!(snap.shards[0].timeouts, 1);
        let report = service.shutdown();
        // the timed-out request was still served after the caller left
        assert_eq!(report.decisions_served, 1);
        assert_eq!(report.timed_out, 1);
    }

    fn disparity_config(policy: DegradePolicy) -> ServeConfig {
        ServeConfig {
            shards: 1,
            policy,
            trip_cooldown: 10_000,
            guards: Some(GuardConfig {
                fairness_window: 100,
                min_di: 0.8,
                min_samples_per_group: 10,
                dp_interval: 1_000_000, // keep DP quiet for this test
                ..GuardConfig::default()
            }),
            ..base_config()
        }
    }

    /// Group B requests get low scores, group A high: trips the fairness
    /// guard quickly.
    fn run_disparity_traffic(
        service: &DecisionService,
        n: u64,
    ) -> Vec<std::result::Result<Decision, ServeError>> {
        (0..n)
            .map(|i| {
                let group_b = i % 2 == 0;
                let p = if group_b { 0.1 } else { 0.9 };
                service.decide(DecisionRequest {
                    features: vec![p],
                    group_b,
                    route_key: i,
                    tenant: 0,
                })
            })
            .collect()
    }

    #[test]
    fn guard_trip_degrades_to_audit_and_flag() {
        let service = DecisionService::start(
            Arc::new(StubModel::instant()),
            disparity_config(DegradePolicy::AuditAndFlag),
        )
        .unwrap();
        let results = run_disparity_traffic(&service, 400);
        let flagged = results
            .iter()
            .filter(|r| matches!(r, Ok(d) if d.flagged))
            .count();
        assert!(flagged > 0, "sustained disparity must flag decisions");
        assert!(
            results.iter().all(|r| r.is_ok()),
            "audit-and-flag keeps serving"
        );
        let alerts = service.drain_alerts();
        assert!(
            alerts
                .iter()
                .any(|a| a.shard == 0 && matches!(a.alert, Alert::FairnessViolation { .. })),
            "alert channel must carry the violation"
        );
        let report = service.shutdown();
        assert_eq!(report.decisions_served, 400);
        assert!(report.flagged > 0);
        assert!(report.alerts_raised > 0);
        assert_eq!(report.rejected, 0);
    }

    use fact_core::runtime::Alert;

    #[test]
    fn guard_trip_hard_rejects_until_cooldown() {
        let service = DecisionService::start(
            Arc::new(StubModel::instant()),
            disparity_config(DegradePolicy::HardReject),
        )
        .unwrap();
        let results = run_disparity_traffic(&service, 400);
        let rejected = results
            .iter()
            .filter(|r| matches!(r, Err(ServeError::Rejected { .. })))
            .count();
        assert!(rejected > 0, "hard-reject must refuse after the trip");
        // requests before the trip were served normally
        assert!(matches!(&results[0], Ok(d) if !d.flagged));
        let report = service.shutdown();
        assert_eq!(report.rejected, rejected as u64);
        assert_eq!(
            report.decisions_served, 400,
            "rejections are still decisions served"
        );
    }

    #[test]
    fn shutdown_drains_every_accepted_request() {
        let service = DecisionService::start(
            Arc::new(StubModel::slow(Duration::from_millis(1))),
            ServeConfig {
                shards: 2,
                queue_cap: 128,
                batch_max: 4,
                ..base_config()
            },
        )
        .unwrap();
        let handles: Vec<_> = (0..100)
            .filter_map(|i| service.submit(request(0.7, i)).ok())
            .collect();
        let accepted = handles.len() as u64;
        assert!(accepted > 0);
        // shut down from a clone while requests are still queued
        let report = service.clone().shutdown();
        assert_eq!(
            report.decisions_served, accepted,
            "drain must answer everything"
        );
        for h in handles {
            assert!(h.wait(Duration::from_secs(1)).is_ok());
        }
        // post-shutdown submissions are refused, and shutdown is idempotent
        assert!(matches!(
            service.submit(request(0.5, 0)),
            Err(ServeError::ShuttingDown)
        ));
        let again = service.shutdown();
        assert_eq!(again.decisions_served, accepted);
    }

    #[test]
    fn epsilon_is_accounted_in_the_report() {
        let service = DecisionService::start(
            Arc::new(StubModel::instant()),
            ServeConfig {
                shards: 1,
                policy: DegradePolicy::Off,
                guards: Some(GuardConfig {
                    dp_interval: 50,
                    epsilon_per_release: 0.01,
                    epsilon_budget: 1.0,
                    ..GuardConfig::default()
                }),
                ..base_config()
            },
        )
        .unwrap();
        for i in 0..500 {
            service.decide(request(0.5, i)).unwrap();
        }
        let snap = service.metrics();
        let report = service.shutdown();
        // 500 decisions at one release per 50 → 10 releases of ε=0.01
        assert!(
            (report.epsilon_spent - 0.10).abs() < 1e-9,
            "{}",
            report.epsilon_spent
        );
        assert!((snap.epsilon_spent - report.epsilon_spent).abs() < 1e-9);
        let text = report.render_text();
        assert!(text.contains("eps_spent=0.1000"), "{text}");
    }

    #[test]
    fn config_validation() {
        let model: Arc<dyn Classifier + Send + Sync> = Arc::new(StubModel::instant());
        for bad in [
            ServeConfig {
                shards: 0,
                ..base_config()
            },
            ServeConfig {
                queue_cap: 0,
                ..base_config()
            },
            ServeConfig {
                batch_max: 0,
                ..base_config()
            },
            ServeConfig {
                n_features: 0,
                ..base_config()
            },
            ServeConfig {
                threshold: 1.5,
                ..base_config()
            },
        ] {
            assert!(matches!(
                DecisionService::start(Arc::clone(&model), bad),
                Err(ServeError::BadRequest(_))
            ));
        }
        let service = DecisionService::start(model, base_config()).unwrap();
        assert!(matches!(
            service.submit(DecisionRequest {
                features: vec![0.1, 0.2],
                group_b: false,
                route_key: 0,
                tenant: 0,
            }),
            Err(ServeError::BadRequest(_))
        ));
        service.shutdown();
    }

    #[test]
    fn custom_feature_source_feeds_the_model() {
        /// Ignores the inline features and serves `route_key / 100`.
        struct KeyedSource {
            fetches: AtomicU64,
        }
        impl FeatureSource for KeyedSource {
            fn fetch_batch(&self, keys: &[u64], _inline: &[Vec<f64>]) -> Result<Matrix> {
                self.fetches.fetch_add(1, Ordering::Relaxed);
                let rows: Vec<Vec<f64>> = keys.iter().map(|&k| vec![k as f64 / 100.0]).collect();
                Matrix::from_rows(&rows)
            }
        }
        let source = Arc::new(KeyedSource {
            fetches: AtomicU64::new(0),
        });
        let service = DecisionService::start_with_source(
            Arc::new(StubModel::instant()),
            ServeConfig {
                shards: 1,
                ..base_config()
            },
            Arc::clone(&source) as Arc<dyn FeatureSource>,
        )
        .unwrap();
        // inline feature says 0.9, but the source must win with key/100
        let d = service
            .decide(DecisionRequest {
                features: vec![0.9],
                group_b: false,
                route_key: 20,
                tenant: 0,
            })
            .unwrap();
        assert!((d.probability - 0.2).abs() < 1e-12, "{}", d.probability);
        assert!(!d.favorable);
        assert!(source.fetches.load(Ordering::Relaxed) >= 1);
        service.shutdown();
    }

    #[test]
    fn try_wait_polls_none_then_decision_then_disconnected() {
        use std::time::Instant;
        let service = DecisionService::start(
            Arc::new(StubModel::slow(Duration::from_millis(50))),
            ServeConfig {
                shards: 1,
                ..base_config()
            },
        )
        .unwrap();
        let h = service.submit(request(0.9, 1)).unwrap();
        // in flight: polling must neither block nor consume anything
        assert!(h.try_wait().is_none());
        let deadline = Instant::now() + Duration::from_secs(10);
        let d = loop {
            match h.try_wait() {
                Some(Ok(d)) => break d,
                Some(Err(e)) => panic!("unexpected error: {e}"),
                None => {
                    assert!(Instant::now() < deadline, "decision never arrived");
                    std::thread::sleep(Duration::from_millis(1));
                }
            }
        };
        assert!(d.favorable);
        // the reply channel is one-shot: once the decision is consumed the
        // worker's sender is gone and further polls say so
        assert!(matches!(h.try_wait(), Some(Err(ServeError::ShuttingDown))));
        service.shutdown();
    }

    #[test]
    fn concurrent_submit_and_shutdown_never_loses_an_accepted_request() {
        // submit from one thread while another shuts down: every accepted
        // request must resolve to a decision (no hangs, no dropped reply
        // channels), everything after the cut must be refused as
        // ShuttingDown, and the report must account exactly the accepted.
        let service = DecisionService::start(
            Arc::new(StubModel::slow(Duration::from_millis(1))),
            ServeConfig {
                shards: 2,
                queue_cap: 256,
                batch_max: 8,
                ..base_config()
            },
        )
        .unwrap();
        let svc = service.clone();
        let submitter = std::thread::spawn(move || {
            let mut handles = Vec::new();
            let mut refused = 0u64;
            for i in 0..2_000u64 {
                match svc.submit(request(0.6, i)) {
                    Ok(h) => handles.push(h),
                    Err(ServeError::ShuttingDown) | Err(ServeError::Busy { .. }) => refused += 1,
                    Err(e) => panic!("unexpected submit error: {e}"),
                }
            }
            (handles, refused)
        });
        std::thread::sleep(Duration::from_millis(5));
        let report = service.shutdown();
        let (handles, _refused) = submitter.join().unwrap();
        let accepted = handles.len() as u64;
        for h in handles {
            assert!(
                h.wait(Duration::from_secs(10)).is_ok(),
                "an accepted request was never answered"
            );
        }
        assert_eq!(report.decisions_served, accepted);
        // the cut is clean: after shutdown returned, submission is refused
        assert!(matches!(
            service.submit(request(0.5, 0)),
            Err(ServeError::ShuttingDown)
        ));
    }

    #[test]
    fn audited_service_persists_flagged_decisions_across_restart() {
        use fact_transparency::{verify_chain_from, ChainHead};
        let storage = MemStorage::new();
        // first run: disparity traffic trips the guard, flags get audited
        let service = DecisionService::start_with_audit_storage(
            Arc::new(StubModel::instant()),
            disparity_config(DegradePolicy::AuditAndFlag),
            Arc::new(InlineFeatures),
            Box::new(storage.clone()),
        )
        .unwrap();
        assert_eq!(service.audit_recovery().unwrap().recovered, 0);
        run_disparity_traffic(&service, 400);
        let report = service.shutdown();
        assert!(report.flagged > 0);
        // sink_start + sink_stop + every flag + forwarded alerts
        assert!(report.audited >= report.flagged + 2, "{report:?}");
        assert_eq!(report.lost_on_recovery, 0);
        let first_run_entries = audit_sink::parse_log(&storage.log_bytes()).len() as u64;
        assert_eq!(first_run_entries, report.audited);

        // second run over the same storage: recovery sees the intact chain
        // and appends with prev_hash continuity across the restart
        let service = DecisionService::start_with_audit_storage(
            Arc::new(StubModel::instant()),
            disparity_config(DegradePolicy::AuditAndFlag),
            Arc::new(InlineFeatures),
            Box::new(storage.clone()),
        )
        .unwrap();
        let rec = service.audit_recovery().unwrap();
        assert_eq!(rec.recovered, first_run_entries);
        assert_eq!(rec.lost, 0);
        run_disparity_traffic(&service, 400);
        let report2 = service.shutdown();
        assert!(report2.flagged > 0);
        let entries = audit_sink::parse_log(&storage.log_bytes());
        assert_eq!(
            entries.len() as u64,
            report.audited + report2.audited,
            "both runs must share one log"
        );
        assert_eq!(
            verify_chain_from(ChainHead::genesis(), &entries),
            None,
            "the chain must verify across the restart boundary"
        );
        let text = report2.render_text();
        assert!(text.contains("audited="), "{text}");
    }

    #[test]
    fn serve_config_cache_wires_counters_into_metrics_and_report() {
        /// Key-deterministic source (required for caching to be sound):
        /// probability = (route_key % 100) / 100.
        struct KeyedSource {
            fetches: AtomicU64,
        }
        impl FeatureSource for KeyedSource {
            fn fetch_batch(&self, keys: &[u64], _inline: &[Vec<f64>]) -> Result<Matrix> {
                self.fetches.fetch_add(1, Ordering::Relaxed);
                let rows: Vec<Vec<f64>> = keys
                    .iter()
                    .map(|&k| vec![(k % 100) as f64 / 100.0])
                    .collect();
                Matrix::from_rows(&rows)
            }
        }
        let source = Arc::new(KeyedSource {
            fetches: AtomicU64::new(0),
        });
        let service = DecisionService::start_with_source(
            Arc::new(StubModel::instant()),
            ServeConfig {
                shards: 1,
                cache: Some(CacheConfig::default()),
                ..base_config()
            },
            Arc::clone(&source) as Arc<dyn FeatureSource>,
        )
        .unwrap();
        // the same 8 users decide 50 times each: after the cold pass every
        // fetch is a cache hit and the upstream is never called again
        for round in 0..50 {
            for user in 0..8u64 {
                let d = service.decide(request(0.9, user)).unwrap();
                assert!(
                    (d.probability - (user % 100) as f64 / 100.0).abs() < 1e-12,
                    "round {round}: cached row must equal the source's row"
                );
            }
        }
        let snap = service.metrics();
        assert_eq!(snap.cache.misses, 8);
        assert!(snap.cache.hits >= 8 * 49, "hits={}", snap.cache.hits);
        assert!(snap.cache.hit_rate() > 0.9);
        let upstream_calls = source.fetches.load(Ordering::Relaxed);
        assert!(upstream_calls <= 8, "upstream saw {upstream_calls} calls");
        let report = service.shutdown();
        assert_eq!(report.cache.misses, 8);
        assert_eq!(report.cache.hits, snap.cache.hits);
        let text = report.render_text();
        assert!(text.contains("cache hits="), "{text}");
    }

    #[test]
    fn invalidate_features_forces_a_refetch_and_counts_stale_drops() {
        struct KeyedSource {
            fetches: AtomicU64,
        }
        impl FeatureSource for KeyedSource {
            fn fetch_batch(&self, keys: &[u64], _inline: &[Vec<f64>]) -> Result<Matrix> {
                self.fetches.fetch_add(1, Ordering::Relaxed);
                let rows: Vec<Vec<f64>> = keys
                    .iter()
                    .map(|&k| vec![(k % 100) as f64 / 100.0])
                    .collect();
                Matrix::from_rows(&rows)
            }
        }
        let source = Arc::new(KeyedSource {
            fetches: AtomicU64::new(0),
        });
        let service = DecisionService::start_with_source(
            Arc::new(StubModel::instant()),
            ServeConfig {
                shards: 1,
                cache: Some(CacheConfig::default()),
                ..base_config()
            },
            Arc::clone(&source) as Arc<dyn FeatureSource>,
        )
        .unwrap();
        for user in 0..4u64 {
            service.decide(request(0.9, user)).unwrap();
            service.decide(request(0.9, user)).unwrap();
        }
        let warm_fetches = source.fetches.load(Ordering::Relaxed);
        assert!(service.metrics().cache.hits >= 4, "cache is warm");

        // the rollout hook: every cached row is stale from here on
        assert!(service.invalidate_features(), "a cache is configured");
        for user in 0..4u64 {
            service.decide(request(0.9, user)).unwrap();
        }
        assert!(
            source.fetches.load(Ordering::Relaxed) > warm_fetches,
            "post-invalidation decisions must refetch upstream"
        );
        let report = service.shutdown();
        assert_eq!(report.cache.invalidated, 4, "{:?}", report.cache);

        // without a cache the hook reports there was nothing to invalidate
        let plain = DecisionService::start(Arc::new(StubModel::instant()), base_config()).unwrap();
        assert!(!plain.invalidate_features());
        plain.shutdown();
    }

    #[test]
    fn invalid_cache_config_is_rejected() {
        let model: Arc<dyn Classifier + Send + Sync> = Arc::new(StubModel::instant());
        for bad in [
            CacheConfig {
                stripes: 0,
                ..CacheConfig::default()
            },
            CacheConfig {
                capacity_per_stripe: 0,
                ..CacheConfig::default()
            },
        ] {
            assert!(matches!(
                DecisionService::start(
                    Arc::clone(&model),
                    ServeConfig {
                        cache: Some(bad),
                        ..base_config()
                    },
                ),
                Err(ServeError::BadRequest(_))
            ));
        }
    }

    #[test]
    fn route_key_is_sticky() {
        let service = DecisionService::start(
            Arc::new(StubModel::instant()),
            ServeConfig {
                shards: 4,
                ..base_config()
            },
        )
        .unwrap();
        let a = service.decide(request(0.5, 42)).unwrap().shard;
        for _ in 0..10 {
            assert_eq!(service.decide(request(0.5, 42)).unwrap().shard, a);
        }
        service.shutdown();
    }
}
