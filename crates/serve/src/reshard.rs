//! Live resharding: take a running decision service from N to M shards
//! without dropping requests.
//!
//! Changing the shard count of a [`DecisionService`] is not just a restart
//! with a different number: each shard carries *guard state* — a fairness
//! window, an ε ledger, DP counters — whose evidence must survive the
//! topology change or the guards silently forget what they were watching.
//! A [`ReshardableService`] wraps a service in a two-phase gate and, on
//! [`reshard`](ReshardableService::reshard):
//!
//! 1. **Drain** — closes the gate (new submits park), shuts the old
//!    service down cleanly (every accepted request is answered, every
//!    shard writes its final [`GuardCheckpoint`] sidecar).
//! 2. **Transform** — [`transform_checkpoints`] merges the N fairness
//!    windows into one fleet window ([`WindowSummary::merge_all`]), splits
//!    it into M successors ([`WindowSummary::split`]), deals the ε-ledger
//!    entries round-robin across the successors (refusing loudly if any
//!    successor's replayed spend would exceed its budget), and rewrites
//!    the sidecar files — deleting stale ones when shrinking.
//! 3. **Restart** — starts a fresh service with M shards against the same
//!    checkpoint directory and audit sink; each new shard restores from
//!    its transformed sidecar, and the audit sink's recovery pass
//!    continues the existing hash chain, so the audit log stays
//!    continuous across the cutover.
//! 4. **Replay** — reopens the gate; parked submits resume into the new
//!    topology. Only submits still parked past the bounded hold window
//!    ([`ReshardConfig::hold_max`]) see [`ServeError::Resharding`] — a
//!    retryable refusal, never a silent drop.
//!
//! The routing hash is unchanged — requests simply take `key % M` instead
//! of `key % N` — so no routing table crosses the wire. What the transform
//! guarantees is **conservation**: the summed window counts after the
//! split are cell-for-cell equal to the summed counts before the merge
//! (both are reported in the [`ReshardReport`] so callers can assert it),
//! every ledger entry lands in exactly one successor, and lifetime
//! decision counts sum-then-split exactly.
//!
//! Resharding requires `guards` and `checkpoint` to be configured — the
//! sidecars *are* the portable form of the guard state. A reshard attempt
//! without them fails with a typed error before touching the service.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use fact_fairness::{SegmentCounts, WindowSummary};
use fact_ml::Classifier;

use crate::checkpoint::{
    checkpoint_path, load_checkpoint, write_checkpoint, GuardCheckpoint, LedgerEntry,
};
use crate::metrics::MetricsSnapshot;
use crate::service::{
    DecisionHandle, DecisionRequest, DecisionService, ServeConfig, ServeError, ServiceReport,
};
use crate::source::{FeatureSource, InlineFeatures};

/// Tuning for the cutover gate.
#[derive(Debug, Clone)]
pub struct ReshardConfig {
    /// Longest a submit will park waiting for a cutover to finish before
    /// being refused with [`ServeError::Resharding`]. The bound is what
    /// keeps the gate from becoming an unbounded buffer: past it, callers
    /// get a typed, retryable refusal instead of latency collapse.
    pub hold_max: Duration,
}

impl Default for ReshardConfig {
    fn default() -> Self {
        ReshardConfig {
            hold_max: Duration::from_secs(5),
        }
    }
}

/// What one completed reshard did, with enough numbers to *prove* nothing
/// was lost in the transform.
#[derive(Debug, Clone)]
pub struct ReshardReport {
    /// Shard count before the cutover.
    pub from: usize,
    /// Shard count after the cutover.
    pub to: usize,
    /// Fairness-window counts summed over every pre-cutover sidecar.
    /// Conservation means this equals [`post_counts`](Self::post_counts)
    /// cell for cell.
    pub pre_counts: SegmentCounts,
    /// Fairness-window counts summed over every post-transform sidecar.
    pub post_counts: SegmentCounts,
    /// Lifetime decision counts summed over the pre-cutover sidecars.
    pub pre_decisions: u64,
    /// Lifetime decision counts summed over the post-transform sidecars;
    /// equals [`pre_decisions`](Self::pre_decisions).
    pub post_decisions: u64,
    /// ε-ledger entries redistributed across the successors.
    pub ledger_entries: u64,
    /// Submits that parked at the gate during this cutover and were
    /// replayed into the new topology (tail past the hold window is
    /// refused, not counted here).
    pub held: u64,
    /// How long the gate stayed closed.
    pub cutover: Duration,
    /// The drained epoch's final accounting (the old service's
    /// [`ServiceReport`]).
    pub epoch: ServiceReport,
}

/// What [`transform_checkpoints`] conserved, for callers that run the
/// transform directly (e.g. offline, between process generations).
#[derive(Debug, Clone)]
pub struct TransformReport {
    /// Summed window counts before the merge.
    pub pre_counts: SegmentCounts,
    /// Summed window counts after the split; equals `pre_counts`.
    pub post_counts: SegmentCounts,
    /// Summed lifetime decisions before.
    pub pre_decisions: u64,
    /// Summed lifetime decisions after; equals `pre_decisions`.
    pub post_decisions: u64,
    /// ε-ledger entries redistributed.
    pub ledger_entries: u64,
}

/// The gate's phase. `Cutover` is the only state in which submits park.
enum Phase {
    /// Normal operation: submits flow straight through to the service.
    Serving(DecisionService),
    /// A reshard is between drain and restart; submits park on the
    /// condvar up to `hold_max`.
    Cutover,
    /// [`ReshardableService::shutdown`] ran; submits fail with
    /// [`ServeError::ShuttingDown`].
    Stopped,
}

struct State {
    phase: Phase,
    /// The live configuration; `shards` tracks the current epoch's count.
    config: ServeConfig,
    /// Final reports of every drained epoch, oldest first. The last
    /// epoch's report is appended by [`ReshardableService::shutdown`].
    epochs: Vec<ServiceReport>,
}

struct ReshardInner {
    state: Mutex<State>,
    gate: Condvar,
    model: Arc<dyn Classifier + Send + Sync>,
    source: Arc<dyn FeatureSource>,
    hold_max: Duration,
    /// Lifetime count of submits that parked at the gate and were
    /// successfully replayed.
    held_replayed: AtomicU64,
}

/// A [`DecisionService`] that can change its shard count while serving.
///
/// Cheaply cloneable like the service it wraps; all clones share the gate.
/// See the [module docs](self) for the cutover protocol.
#[derive(Clone)]
pub struct ReshardableService {
    inner: Arc<ReshardInner>,
}

impl ReshardableService {
    /// Start a reshardable service with features taken inline from each
    /// request.
    pub fn start(
        model: Arc<dyn Classifier + Send + Sync>,
        config: ServeConfig,
        reshard: ReshardConfig,
    ) -> Result<Self, ServeError> {
        Self::start_with_source(model, config, Arc::new(InlineFeatures), reshard)
    }

    /// Start a reshardable service around an explicit [`FeatureSource`].
    pub fn start_with_source(
        model: Arc<dyn Classifier + Send + Sync>,
        config: ServeConfig,
        source: Arc<dyn FeatureSource>,
        reshard: ReshardConfig,
    ) -> Result<Self, ServeError> {
        let service = DecisionService::start_with_source(
            Arc::clone(&model),
            config.clone(),
            Arc::clone(&source),
        )?;
        Ok(ReshardableService {
            inner: Arc::new(ReshardInner {
                state: Mutex::new(State {
                    phase: Phase::Serving(service),
                    config,
                    epochs: Vec::new(),
                }),
                gate: Condvar::new(),
                model,
                source,
                hold_max: reshard.hold_max,
                held_replayed: AtomicU64::new(0),
            }),
        })
    }

    /// Submit one request through the gate.
    ///
    /// During normal operation this is a lock acquisition and an Arc clone
    /// on top of [`DecisionService::submit`]. During a cutover the call
    /// parks up to [`ReshardConfig::hold_max`], then either replays into
    /// the new topology or returns [`ServeError::Resharding`]. A submit
    /// that races the drain (accepted the old service handle just as it
    /// began shutting down) re-enters the gate instead of surfacing the
    /// internal `ShuttingDown` — callers never see a drop caused by the
    /// cutover itself.
    pub fn submit(&self, request: DecisionRequest) -> Result<DecisionHandle, ServeError> {
        let deadline = Instant::now() + self.inner.hold_max;
        let mut parked = false;
        let mut guard = self.inner.state.lock().expect("reshard state poisoned");
        loop {
            match &guard.phase {
                Phase::Stopped => return Err(ServeError::ShuttingDown),
                Phase::Cutover => {
                    let now = Instant::now();
                    if now >= deadline {
                        return Err(ServeError::Resharding);
                    }
                    parked = true;
                    guard = self
                        .inner
                        .gate
                        .wait_timeout(guard, deadline - now)
                        .expect("reshard state poisoned")
                        .0;
                }
                Phase::Serving(service) => {
                    let service = service.clone();
                    drop(guard);
                    match service.submit(request.clone()) {
                        // Lost the race with a cutover's drain: the gate
                        // will flip to Cutover (or already has); park and
                        // replay rather than reporting a phantom shutdown.
                        Err(ServeError::ShuttingDown) => {
                            parked = true;
                            guard = self.inner.state.lock().expect("reshard state poisoned");
                        }
                        other => {
                            if parked && other.is_ok() {
                                self.inner.held_replayed.fetch_add(1, Ordering::Relaxed);
                            }
                            return other;
                        }
                    }
                }
            }
        }
    }

    /// Submit and wait, using the service's default timeout on top of any
    /// gate hold.
    pub fn decide(&self, request: DecisionRequest) -> Result<crate::service::Decision, ServeError> {
        let timeout = {
            let guard = self.inner.state.lock().expect("reshard state poisoned");
            guard.config.default_timeout
        };
        self.submit(request)?.wait(timeout)
    }

    /// Change the shard count from the current `N` to `to`, conserving
    /// guard state. See the [module docs](self) for the protocol; returns
    /// a [`ReshardReport`] whose pre/post counts prove conservation.
    ///
    /// Requires `guards` and `checkpoint` in the configuration. Fails
    /// without touching the running service if they are absent or if
    /// `to == 0`. If the checkpoint transform itself refuses — e.g.
    /// shrinking would replay more ε into a successor than its budget
    /// allows (the ledger is conserved, never truncated) — the service
    /// **rolls back**: the refused transform wrote nothing, so the
    /// worker restarts on the untouched sidecars and keeps serving at
    /// the old shard count while the error is surfaced to the caller.
    pub fn reshard(&self, to: usize) -> Result<ReshardReport, ServeError> {
        if to == 0 {
            return Err(ServeError::BadRequest("cannot reshard to 0 shards".into()));
        }
        // Close the gate: take the serving phase, leaving Cutover. If
        // another reshard is mid-cutover, wait behind it.
        let (old, config) = {
            let mut guard = self.inner.state.lock().expect("reshard state poisoned");
            loop {
                match &guard.phase {
                    Phase::Stopped => return Err(ServeError::ShuttingDown),
                    Phase::Cutover => {
                        guard = self.inner.gate.wait(guard).expect("reshard state poisoned");
                    }
                    Phase::Serving(_) => break,
                }
            }
            let config = guard.config.clone();
            if config.guards.is_none() || config.checkpoint.is_none() {
                return Err(ServeError::BadRequest(
                    "resharding requires guards and checkpoint in the config \
                     (the sidecars carry the guard state across the cutover)"
                        .into(),
                ));
            }
            if config.topology.is_some() {
                return Err(ServeError::BadRequest(
                    "resharding a mixed local/remote topology is not supported; \
                     reshard each worker process and re-dial the topology instead"
                        .into(),
                ));
            }
            match std::mem::replace(&mut guard.phase, Phase::Cutover) {
                Phase::Serving(service) => (service, config),
                _ => unreachable!("phase checked Serving under the same lock"),
            }
        };

        let started = Instant::now();
        let held_before = self.inner.held_replayed.load(Ordering::Relaxed);
        let from = config.shards;

        // Drain: every accepted request is answered and every shard
        // writes its final sidecar before shutdown() returns.
        let epoch = old.shutdown();

        // Transform + restart. Any failure past this point must not leave
        // the gate closed forever: mark Stopped (loud, typed) and wake the
        // parked submits so they fail fast instead of timing out.
        let result = (|| {
            let ck_dir = config
                .checkpoint
                .as_ref()
                .expect("checked above")
                .dir
                .clone();
            let transform = transform_checkpoints(&ck_dir, from, to)?;
            let mut next = config.clone();
            next.shards = to;
            let service = DecisionService::start_with_source(
                Arc::clone(&self.inner.model),
                next.clone(),
                Arc::clone(&self.inner.source),
            )?;
            Ok::<_, ServeError>((transform, next, service))
        })();

        let mut guard = self.inner.state.lock().expect("reshard state poisoned");
        match result {
            Ok((transform, next, service)) => {
                guard.phase = Phase::Serving(service);
                guard.config = next;
                guard.epochs.push(epoch.clone());
                self.inner.gate.notify_all();
                drop(guard);
                let held = self
                    .inner
                    .held_replayed
                    .load(Ordering::Relaxed)
                    .saturating_sub(held_before);
                Ok(ReshardReport {
                    from,
                    to,
                    pre_counts: transform.pre_counts,
                    post_counts: transform.post_counts,
                    pre_decisions: transform.pre_decisions,
                    post_decisions: transform.post_decisions,
                    ledger_entries: transform.ledger_entries,
                    held,
                    cutover: started.elapsed(),
                    epoch,
                })
            }
            Err(e) => {
                // A refused transform wrote nothing, so the drained
                // epoch's sidecars still hold the N-shard state exactly:
                // roll back by restarting on them. Only if even that
                // fails does the gate stop (loud, typed) rather than
                // serving with unknown guard state.
                drop(guard);
                let rollback = DecisionService::start_with_source(
                    Arc::clone(&self.inner.model),
                    config,
                    Arc::clone(&self.inner.source),
                );
                let mut guard = self.inner.state.lock().expect("reshard state poisoned");
                match rollback {
                    Ok(service) => guard.phase = Phase::Serving(service),
                    Err(_) => guard.phase = Phase::Stopped,
                }
                guard.epochs.push(epoch);
                self.inner.gate.notify_all();
                Err(e)
            }
        }
    }

    /// Ask the current epoch's shards to checkpoint after their next batch.
    pub fn request_checkpoint(&self) {
        let guard = self.inner.state.lock().expect("reshard state poisoned");
        if let Phase::Serving(service) = &guard.phase {
            service.request_checkpoint();
        }
    }

    /// Current shard count (the target count once a cutover completes).
    pub fn shards(&self) -> usize {
        self.inner
            .state
            .lock()
            .expect("reshard state poisoned")
            .config
            .shards
    }

    /// Metrics snapshot of the current epoch's service; `None` mid-cutover
    /// or after shutdown.
    pub fn metrics(&self) -> Option<MetricsSnapshot> {
        let guard = self.inner.state.lock().expect("reshard state poisoned");
        match &guard.phase {
            Phase::Serving(service) => Some(service.metrics()),
            _ => None,
        }
    }

    /// Lifetime count of submits that parked at the cutover gate and were
    /// replayed into a new topology.
    pub fn held_replayed(&self) -> u64 {
        self.inner.held_replayed.load(Ordering::Relaxed)
    }

    /// Stop serving: drains the current epoch and returns every epoch's
    /// final report, oldest first (one per topology the service ran).
    /// Waits for an in-flight cutover to finish first. Idempotent — a
    /// second call returns the same accumulated reports.
    pub fn shutdown(&self) -> Vec<ServiceReport> {
        let service = {
            let mut guard = self.inner.state.lock().expect("reshard state poisoned");
            while let Phase::Cutover = &guard.phase {
                guard = self.inner.gate.wait(guard).expect("reshard state poisoned");
            }
            match std::mem::replace(&mut guard.phase, Phase::Stopped) {
                Phase::Serving(service) => Some(service),
                _ => None,
            }
        };
        if let Some(service) = service {
            let report = service.shutdown();
            let mut guard = self.inner.state.lock().expect("reshard state poisoned");
            guard.epochs.push(report);
            self.inner.gate.notify_all();
        }
        self.inner
            .state
            .lock()
            .expect("reshard state poisoned")
            .epochs
            .clone()
    }
}

/// Rewrite the `shard-N.json` sidecars under `dir` from `from` shards to
/// `to` shards, conserving every count. This is the pure state transform
/// behind [`ReshardableService::reshard`]; it can also run offline between
/// process generations (drain the old fleet, transform, start the new one).
///
/// * Fairness windows are folded with [`WindowSummary::merge_all`] and
///   fanned out with [`WindowSummary::split`]; the summed segment counts
///   are bit-equal before and after (both are returned).
/// * ε-ledger entries are dealt round-robin (entry *j* → successor
///   `j % to`), so every recorded expenditure is replayed exactly once.
///   If any successor's total ε would exceed the checkpointed budget, the
///   transform fails **before writing anything** — conservation over
///   silent loss.
/// * Lifetime decision and DP-pending counts sum-then-split with the
///   remainder dealt to the first successors; `dp_exhausted` is OR-folded
///   (an exhausted budget anywhere stays exhausted everywhere).
/// * When shrinking, stale `shard-j.json` files for `j >= to` are removed
///   so a later grow cannot resurrect pre-transform state.
///
/// Sidecars may be missing (a shard that never served still drains
/// cleanly); at least one must exist or there is nothing to transform.
pub fn transform_checkpoints(
    dir: &std::path::Path,
    from: usize,
    to: usize,
) -> Result<TransformReport, ServeError> {
    if from == 0 || to == 0 {
        return Err(ServeError::BadRequest(
            "transform needs from > 0 and to > 0".into(),
        ));
    }
    let mut checkpoints: Vec<GuardCheckpoint> = Vec::new();
    for shard in 0..from {
        match load_checkpoint(dir, shard) {
            Ok(Some(ck)) => checkpoints.push(ck),
            Ok(None) => {}
            Err(e) => {
                return Err(ServeError::Internal(format!(
                    "sidecar for shard {shard} is unreadable: {e}"
                )))
            }
        }
    }
    let Some(first) = checkpoints.first() else {
        return Err(ServeError::Internal(format!(
            "no sidecars found under {} — nothing to transform",
            dir.display()
        )));
    };
    let budget_epsilon = first.budget_epsilon;
    let budget_delta = first.budget_delta;

    // Fold the windows and account for what went in.
    let mut pre_counts: SegmentCounts = [[0; 2]; 2];
    let mut pre_decisions = 0u64;
    let mut dp_pending_total = 0u64;
    let mut dp_exhausted = false;
    for ck in &checkpoints {
        let c = ck.window.counts();
        for g in 0..2 {
            for f in 0..2 {
                pre_counts[g][f] += c[g][f];
            }
        }
        pre_decisions += ck.decisions;
        dp_pending_total += ck.dp_pending;
        dp_exhausted |= ck.dp_exhausted;
    }
    let merged = WindowSummary::merge_all(checkpoints.iter().map(|ck| &ck.window))
        .map_err(|e| ServeError::Internal(format!("window merge failed: {e}")))?
        .expect("at least one checkpoint present");
    let parts = merged
        .split(to)
        .map_err(|e| ServeError::Internal(format!("window split failed: {e}")))?;

    // Deal the ledgers round-robin, preserving shard order, and check each
    // successor against the budget before anything is written.
    let mut ledgers: Vec<Vec<LedgerEntry>> = vec![Vec::new(); to];
    let mut ledger_entries = 0u64;
    for ck in &checkpoints {
        for entry in &ck.ledger {
            ledgers[(ledger_entries as usize) % to].push(entry.clone());
            ledger_entries += 1;
        }
    }
    for (i, ledger) in ledgers.iter().enumerate() {
        let eps: f64 = ledger.iter().map(|e| e.epsilon).sum();
        if eps > budget_epsilon {
            return Err(ServeError::BadRequest(format!(
                "reshard to {to} shards would replay ε={eps:.4} into successor {i}, \
                 over its budget {budget_epsilon:.4}; the ledger is conserved, not \
                 truncated — reshard to more shards or raise the budget"
            )));
        }
    }

    // Sum-then-split the scalar counters, remainder to the first parts.
    let split_scalar = |total: u64| -> Vec<u64> {
        let base = total / to as u64;
        let extra = (total % to as u64) as usize;
        (0..to).map(|i| base + u64::from(i < extra)).collect()
    };
    let decisions_parts = split_scalar(pre_decisions);
    let dp_pending_parts = split_scalar(dp_pending_total);

    let mut post_counts: SegmentCounts = [[0; 2]; 2];
    let mut post_decisions = 0u64;
    for (i, window) in parts.iter().enumerate() {
        let c = window.counts();
        for g in 0..2 {
            for f in 0..2 {
                post_counts[g][f] += c[g][f];
            }
        }
        post_decisions += decisions_parts[i];
        let ck = GuardCheckpoint {
            shard: i as u64,
            decisions: decisions_parts[i],
            window: window.clone(),
            ledger: std::mem::take(&mut ledgers[i]),
            budget_epsilon,
            budget_delta,
            dp_pending: dp_pending_parts[i],
            dp_exhausted,
        };
        write_checkpoint(dir, &ck)
            .map_err(|e| ServeError::Internal(format!("writing sidecar {i}: {e}")))?;
    }
    for stale in to..from {
        let path = checkpoint_path(dir, stale);
        if path.exists() {
            std::fs::remove_file(&path).map_err(|e| {
                ServeError::Internal(format!("removing stale sidecar {stale}: {e}"))
            })?;
        }
    }
    Ok(TransformReport {
        pre_counts,
        post_counts,
        pre_decisions,
        post_decisions,
        ledger_entries,
    })
}
