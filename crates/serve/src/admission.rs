//! Adaptive admission control: a latency-target capacity controller plus
//! per-tenant token quotas.
//!
//! The static `queue_cap` bound sheds only when a shard's channel is
//! *full* — by which point every queued request is already doomed to a
//! latency of `depth × service_time`. Under sustained overload that is
//! exactly the wrong shape: the queue pins at its cap and p99 collapses
//! to the worst tolerable value instead of the target one. The
//! [`AdmissionController`] layered here fixes both failure modes the
//! ROADMAP names:
//!
//! * **Latency**: an AIMD control loop watches a rolling window of served
//!   latencies. Each tick, if the window p99 exceeds
//!   [`AdmissionConfig::target_p99`] the *effective* capacity shrinks
//!   multiplicatively (`cap × decrease`); if under (or the window is
//!   idle) it grows additively (`cap + increase`), clamped to
//!   `[floor, queue_cap]`. Requests arriving when the shard's depth
//!   gauge has reached the effective capacity shed as
//!   [`Busy`](crate::ServeError::Busy) — the queue is kept short enough
//!   that what *is* admitted meets the target.
//! * **Fairness**: every tenant gets a token bucket refilled at
//!   [`AdmissionConfig::tenant_rate`] with burst
//!   [`AdmissionConfig::tenant_burst`]. A tenant over its quota sheds as
//!   [`Throttled`](crate::ServeError::Throttled) *before* the capacity
//!   check — shedding is priority-aware: over-quota traffic is refused
//!   first, so a flooding tenant exhausts its own bucket while
//!   well-behaved tenants ride the adaptive bound untouched.
//!
//! The controller starts at the floor and proves capacity upward (TCP
//! slow-start shape): growth only happens while the observed p99 stays
//! under target, so a cold start under overload never builds the long
//! queue it would then have to drain. Ticks are driven by traffic — both
//! `admit` and `record_latency` poll the tick deadline — and all timing
//! goes through the [`Clock`] seam from [`crate::cache`], so every
//! control transition is unit-testable with a
//! [`ManualClock`](crate::cache::ManualClock) and no sleeps.
//!
//! Edge cases are pinned by tests: `queue_cap == 0` keeps an effective
//! capacity of exactly 0 (nothing is admitted, nothing "adapts" it up),
//! while any `queue_cap > 0` keeps a floor of at least 1 so the
//! controller can never adapt a live service into a black hole.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crate::cache::Clock;
use crate::metrics::{AdmissionStats, LatencyHistogram};

/// Stripes for the tenant token-bucket map.
const BUCKET_STRIPES: usize = 8;
/// Max token buckets per stripe; at the cap the fullest bucket is evicted
/// (the cheapest casualty — a full bucket re-created later is
/// indistinguishable from an untouched one).
const BUCKETS_PER_STRIPE: usize = 1024;

/// Tuning for an [`AdmissionController`]. Plugged into
/// [`ServeConfig::admission`](crate::ServeConfig::admission).
#[derive(Debug, Clone)]
pub struct AdmissionConfig {
    /// The latency SLO: when the rolling window's p99 exceeds this the
    /// effective capacity shrinks.
    pub target_p99: Duration,
    /// Lower clamp for the effective capacity. Normalized to at least 1
    /// when `queue_cap > 0` (a live service can always admit *something*);
    /// irrelevant when `queue_cap == 0`.
    pub min_cap: usize,
    /// Additive step applied each under-target tick.
    pub increase: usize,
    /// Multiplicative factor applied each over-target tick; must be in
    /// `(0, 1)`.
    pub decrease: f64,
    /// Control-loop period: how often the window is evaluated and reset.
    pub tick: Duration,
    /// Per-tenant sustained admission rate in requests/second; `<= 0`
    /// disables tenant quotas entirely.
    pub tenant_rate: f64,
    /// Per-tenant burst allowance in requests (bucket size). A fresh
    /// tenant starts with a full bucket.
    pub tenant_burst: f64,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        AdmissionConfig {
            target_p99: Duration::from_millis(25),
            min_cap: 4,
            increase: 4,
            decrease: 0.5,
            tick: Duration::from_millis(20),
            tenant_rate: 0.0,
            tenant_burst: 256.0,
        }
    }
}

impl AdmissionConfig {
    /// Validate the knobs; `Err` carries the reason a service start should
    /// report as `BadRequest`.
    pub fn validate(&self) -> Result<(), String> {
        if self.target_p99.is_zero() {
            return Err("admission.target_p99 must be positive".into());
        }
        if self.tick.is_zero() {
            return Err("admission.tick must be positive".into());
        }
        if self.increase == 0 {
            return Err("admission.increase must be at least 1".into());
        }
        if !(self.decrease > 0.0 && self.decrease < 1.0) {
            return Err("admission.decrease must be in (0, 1)".into());
        }
        if !self.tenant_rate.is_finite() || self.tenant_rate < 0.0 {
            return Err("admission.tenant_rate must be finite and >= 0".into());
        }
        if self.tenant_rate > 0.0 && !(self.tenant_burst.is_finite() && self.tenant_burst >= 1.0) {
            return Err("admission.tenant_burst must be >= 1 when quotas are on".into());
        }
        Ok(())
    }
}

/// What the controller decided about one arriving request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdmissionDecision {
    /// Enqueue it.
    Admit,
    /// Shed it as `Busy`: depth has reached the effective capacity (or
    /// `queue_cap` is 0).
    Shed,
    /// Refuse it as `Throttled`: the tenant is over its quota.
    Throttle,
}

/// One tenant's token bucket (only touched under its stripe lock).
#[derive(Debug, Clone, Copy)]
struct TokenBucket {
    tokens: f64,
    last_refill: Instant,
}

/// The adaptive admission controller; one per service, shared by every
/// local shard's submit path.
pub struct AdmissionController {
    cfg: AdmissionConfig,
    queue_cap: usize,
    floor: usize,
    /// Current effective capacity; `admit` sheds when a shard's depth
    /// gauge has reached it.
    cap: AtomicU64,
    /// Rolling window of served latencies, reset each tick.
    window: LatencyHistogram,
    /// Deadline of the next control tick.
    next_tick: Mutex<Instant>,
    clock: Arc<dyn Clock>,
    buckets: Vec<Mutex<HashMap<u64, TokenBucket>>>,
    stats: Arc<AdmissionStats>,
}

impl std::fmt::Debug for AdmissionController {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AdmissionController")
            .field("cfg", &self.cfg)
            .field("queue_cap", &self.queue_cap)
            .field("effective_cap", &self.effective_cap())
            .finish()
    }
}

impl AdmissionController {
    /// Build a controller for a service whose shard channels are bounded
    /// at `queue_cap`. The config must already be
    /// [`validate`](AdmissionConfig::validate)d.
    pub fn new(
        cfg: AdmissionConfig,
        queue_cap: usize,
        clock: Arc<dyn Clock>,
        stats: Arc<AdmissionStats>,
    ) -> AdmissionController {
        // queue_cap == 0 means "admit nothing" and must stay exactly 0;
        // otherwise the floor is at least 1 so adaptation can never close
        // the service entirely.
        let floor = if queue_cap == 0 {
            0
        } else {
            cfg.min_cap.clamp(1, queue_cap)
        };
        let next = clock.now() + cfg.tick;
        let controller = AdmissionController {
            cfg,
            queue_cap,
            floor,
            cap: AtomicU64::new(floor as u64),
            window: LatencyHistogram::new(),
            next_tick: Mutex::new(next),
            clock,
            buckets: (0..BUCKET_STRIPES)
                .map(|_| Mutex::new(HashMap::new()))
                .collect(),
            stats,
        };
        controller
            .stats
            .effective_cap
            .store(floor as u64, Ordering::Relaxed);
        controller
    }

    /// The capacity the controller is currently willing to queue.
    pub fn effective_cap(&self) -> usize {
        self.cap.load(Ordering::Relaxed) as usize
    }

    /// Feed one served request's end-to-end latency into the rolling
    /// window (also drives the tick clock, so a draining queue keeps
    /// adapting even if arrivals stop).
    pub fn record_latency(&self, latency: Duration) {
        self.window.record(latency);
        self.maybe_tick();
    }

    /// Decide one arriving request given its tenant and the target
    /// shard's current queue depth. Counts the outcome into
    /// [`AdmissionStats`] (global and per-tenant).
    pub fn admit(&self, tenant: u64, depth: u64) -> AdmissionDecision {
        self.maybe_tick();
        // quota first: over-quota traffic is shed before it can compete
        // for capacity (priority-aware shedding)
        if self.cfg.tenant_rate > 0.0 && !self.take_token(tenant) {
            self.stats.throttled.fetch_add(1, Ordering::Relaxed);
            self.stats.tenant_throttled(tenant);
            return AdmissionDecision::Throttle;
        }
        if depth >= self.cap.load(Ordering::Relaxed) {
            self.stats.shed.fetch_add(1, Ordering::Relaxed);
            self.stats.tenant_shed(tenant);
            return AdmissionDecision::Shed;
        }
        self.stats.tenant_admitted(tenant);
        AdmissionDecision::Admit
    }

    /// Run the control loop if a tick deadline has passed. At most one
    /// step per call: a long idle gap does not replay missed ticks,
    /// because with no traffic there is nothing to adapt *to*.
    fn maybe_tick(&self) {
        let now = self.clock.now();
        let Ok(mut due) = self.next_tick.try_lock() else {
            return; // another thread is ticking; this sample still counted
        };
        if now < *due {
            return;
        }
        *due = now + self.cfg.tick;
        drop(due);
        self.tick_once();
    }

    fn tick_once(&self) {
        let over = match self.window.quantile(0.99) {
            Some(p99) => p99 > self.cfg.target_p99,
            None => false, // idle window: probe upward
        };
        self.window.reset();
        let cap = self.cap.load(Ordering::Relaxed) as usize;
        let next = if over {
            self.stats.shrinks.fetch_add(1, Ordering::Relaxed);
            ((cap as f64 * self.cfg.decrease).floor() as usize).max(self.floor)
        } else {
            self.stats.grows.fetch_add(1, Ordering::Relaxed);
            cap.saturating_add(self.cfg.increase).min(self.queue_cap)
        };
        self.cap.store(next as u64, Ordering::Relaxed);
        self.stats.ticks.fetch_add(1, Ordering::Relaxed);
        self.stats
            .effective_cap
            .store(next as u64, Ordering::Relaxed);
    }

    /// Take one token from `tenant`'s bucket, refilling it first.
    fn take_token(&self, tenant: u64) -> bool {
        let stripe = &self.buckets[(tenant as usize) % BUCKET_STRIPES];
        let mut map = stripe.lock().expect("bucket stripe lock");
        let now = self.clock.now();
        if !map.contains_key(&tenant) && map.len() >= BUCKETS_PER_STRIPE {
            let fullest = map
                .iter()
                .max_by(|a, b| a.1.tokens.total_cmp(&b.1.tokens))
                .map(|(&id, _)| id);
            if let Some(id) = fullest {
                map.remove(&id);
            }
        }
        let bucket = map.entry(tenant).or_insert(TokenBucket {
            tokens: self.cfg.tenant_burst,
            last_refill: now,
        });
        let dt = now.saturating_duration_since(bucket.last_refill);
        bucket.tokens =
            (bucket.tokens + dt.as_secs_f64() * self.cfg.tenant_rate).min(self.cfg.tenant_burst);
        bucket.last_refill = now;
        if bucket.tokens >= 1.0 {
            bucket.tokens -= 1.0;
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::ManualClock;

    fn controller(
        cfg: AdmissionConfig,
        queue_cap: usize,
    ) -> (Arc<ManualClock>, Arc<AdmissionStats>, AdmissionController) {
        let clock = Arc::new(ManualClock::new());
        let stats = Arc::new(AdmissionStats::default());
        let c = AdmissionController::new(
            cfg,
            queue_cap,
            Arc::clone(&clock) as Arc<dyn Clock>,
            Arc::clone(&stats),
        );
        (clock, stats, c)
    }

    fn base_cfg() -> AdmissionConfig {
        AdmissionConfig {
            target_p99: Duration::from_millis(10),
            min_cap: 2,
            increase: 4,
            decrease: 0.5,
            tick: Duration::from_millis(20),
            tenant_rate: 0.0,
            tenant_burst: 8.0,
        }
    }

    /// Drive exactly one tick after loading the window with `latency`
    /// samples.
    fn tick_with(c: &AdmissionController, clock: &ManualClock, latency: Duration, samples: usize) {
        for _ in 0..samples {
            c.record_latency(latency);
        }
        clock.advance(c.cfg.tick + Duration::from_nanos(1));
        c.record_latency(latency); // the sample that crosses the deadline
    }

    #[test]
    fn starts_at_floor_and_grows_additively_while_under_target() {
        let (clock, stats, c) = controller(base_cfg(), 64);
        assert_eq!(c.effective_cap(), 2);
        tick_with(&c, &clock, Duration::from_millis(1), 10);
        assert_eq!(c.effective_cap(), 6); // 2 + 4
        tick_with(&c, &clock, Duration::from_millis(1), 10);
        assert_eq!(c.effective_cap(), 10);
        assert_eq!(stats.grows.load(Ordering::Relaxed), 2);
        assert_eq!(stats.shrinks.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn shrinks_multiplicatively_when_p99_over_target() {
        let (clock, stats, c) = controller(base_cfg(), 64);
        for _ in 0..20 {
            tick_with(&c, &clock, Duration::from_millis(1), 10);
        }
        assert_eq!(c.effective_cap(), 64); // clamped at queue_cap
        tick_with(&c, &clock, Duration::from_millis(50), 10);
        assert_eq!(c.effective_cap(), 32);
        tick_with(&c, &clock, Duration::from_millis(50), 10);
        assert_eq!(c.effective_cap(), 16);
        assert_eq!(stats.shrinks.load(Ordering::Relaxed), 2);
        assert_eq!(stats.effective_cap.load(Ordering::Relaxed), 16);
    }

    #[test]
    fn idle_window_probes_upward() {
        let (clock, _, c) = controller(base_cfg(), 64);
        clock.advance(Duration::from_millis(21));
        // an admit crosses the tick deadline with an empty window: the
        // controller probes upward rather than freezing on no data
        assert_eq!(c.admit(0, 0), AdmissionDecision::Admit);
        assert_eq!(c.effective_cap(), 6);
    }

    #[test]
    fn shrink_clamps_at_floor_and_floor_is_at_least_one() {
        let mut cfg = base_cfg();
        cfg.min_cap = 0; // pathological floor request
        let (clock, _, c) = controller(cfg, 64);
        // repeated over-target ticks can never push the cap below 1
        for _ in 0..30 {
            tick_with(&c, &clock, Duration::from_millis(50), 5);
        }
        assert_eq!(c.effective_cap(), 1);
        assert_eq!(c.admit(0, 0), AdmissionDecision::Admit);
        assert_eq!(c.admit(0, 1), AdmissionDecision::Shed);
    }

    #[test]
    fn zero_queue_cap_stays_zero_and_admits_nothing() {
        let (clock, _, c) = controller(base_cfg(), 0);
        assert_eq!(c.effective_cap(), 0);
        // neither idle growth nor over-target shrink moves it
        tick_with(&c, &clock, Duration::from_millis(1), 5);
        assert_eq!(c.effective_cap(), 0);
        tick_with(&c, &clock, Duration::from_millis(50), 5);
        assert_eq!(c.effective_cap(), 0);
        assert_eq!(c.admit(1, 0), AdmissionDecision::Shed);
    }

    #[test]
    fn min_cap_above_queue_cap_clamps_down() {
        let mut cfg = base_cfg();
        cfg.min_cap = 1000;
        let (_, _, c) = controller(cfg, 8);
        assert_eq!(c.effective_cap(), 8);
    }

    #[test]
    fn growth_clamps_at_queue_cap() {
        let (clock, _, c) = controller(base_cfg(), 7);
        for _ in 0..10 {
            tick_with(&c, &clock, Duration::from_millis(1), 5);
        }
        assert_eq!(c.effective_cap(), 7);
    }

    #[test]
    fn admit_sheds_at_effective_cap_not_queue_cap() {
        let (clock, stats, c) = controller(base_cfg(), 64);
        tick_with(&c, &clock, Duration::from_millis(1), 5);
        let cap = c.effective_cap() as u64; // 6, well under queue_cap 64
        assert_eq!(c.admit(0, cap - 1), AdmissionDecision::Admit);
        assert_eq!(c.admit(0, cap), AdmissionDecision::Shed);
        assert_eq!(c.admit(0, cap + 10), AdmissionDecision::Shed);
        assert_eq!(stats.shed.load(Ordering::Relaxed), 2);
        let snap = stats.snapshot();
        assert_eq!(snap.tenant(0).unwrap().admitted, 1);
        assert_eq!(snap.tenant(0).unwrap().shed, 2);
    }

    #[test]
    fn token_bucket_throttles_after_burst_and_refills_with_time() {
        let mut cfg = base_cfg();
        cfg.tenant_rate = 2.0; // 2 tokens/second
        cfg.tenant_burst = 3.0;
        let (clock, stats, c) = controller(cfg, 64);
        for _ in 0..3 {
            assert_eq!(c.admit(7, 0), AdmissionDecision::Admit);
        }
        assert_eq!(c.admit(7, 0), AdmissionDecision::Throttle);
        assert_eq!(stats.throttled.load(Ordering::Relaxed), 1);
        // half a second refills one token
        clock.advance(Duration::from_millis(500));
        assert_eq!(c.admit(7, 0), AdmissionDecision::Admit);
        assert_eq!(c.admit(7, 0), AdmissionDecision::Throttle);
        let snap = stats.snapshot();
        assert_eq!(snap.tenant(7).unwrap().admitted, 4);
        assert_eq!(snap.tenant(7).unwrap().throttled, 2);
    }

    #[test]
    fn refill_clamps_at_burst() {
        let mut cfg = base_cfg();
        cfg.tenant_rate = 100.0;
        cfg.tenant_burst = 2.0;
        let (clock, _, c) = controller(cfg, 64);
        assert_eq!(c.admit(1, 0), AdmissionDecision::Admit);
        clock.advance(Duration::from_secs(3600)); // an hour of credit...
        for _ in 0..2 {
            assert_eq!(c.admit(1, 0), AdmissionDecision::Admit); // ...is still 2 tokens
        }
        assert_eq!(c.admit(1, 0), AdmissionDecision::Throttle);
    }

    #[test]
    fn one_tenant_over_quota_does_not_throttle_another() {
        let mut cfg = base_cfg();
        cfg.tenant_rate = 1.0;
        cfg.tenant_burst = 2.0;
        let (_, _, c) = controller(cfg, 64);
        for _ in 0..10 {
            let _ = c.admit(1, 0); // tenant 1 floods
        }
        assert_eq!(c.admit(2, 0), AdmissionDecision::Admit); // tenant 2 unaffected
        assert_eq!(c.admit(1, 0), AdmissionDecision::Throttle);
    }

    #[test]
    fn over_quota_throttles_even_at_zero_depth() {
        // hard quotas: an idle service still refuses over-quota traffic,
        // which is what makes the isolation tests deterministic
        let mut cfg = base_cfg();
        cfg.tenant_rate = 1.0;
        cfg.tenant_burst = 1.0;
        let (_, _, c) = controller(cfg, 64);
        assert_eq!(c.admit(5, 0), AdmissionDecision::Admit);
        assert_eq!(c.admit(5, 0), AdmissionDecision::Throttle);
    }

    #[test]
    fn bucket_map_bounded_by_eviction() {
        let mut cfg = base_cfg();
        cfg.tenant_rate = 1.0;
        cfg.tenant_burst = 4.0;
        let (_, _, c) = controller(cfg, 64);
        // spray far more tenants than the bucket map can hold: every call
        // still gets a decision and the map stays bounded
        for id in 0..(BUCKET_STRIPES * BUCKETS_PER_STRIPE * 2) as u64 {
            assert_eq!(c.admit(id, 0), AdmissionDecision::Admit);
        }
        let held: usize = c.buckets.iter().map(|s| s.lock().unwrap().len()).sum();
        assert!(held <= BUCKET_STRIPES * BUCKETS_PER_STRIPE);
    }

    #[test]
    fn config_validation_rejects_bad_knobs() {
        let ok = base_cfg();
        assert!(ok.validate().is_ok());
        let mut bad = base_cfg();
        bad.target_p99 = Duration::ZERO;
        assert!(bad.validate().is_err());
        let mut bad = base_cfg();
        bad.tick = Duration::ZERO;
        assert!(bad.validate().is_err());
        let mut bad = base_cfg();
        bad.increase = 0;
        assert!(bad.validate().is_err());
        for d in [0.0, 1.0, 1.5, -0.5, f64::NAN] {
            let mut bad = base_cfg();
            bad.decrease = d;
            assert!(bad.validate().is_err(), "decrease {d} should be rejected");
        }
        let mut bad = base_cfg();
        bad.tenant_rate = f64::INFINITY;
        assert!(bad.validate().is_err());
        let mut bad = base_cfg();
        bad.tenant_rate = 5.0;
        bad.tenant_burst = 0.5;
        assert!(bad.validate().is_err());
    }

    #[test]
    fn ticks_do_not_replay_idle_gaps() {
        let (clock, stats, c) = controller(base_cfg(), 64);
        clock.advance(Duration::from_secs(10)); // 500 tick periods pass idle
        c.record_latency(Duration::from_millis(1));
        // exactly one control step ran, not 500
        assert_eq!(stats.ticks.load(Ordering::Relaxed), 1);
        assert_eq!(c.effective_cap(), 6);
    }
}
