//! Background audit-segment archiver: verified compaction and retention
//! for the rotated audit log, off the writer hot path.
//!
//! The segmented sink ([`crate::audit_sink`]) rolls to a new JSONL file
//! past `max_segment_bytes`, which bounds *restart* cost — but sealed
//! segments then accumulate forever. This module closes that gap with a
//! dedicated archiver thread that never runs on the writer hot path: it
//! watches the segment set and, for every sealed segment past a
//! configurable retention horizon, runs
//!
//! 1. **verify** — the segment must verify standalone against the hash
//!    chain (a segment that does not verify is *never* deleted);
//! 2. **compress** — the bytes are packed into a `FACZ` container
//!    (magic, version, original length, SHA-256 of the original, then an
//!    LZSS/varint-free byte stream in the spirit of
//!    `fact_data::segment::codec`: bit-exact, std-only);
//! 3. **write** — the container lands as `<segment path>.facz` via
//!    write-temp + fsync + rename, so a crash leaves either no archive or
//!    a complete one, never a torn one;
//! 4. **re-verify** — the container is read back from storage and must
//!    decode to **byte-identical** segment content;
//! 5. **commit** — an [`ArchiveManifest`] sidecar records the archive
//!    (this is the commit point);
//! 6. **delete** — only then is the original segment file removed
//!    (skippable via [`ArchiveConfig::delete_after_verify`]).
//!
//! A crash between any two steps leaves the original, a verified archive,
//! or both — never neither. The fault matrix in `tests/audit_recovery.rs`
//! drives every crash point through [`MemStorage`](crate::audit_sink::MemStorage)'s
//! `kill_on_archive_write` / `kill_on_source_delete` knobs, and the next
//! archiver pass completes whatever step the crash interrupted.
//!
//! Recovery and verification read archived segments transparently
//! ([`crate::audit_sink::read_segment_or_archive`] decompresses on
//! demand), so history stays end-to-end verifiable across the
//! live/archived boundary, and a *leading* run of archived-and-deleted
//! segments is archival, not loss.
//!
//! Operator runbook: `OPERATIONS.md` ("Archiving & retention") documents
//! the `fact-shardd` flags (`--archive-retain`, `--archive-tick-ms`),
//! the crash-safety guarantees, and how a leading gap differs from loss.
//! `exp_e20` measures the writer hot-path p99 unchanged while the
//! archiver compacts a 10×-rotated log under sustained load.

use std::io;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use fact_transparency::sha256::sha256;
use serde::{Deserialize, Serialize};

use crate::audit_sink::{check_segment_bytes, AuditStorage};

// ---------------------------------------------------------------------------
// configuration
// ---------------------------------------------------------------------------

/// Archiver policy, carried in
/// [`AuditSinkConfig::archive`](crate::audit_sink::AuditSinkConfig::archive).
#[derive(Debug, Clone)]
pub struct ArchiveConfig {
    /// Sealed segments to keep live (uncompressed) behind the active one.
    /// `0` archives every sealed segment as soon as the writer rolls past
    /// it.
    pub retain_segments: u64,
    /// How often the archiver wakes to scan for eligible segments.
    pub tick: Duration,
    /// Remove the original segment file once its archive re-verified
    /// byte-identical and the manifest committed. `false` keeps both (a
    /// copy-only mode for operators who prune out of band).
    pub delete_after_verify: bool,
}

impl Default for ArchiveConfig {
    fn default() -> Self {
        ArchiveConfig {
            retain_segments: 2,
            tick: Duration::from_millis(500),
            delete_after_verify: true,
        }
    }
}

// ---------------------------------------------------------------------------
// counters
// ---------------------------------------------------------------------------

/// Live archiver counters, shared between the archiver thread, the
/// metrics registry, and the final [`SinkReport`](crate::audit_sink::SinkReport).
#[derive(Debug, Default)]
pub struct ArchiveStats {
    /// Segments archived (verified, compressed, committed) this run.
    pub segments_archived: AtomicU64,
    /// Original segment bytes archived.
    pub bytes_before: AtomicU64,
    /// Container bytes those segments compressed down to.
    pub bytes_after: AtomicU64,
    /// Segments skipped because verification failed (either the original
    /// before compression or the archive on read-back). Skipped originals
    /// are never deleted.
    pub verify_failures: AtomicU64,
    /// Storage errors observed by the archiver.
    pub io_errors: AtomicU64,
    /// Original segment files removed after a committed archive.
    pub deletes_completed: AtomicU64,
    /// Archiver scan passes executed.
    pub ticks: AtomicU64,
}

impl ArchiveStats {
    /// An instantaneous plain-data copy of every counter.
    pub fn snapshot(&self) -> ArchiveSnapshot {
        ArchiveSnapshot {
            segments_archived: self.segments_archived.load(Ordering::Relaxed),
            bytes_before: self.bytes_before.load(Ordering::Relaxed),
            bytes_after: self.bytes_after.load(Ordering::Relaxed),
            verify_failures: self.verify_failures.load(Ordering::Relaxed),
            io_errors: self.io_errors.load(Ordering::Relaxed),
            deletes_completed: self.deletes_completed.load(Ordering::Relaxed),
            ticks: self.ticks.load(Ordering::Relaxed),
        }
    }
}

/// Plain-data copy of [`ArchiveStats`] at one instant.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ArchiveSnapshot {
    /// Segments archived this run.
    pub segments_archived: u64,
    /// Original bytes archived.
    pub bytes_before: u64,
    /// Container bytes after compression.
    pub bytes_after: u64,
    /// Verification failures (original or read-back); originals kept.
    pub verify_failures: u64,
    /// Storage errors observed by the archiver.
    pub io_errors: u64,
    /// Original files removed after a committed archive.
    pub deletes_completed: u64,
    /// Scan passes executed.
    pub ticks: u64,
}

impl ArchiveSnapshot {
    /// Compression ratio achieved (`bytes_after / bytes_before`); `1.0`
    /// when nothing was archived.
    pub fn ratio(&self) -> f64 {
        if self.bytes_before == 0 {
            1.0
        } else {
            self.bytes_after as f64 / self.bytes_before as f64
        }
    }
}

// ---------------------------------------------------------------------------
// LZSS codec (std-only, bit-exact)
// ---------------------------------------------------------------------------

/// Sliding-window size; match offsets fit 12 bits.
const LZ_WINDOW: usize = 4096;
/// Shortest back-reference worth a 2-byte token.
const LZ_MIN_MATCH: usize = 3;
/// Longest back-reference a 4-bit length field encodes.
const LZ_MAX_MATCH: usize = LZ_MIN_MATCH + 15;
const LZ_HASH_BITS: u32 = 13;
const LZ_HASH_SIZE: usize = 1 << LZ_HASH_BITS;
/// How many chain candidates the compressor tries per position. Bounds
/// worst-case compression cost; decompression is unaffected.
const LZ_MAX_CHAIN: usize = 32;

fn lz_hash(input: &[u8], i: usize) -> usize {
    let k = u32::from(input[i]) | u32::from(input[i + 1]) << 8 | u32::from(input[i + 2]) << 16;
    (k.wrapping_mul(2_654_435_761) >> (32 - LZ_HASH_BITS)) as usize & (LZ_HASH_SIZE - 1)
}

/// Compress `input` with a byte-oriented LZSS: a flag byte announces the
/// next eight tokens LSB-first (`0` = literal byte, `1` = 2-byte match of
/// 12-bit offset / 4-bit length). Bit-exact: [`lz_decompress`] restores
/// the input byte for byte.
pub fn lz_compress(input: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(input.len() / 2 + 16);
    let mut head = vec![usize::MAX; LZ_HASH_SIZE];
    let mut prev = vec![usize::MAX; input.len()];
    let mut flag_pos = 0usize;
    let mut flag_bits = 8u8;
    let mut i = 0usize;
    while i < input.len() {
        // find the longest match ending within the window
        let mut best_len = 0usize;
        let mut best_off = 0usize;
        if i + LZ_MIN_MATCH <= input.len() && i + 2 < input.len() {
            let h = lz_hash(input, i);
            let mut cand = head[h];
            let mut chain = 0usize;
            let max_len = LZ_MAX_MATCH.min(input.len() - i);
            while cand != usize::MAX && chain < LZ_MAX_CHAIN {
                if i - cand > LZ_WINDOW {
                    break; // older candidates are only farther away
                }
                let mut l = 0usize;
                while l < max_len && input[cand + l] == input[i + l] {
                    l += 1;
                }
                if l > best_len {
                    best_len = l;
                    best_off = i - cand;
                    if l == max_len {
                        break;
                    }
                }
                cand = prev[cand];
                chain += 1;
            }
        }
        if flag_bits == 8 {
            flag_pos = out.len();
            out.push(0);
            flag_bits = 0;
        }
        if best_len >= LZ_MIN_MATCH {
            out[flag_pos] |= 1 << flag_bits;
            let off = best_off - 1; // 0..4095
            out.push((off & 0xff) as u8);
            out.push((((off >> 8) as u8) << 4) | (best_len - LZ_MIN_MATCH) as u8);
            // index every covered position so later matches can start there
            let end = (i + best_len).min(input.len().saturating_sub(2));
            for (j, slot) in prev.iter_mut().enumerate().take(end).skip(i) {
                let h = lz_hash(input, j);
                *slot = head[h];
                head[h] = j;
            }
            i += best_len;
        } else {
            out.push(input[i]);
            if i + 2 < input.len() {
                let h = lz_hash(input, i);
                prev[i] = head[h];
                head[h] = i;
            }
            i += 1;
        }
        flag_bits += 1;
    }
    out
}

fn corrupt(what: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, what.to_string())
}

/// Decompress an [`lz_compress`] stream back to exactly `original_len`
/// bytes. Any malformed token (offset past the start, stream ending
/// mid-token, trailing bytes) is `InvalidData` — never a panic or a
/// silently short result.
pub fn lz_decompress(input: &[u8], original_len: usize) -> io::Result<Vec<u8>> {
    let mut out = Vec::with_capacity(original_len);
    let mut pos = 0usize;
    while out.len() < original_len {
        let Some(&flags) = input.get(pos) else {
            return Err(corrupt("LZSS stream ended before its flag byte"));
        };
        pos += 1;
        for bit in 0..8 {
            if out.len() >= original_len {
                break;
            }
            if flags >> bit & 1 == 0 {
                let Some(&b) = input.get(pos) else {
                    return Err(corrupt("LZSS stream ended inside a literal"));
                };
                out.push(b);
                pos += 1;
            } else {
                let (Some(&b1), Some(&b2)) = (input.get(pos), input.get(pos + 1)) else {
                    return Err(corrupt("LZSS stream ended inside a match token"));
                };
                pos += 2;
                let off = (usize::from(b2 >> 4) << 8 | usize::from(b1)) + 1;
                let len = usize::from(b2 & 0x0f) + LZ_MIN_MATCH;
                if off > out.len() {
                    return Err(corrupt("LZSS match offset reaches before the stream start"));
                }
                if out.len() + len > original_len {
                    return Err(corrupt("LZSS match runs past the original length"));
                }
                let start = out.len() - off;
                for j in 0..len {
                    let b = out[start + j];
                    out.push(b);
                }
            }
        }
    }
    if pos != input.len() {
        return Err(corrupt("trailing bytes after the LZSS stream"));
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// FACZ container
// ---------------------------------------------------------------------------

/// Magic bytes opening every archive container.
pub const ARCHIVE_MAGIC: [u8; 4] = *b"FACZ";
/// Container format version this build writes.
pub const ARCHIVE_VERSION: u16 = 1;
/// Fixed container header: magic, version, segment id, original length,
/// SHA-256 of the original bytes.
const HEADER_LEN: usize = 4 + 2 + 8 + 8 + 32;

/// Pack one segment's bytes into a `FACZ` container: header (magic,
/// version, segment id, original length, SHA-256 of the original)
/// followed by the [`lz_compress`] payload.
pub fn encode_archive(segment: u64, original: &[u8]) -> Vec<u8> {
    let payload = lz_compress(original);
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    out.extend_from_slice(&ARCHIVE_MAGIC);
    out.extend_from_slice(&ARCHIVE_VERSION.to_le_bytes());
    out.extend_from_slice(&segment.to_le_bytes());
    out.extend_from_slice(&(original.len() as u64).to_le_bytes());
    out.extend_from_slice(&sha256(original));
    out.extend_from_slice(&payload);
    out
}

/// Unpack a `FACZ` container back to `(segment id, original bytes)`.
/// Verifies the magic, version, length, and SHA-256 — a container that
/// does not decode to exactly the bytes it was built from is
/// `InvalidData`, so a caller holding a decoded archive holds bytes as
/// trustworthy as the original file.
pub fn decode_archive(container: &[u8]) -> io::Result<(u64, Vec<u8>)> {
    if container.len() < HEADER_LEN {
        return Err(corrupt("archive container shorter than its header"));
    }
    if container[..4] != ARCHIVE_MAGIC {
        return Err(corrupt("archive container has wrong magic"));
    }
    let version = u16::from_le_bytes(container[4..6].try_into().expect("2 bytes"));
    if version != ARCHIVE_VERSION {
        return Err(corrupt("archive container has unsupported version"));
    }
    let segment = u64::from_le_bytes(container[6..14].try_into().expect("8 bytes"));
    let original_len = u64::from_le_bytes(container[14..22].try_into().expect("8 bytes")) as usize;
    let digest: [u8; 32] = container[22..54].try_into().expect("32 bytes");
    let original = lz_decompress(&container[HEADER_LEN..], original_len)?;
    if sha256(&original) != digest {
        return Err(corrupt("archive payload does not match its digest"));
    }
    Ok((segment, original))
}

// ---------------------------------------------------------------------------
// manifest
// ---------------------------------------------------------------------------

/// One committed archive, as recorded in the manifest sidecar.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ArchiveRecord {
    /// Segment id the archive holds.
    pub segment: u64,
    /// Original segment size in bytes.
    pub original_bytes: u64,
    /// Container size in bytes.
    pub archived_bytes: u64,
    /// Lowercase-hex SHA-256 of the original segment bytes.
    pub sha256_hex: String,
}

/// The archiver's commit log: a small JSON sidecar listing every archive
/// whose read-back re-verified byte-identical. Appending a record here is
/// the **commit point** of the archive protocol — the original is deleted
/// only after its record is durably in the manifest, so a crash at any
/// step leaves the original, a verified archive, or both, never neither.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ArchiveManifest {
    /// Committed archives, ascending by segment id.
    pub records: Vec<ArchiveRecord>,
}

impl ArchiveManifest {
    /// Load the manifest from its storage sidecar. Absent or unreadable
    /// manifests load empty: the manifest is a commit log, and every
    /// record it could hold is re-derivable by re-verifying the archives
    /// themselves.
    pub fn load(storage: &mut dyn AuditStorage) -> io::Result<ArchiveManifest> {
        Ok(storage
            .read_manifest()?
            .and_then(|b| String::from_utf8(b).ok())
            .and_then(|s| serde_json::from_str(&s).ok())
            .unwrap_or_default())
    }

    /// Durably replace the storage sidecar with this manifest.
    pub fn store(&self, storage: &mut dyn AuditStorage) -> io::Result<()> {
        let json = serde_json::to_string(self).expect("manifest serializes");
        storage.write_manifest(json.as_bytes())
    }

    /// The committed record for `segment`, if one exists.
    pub fn record(&self, segment: u64) -> Option<&ArchiveRecord> {
        self.records.iter().find(|r| r.segment == segment)
    }

    fn upsert(&mut self, record: ArchiveRecord) {
        match self
            .records
            .iter_mut()
            .find(|r| r.segment == record.segment)
        {
            Some(slot) => *slot = record,
            None => {
                self.records.push(record);
                self.records.sort_unstable_by_key(|r| r.segment);
            }
        }
    }
}

fn hex32(bytes: &[u8; 32]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

// ---------------------------------------------------------------------------
// one archiver pass
// ---------------------------------------------------------------------------

/// What one [`run_once`] pass did.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ArchivePassReport {
    /// Segments newly archived (verify → compress → commit → delete).
    pub archived: Vec<u64>,
    /// Segments whose earlier, interrupted archive this pass completed
    /// (the archive already existed and re-verified; only the commit
    /// and/or delete were outstanding).
    pub completed: Vec<u64>,
    /// Segments skipped because verification failed; their originals are
    /// untouched.
    pub skipped: Vec<u64>,
}

/// Run one archiver pass over `storage`: archive every live segment with
/// id below `active_segment`, excluding the newest
/// [`retain_segments`](ArchiveConfig::retain_segments) sealed ones.
/// `active_segment` must be the writer's current segment (the archiver
/// thread reads it from the sink; offline callers pass
/// `u64::MAX` to compact everything sealed — e.g. after the sink
/// finished). Each segment runs the full verify → compress → write →
/// re-verify → commit → delete protocol; a segment that fails any
/// verification is skipped with its original intact.
pub fn run_once(
    storage: &mut dyn AuditStorage,
    config: &ArchiveConfig,
    active_segment: u64,
    stats: &ArchiveStats,
) -> io::Result<ArchivePassReport> {
    let mut report = ArchivePassReport::default();
    let live = match storage.list_segments() {
        Ok(v) => v,
        Err(e) => {
            stats.io_errors.fetch_add(1, Ordering::Relaxed);
            return Err(e);
        }
    };
    let sealed: Vec<u64> = live.into_iter().filter(|&id| id < active_segment).collect();
    let eligible = sealed.len().saturating_sub(config.retain_segments as usize);
    if eligible == 0 {
        return Ok(report);
    }
    let mut manifest = ArchiveManifest::load(storage)?;
    for &id in &sealed[..eligible] {
        match archive_one(storage, config, &mut manifest, id, stats) {
            Ok(ArchiveOutcome::Archived) => report.archived.push(id),
            Ok(ArchiveOutcome::Completed) => report.completed.push(id),
            Ok(ArchiveOutcome::Skipped) => report.skipped.push(id),
            Err(e) => {
                stats.io_errors.fetch_add(1, Ordering::Relaxed);
                return Err(e); // storage may be dead; stop the pass
            }
        }
    }
    Ok(report)
}

enum ArchiveOutcome {
    Archived,
    Completed,
    Skipped,
}

fn archive_one(
    storage: &mut dyn AuditStorage,
    config: &ArchiveConfig,
    manifest: &mut ArchiveManifest,
    id: u64,
    stats: &ArchiveStats,
) -> io::Result<ArchiveOutcome> {
    let original = storage.read_segment(id)?;
    // step 1: the original must verify standalone — an unverifiable
    // segment is evidence of a fault and is never compacted away
    if check_segment_bytes(&original).is_err() {
        stats.verify_failures.fetch_add(1, Ordering::Relaxed);
        return Ok(ArchiveOutcome::Skipped);
    }
    let digest_hex = hex32(&sha256(&original));
    // step 2/3: adopt an existing byte-identical archive (a crash landed
    // between rename and commit), else compress and write a fresh one
    let adopted = match storage.read_archive(id) {
        Ok(existing) => {
            matches!(decode_archive(&existing), Ok((seg, bytes)) if seg == id && bytes == original)
        }
        Err(e) if e.kind() == io::ErrorKind::NotFound => false,
        Err(e) => return Err(e),
    };
    if !adopted {
        storage.write_archive(id, &encode_archive(id, &original))?;
    }
    // step 4: re-verify from storage — the commit below trusts only what
    // actually landed, decoded back to byte-identical content
    let container = storage.read_archive(id)?;
    match decode_archive(&container) {
        Ok((seg, bytes)) if seg == id && bytes == original => {}
        _ => {
            stats.verify_failures.fetch_add(1, Ordering::Relaxed);
            return Ok(ArchiveOutcome::Skipped);
        }
    }
    // step 5: commit
    let already_committed = manifest
        .record(id)
        .is_some_and(|r| r.sha256_hex == digest_hex);
    if !already_committed {
        manifest.upsert(ArchiveRecord {
            segment: id,
            original_bytes: original.len() as u64,
            archived_bytes: container.len() as u64,
            sha256_hex: digest_hex,
        });
        manifest.store(storage)?;
    }
    // step 6: delete the original
    if config.delete_after_verify {
        storage.remove_segment_file(id)?;
        stats.deletes_completed.fetch_add(1, Ordering::Relaxed);
    }
    if already_committed {
        Ok(ArchiveOutcome::Completed)
    } else {
        stats.segments_archived.fetch_add(1, Ordering::Relaxed);
        stats
            .bytes_before
            .fetch_add(original.len() as u64, Ordering::Relaxed);
        stats
            .bytes_after
            .fetch_add(container.len() as u64, Ordering::Relaxed);
        Ok(ArchiveOutcome::Archived)
    }
}

// ---------------------------------------------------------------------------
// the archiver thread
// ---------------------------------------------------------------------------

/// The background archiver: its own `std` thread over an independent
/// storage handle, so the writer hot path never compresses, re-reads, or
/// fsyncs an archive. Spawned by the sink when
/// [`AuditSinkConfig::archive`](crate::audit_sink::AuditSinkConfig::archive)
/// is set; stopped (with one final pass) when the sink finishes.
pub struct Archiver {
    stop: Arc<AtomicBool>,
    thread: Option<JoinHandle<()>>,
}

impl Archiver {
    /// Spawn the archiver thread. `active_segment` is polled each pass to
    /// learn the writer's current segment — everything below it is sealed
    /// and eligible (minus the retention horizon).
    pub fn spawn(
        config: ArchiveConfig,
        mut storage: Box<dyn AuditStorage>,
        active_segment: impl Fn() -> u64 + Send + 'static,
        stats: Arc<ArchiveStats>,
    ) -> io::Result<Archiver> {
        assert!(
            config.tick > Duration::ZERO,
            "archive tick must be positive"
        );
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let thread = std::thread::Builder::new()
            .name("fact-audit-archiver".into())
            .spawn(move || {
                while !stop_flag.load(Ordering::Acquire) {
                    stats.ticks.fetch_add(1, Ordering::Relaxed);
                    let _ = run_once(storage.as_mut(), &config, active_segment(), &stats);
                    // sleep in short slices so stop() stays responsive
                    let mut left = config.tick;
                    while left > Duration::ZERO && !stop_flag.load(Ordering::Acquire) {
                        let slice = left.min(Duration::from_millis(10));
                        std::thread::sleep(slice);
                        left = left.saturating_sub(slice);
                    }
                }
                // one final pass so a clean shutdown leaves no segment
                // eligible-but-unarchived (the writer has already drained)
                stats.ticks.fetch_add(1, Ordering::Relaxed);
                let _ = run_once(storage.as_mut(), &config, active_segment(), &stats);
            })
            .map_err(io::Error::other)?;
        Ok(Archiver {
            stop,
            thread: Some(thread),
        })
    }

    /// Signal the thread to stop, let it run its final pass, and join.
    pub fn stop(mut self) {
        self.signal_and_join();
    }

    fn signal_and_join(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for Archiver {
    fn drop(&mut self) {
        self.signal_and_join();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lz_round_trips_typical_jsonl() {
        let line = br#"{"seq":12,"actor":"shard-0","action":"flagged_decision","details":"key=12 p=0.250000 favorable=false group_b=true"}"#;
        let mut input = Vec::new();
        for _ in 0..64 {
            input.extend_from_slice(line);
            input.push(b'\n');
        }
        let packed = lz_compress(&input);
        assert!(
            packed.len() * 2 < input.len(),
            "repetitive JSONL must compress at least 2x ({} -> {})",
            input.len(),
            packed.len()
        );
        assert_eq!(lz_decompress(&packed, input.len()).unwrap(), input);
    }

    #[test]
    fn lz_round_trips_edge_shapes() {
        for input in [
            Vec::new(),
            vec![0u8],
            vec![7u8; 5000],            // one giant run, window-crossing
            (0..=255u8).collect(),      // incompressible ramp
            b"abcabcabcabcab".to_vec(), // overlapping match
        ] {
            let packed = lz_compress(&input);
            assert_eq!(
                lz_decompress(&packed, input.len()).unwrap(),
                input,
                "{input:?}"
            );
        }
    }

    #[test]
    fn lz_decompress_rejects_malformed_streams() {
        let input = b"hello hello hello hello".to_vec();
        let packed = lz_compress(&input);
        // truncated stream
        assert!(lz_decompress(&packed[..packed.len() - 1], input.len()).is_err());
        // trailing garbage
        let mut long = packed.clone();
        long.push(0xff);
        assert!(lz_decompress(&long, input.len()).is_err());
        // a match token pointing before the start
        assert!(lz_decompress(&[0b0000_0001, 0xff, 0xf0], 20).is_err());
    }

    #[test]
    fn container_round_trips_and_rejects_tampering() {
        let original = b"some segment bytes\nmore bytes\n".to_vec();
        let container = encode_archive(7, &original);
        assert_eq!(decode_archive(&container).unwrap(), (7, original.clone()));
        // flip a payload byte: the SHA-256 check refuses
        let mut bad = container.clone();
        let last = bad.len() - 1;
        bad[last] ^= 0x40;
        assert!(decode_archive(&bad).is_err());
        // wrong magic
        let mut bad = container.clone();
        bad[0] = b'X';
        assert!(decode_archive(&bad).is_err());
        // truncated header
        assert!(decode_archive(&container[..10]).is_err());
    }

    #[test]
    fn manifest_upserts_and_round_trips() {
        let mut m = ArchiveManifest::default();
        m.upsert(ArchiveRecord {
            segment: 3,
            original_bytes: 100,
            archived_bytes: 40,
            sha256_hex: "aa".into(),
        });
        m.upsert(ArchiveRecord {
            segment: 1,
            original_bytes: 90,
            archived_bytes: 30,
            sha256_hex: "bb".into(),
        });
        m.upsert(ArchiveRecord {
            segment: 3,
            original_bytes: 100,
            archived_bytes: 41,
            sha256_hex: "cc".into(),
        });
        let ids: Vec<u64> = m.records.iter().map(|r| r.segment).collect();
        assert_eq!(ids, vec![1, 3]);
        assert_eq!(m.record(3).unwrap().sha256_hex, "cc");
        let json = serde_json::to_string(&m).unwrap();
        let back: ArchiveManifest = serde_json::from_str(&json).unwrap();
        assert_eq!(back.records, m.records);
    }
}
