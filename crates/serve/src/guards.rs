//! Per-shard FACT guards, the degrade policy, and the global alert channel.
//!
//! Each worker shard owns its guard set (no sharing, no locks on the hot
//! path): a [`StreamingFairnessMonitor`], an optional [`DriftMonitor`] over
//! the decision scores, and a [`StreamingDpCounter`] spending from a
//! per-shard [`PrivacyAccountant`]. Alerts are debounced per (shard, kind)
//! and merged into one mpsc channel the service owner can drain.

use std::sync::atomic::Ordering;
use std::sync::mpsc::Sender;
use std::sync::Arc;

use fact_confidentiality::PrivacyAccountant;
use fact_core::drift::DriftMonitor;
use fact_core::runtime::{Alert, StreamingDpCounter, StreamingFairnessMonitor};
use fact_data::Result;

use crate::checkpoint::{GuardCheckpoint, LedgerEntry};
use crate::metrics::MetricsRegistry;

/// What the service does with decisions after a guard trips.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DegradePolicy {
    /// Guards observe and alert but decisions are served unchanged.
    #[default]
    Off,
    /// Decisions are still served, but marked `flagged` for human audit
    /// while the trip cooldown lasts.
    AuditAndFlag,
    /// Decisions are refused (`ServeError::Rejected`) while the trip
    /// cooldown lasts — fail closed.
    HardReject,
}

/// Configuration of the per-shard guard set.
#[derive(Debug, Clone)]
pub struct GuardConfig {
    /// Sliding window of the fairness monitor (events).
    pub fairness_window: usize,
    /// Minimum acceptable disparate impact.
    pub min_di: f64,
    /// Events per group required before the fairness monitor speaks.
    pub min_samples_per_group: usize,
    /// Decisions between differentially-private count releases.
    pub dp_interval: usize,
    /// ε spent per DP release.
    pub epsilon_per_release: f64,
    /// Per-shard ε budget.
    pub epsilon_budget: f64,
    /// Optional score-drift monitor: (reference scores, n_bins, window,
    /// PSI threshold).
    pub drift: Option<(Vec<f64>, usize, usize, f64)>,
}

impl Default for GuardConfig {
    fn default() -> Self {
        GuardConfig {
            fairness_window: 2_000,
            min_di: 0.8,
            min_samples_per_group: 50,
            dp_interval: 1_000,
            epsilon_per_release: 0.01,
            epsilon_budget: 1.0,
            drift: None,
        }
    }
}

/// The kind of a guard alert, used as the debounce key.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlertKind {
    /// Windowed disparate impact below threshold.
    Fairness,
    /// Score distribution drifted from the reference.
    Drift,
    /// A DP count release (informational).
    DpRelease,
    /// The DP budget ran out.
    BudgetExhausted,
}

impl AlertKind {
    /// Classify a guard alert.
    pub fn of(alert: &Alert) -> AlertKind {
        match alert {
            Alert::FairnessViolation { .. } => AlertKind::Fairness,
            Alert::Drift(_) => AlertKind::Drift,
            Alert::DpRelease { .. } => AlertKind::DpRelease,
            Alert::BudgetExhausted => AlertKind::BudgetExhausted,
        }
    }

    fn index(self) -> usize {
        match self {
            AlertKind::Fairness => 0,
            AlertKind::Drift => 1,
            AlertKind::DpRelease => 2,
            AlertKind::BudgetExhausted => 3,
        }
    }

    /// Whether a trip of this kind should engage the degrade policy.
    /// DP releases are routine; fairness/drift/budget-exhaustion are not.
    pub fn trips_policy(self) -> bool {
        !matches!(self, AlertKind::DpRelease)
    }
}

/// A guard alert stamped with its origin.
#[derive(Debug, Clone)]
pub struct ServiceAlert {
    /// Shard that raised it.
    pub shard: usize,
    /// The shard's decision count when it was raised.
    pub at_decision: u64,
    /// The underlying guard alert.
    pub alert: Alert,
}

/// The shard-side end of the merged alert channel: forwards alerts after
/// per-kind debouncing and counts what it forwards.
pub struct AlertHub {
    shard: usize,
    tx: Sender<ServiceAlert>,
    metrics: Arc<MetricsRegistry>,
    /// Minimum decisions between forwarded alerts of the same kind.
    debounce: u64,
    last_sent: [Option<u64>; 4],
}

impl AlertHub {
    /// A hub for one shard, forwarding into `tx`.
    pub fn new(
        shard: usize,
        tx: Sender<ServiceAlert>,
        metrics: Arc<MetricsRegistry>,
        debounce: u64,
    ) -> Self {
        AlertHub {
            shard,
            tx,
            metrics,
            debounce,
            last_sent: [None; 4],
        }
    }

    /// Forward `alert` unless one of the same kind was forwarded within the
    /// debounce interval. Returns true when forwarded.
    pub fn raise(&mut self, at_decision: u64, alert: Alert) -> bool {
        let kind = AlertKind::of(&alert);
        let slot = kind.index();
        let due = match self.last_sent[slot] {
            None => true,
            Some(at) => at_decision.saturating_sub(at) >= self.debounce.max(1),
        };
        if !due {
            return false;
        }
        self.last_sent[slot] = Some(at_decision);
        self.metrics.alerts.fetch_add(1, Ordering::Relaxed);
        // The receiver may be gone (owner dropped it); alerts are advisory,
        // so a failed send is not an error.
        let _ = self.tx.send(ServiceAlert {
            shard: self.shard,
            at_decision,
            alert,
        });
        true
    }
}

/// One shard's owned guard set.
pub struct ShardGuards {
    fairness: StreamingFairnessMonitor,
    dp: StreamingDpCounter,
    accountant: PrivacyAccountant,
    drift: Option<DriftMonitor>,
}

impl ShardGuards {
    /// Build the guard set for one shard. `seed` decorrelates the DP noise
    /// streams across shards.
    pub fn new(cfg: &GuardConfig, seed: u64) -> Result<Self> {
        let drift = match &cfg.drift {
            Some((reference, n_bins, window, threshold)) => {
                Some(DriftMonitor::new(reference, *n_bins, *window, *threshold)?)
            }
            None => None,
        };
        Ok(ShardGuards {
            fairness: StreamingFairnessMonitor::new(
                cfg.fairness_window,
                cfg.min_di,
                cfg.min_samples_per_group,
            )?,
            dp: StreamingDpCounter::new(cfg.dp_interval, cfg.epsilon_per_release, seed)?,
            accountant: PrivacyAccountant::pure(cfg.epsilon_budget)?,
            drift,
        })
    }

    /// Observe one served decision; collected alerts are appended to `out`.
    pub fn observe(&mut self, group_b: bool, favorable: bool, score: f64, out: &mut Vec<Alert>) {
        if let Some(a) = self.fairness.observe(group_b, favorable) {
            out.push(a);
        }
        if let Some(a) = self.dp.observe(&mut self.accountant) {
            out.push(a);
        }
        if let Some(d) = &mut self.drift {
            if let Some(a) = d.observe(score) {
                out.push(Alert::Drift(a));
            }
        }
    }

    /// ε this shard has spent so far.
    pub fn epsilon_spent(&self) -> f64 {
        self.accountant.spent_epsilon()
    }

    /// Serialize this guard set's resumable state: the fairness window as
    /// a segment summary, the full ε ledger, and the DP counter's
    /// counters. The drift monitor's score window is excluded by design
    /// (see the [`checkpoint`](crate::checkpoint) module docs).
    pub fn checkpoint(
        &self,
        shard: usize,
        decisions: u64,
        segment_events: usize,
    ) -> Result<GuardCheckpoint> {
        Ok(GuardCheckpoint {
            shard: shard as u64,
            decisions,
            window: self.fairness.summary(segment_events)?,
            ledger: self
                .accountant
                .ledger()
                .iter()
                .map(|e| LedgerEntry {
                    label: e.label.clone(),
                    epsilon: e.epsilon,
                    delta: e.delta,
                })
                .collect(),
            budget_epsilon: self.accountant.budget_epsilon(),
            budget_delta: self.accountant.budget_delta(),
            dp_pending: self.dp.pending() as u64,
            dp_exhausted: self.dp.exhausted_reported(),
        })
    }

    /// Resume a freshly-constructed guard set from `ck`: the fairness
    /// window is resynthesized from the summary (exact per-segment
    /// counts), the accountant replays every ledger entry, and the DP
    /// counter picks up its pending count mid-interval. Must be called
    /// before the guards observe anything.
    pub fn restore(&mut self, ck: &GuardCheckpoint) -> Result<()> {
        self.fairness.restore(&ck.window);
        for e in &ck.ledger {
            self.accountant.spend(e.epsilon, e.delta, e.label.clone())?;
        }
        self.dp.restore(ck.dp_pending as usize, ck.dp_exhausted);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc::channel;

    #[test]
    fn hub_debounces_per_kind() {
        let (tx, rx) = channel();
        let metrics = Arc::new(MetricsRegistry::new(1));
        let mut hub = AlertHub::new(0, tx, Arc::clone(&metrics), 100);
        let fv = Alert::FairnessViolation {
            rate_protected: 0.1,
            rate_unprotected: 0.9,
            disparate_impact: 0.11,
        };
        assert!(hub.raise(10, fv.clone()));
        assert!(!hub.raise(50, fv.clone()), "within debounce window");
        // a different kind is not suppressed by the fairness debounce
        assert!(hub.raise(50, Alert::BudgetExhausted));
        assert!(hub.raise(110, fv));
        drop(hub);
        assert_eq!(rx.iter().count(), 3);
        assert_eq!(metrics.alerts.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn guards_spend_epsilon_and_alert_on_disparity() {
        let cfg = GuardConfig {
            fairness_window: 200,
            min_samples_per_group: 20,
            dp_interval: 50,
            ..GuardConfig::default()
        };
        let mut g = ShardGuards::new(&cfg, 7).unwrap();
        let mut alerts = Vec::new();
        for i in 0..400 {
            let group_b = i % 2 == 0;
            // group B almost never favored
            let favorable = !group_b || i % 20 == 0;
            g.observe(group_b, favorable, 0.5, &mut alerts);
        }
        assert!(alerts
            .iter()
            .any(|a| matches!(a, Alert::FairnessViolation { .. })));
        assert!(alerts.iter().any(|a| matches!(a, Alert::DpRelease { .. })));
        assert!(g.epsilon_spent() > 0.0);
    }

    #[test]
    fn checkpoint_restore_resumes_window_and_ledger() {
        let cfg = GuardConfig {
            fairness_window: 200,
            min_samples_per_group: 20,
            dp_interval: 50,
            ..GuardConfig::default()
        };
        let mut g = ShardGuards::new(&cfg, 7).unwrap();
        let mut alerts = Vec::new();
        for i in 0..333 {
            g.observe(i % 2 == 0, i % 3 != 0, 0.5, &mut alerts);
        }
        let ck = g.checkpoint(2, 333, 25).unwrap();
        assert_eq!(ck.shard, 2);
        assert_eq!(ck.decisions, 333);
        // 333 decisions at dp_interval 50 → 6 releases recorded
        assert_eq!(ck.ledger.len(), 6);
        assert_eq!(ck.dp_pending, 33);

        let mut restored = ShardGuards::new(&cfg, 7).unwrap();
        restored.restore(&ck).unwrap();
        assert!((restored.epsilon_spent() - g.epsilon_spent()).abs() < 1e-12);
        // the restored window carries the same counts forward: a second
        // checkpoint from the restored guards matches the original
        let ck2 = restored.checkpoint(2, 333, 25).unwrap();
        assert_eq!(ck2.window.counts(), ck.window.counts());
        assert_eq!(ck2.dp_pending, ck.dp_pending);
        // and the DP cadence resumes mid-interval: 17 more decisions
        // complete the 50-decision interval and release exactly once
        alerts.clear();
        for i in 0..17 {
            restored.observe(i % 2 == 0, true, 0.5, &mut alerts);
        }
        assert_eq!(
            alerts
                .iter()
                .filter(|a| matches!(a, Alert::DpRelease { .. }))
                .count(),
            1
        );
    }

    #[test]
    fn drift_guard_fires_on_score_shift() {
        let reference: Vec<f64> = (0..1000).map(|i| (i % 100) as f64 / 100.0).collect();
        let cfg = GuardConfig {
            drift: Some((reference, 10, 100, 0.2)),
            ..GuardConfig::default()
        };
        let mut g = ShardGuards::new(&cfg, 1).unwrap();
        let mut alerts = Vec::new();
        for i in 0..400 {
            // scores pinned high: far from the uniform reference
            g.observe(i % 2 == 0, true, 0.95, &mut alerts);
        }
        assert!(alerts.iter().any(|a| matches!(a, Alert::Drift(_))));
    }
}
