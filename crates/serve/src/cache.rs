//! A sharded TTL feature cache with negative caching and single-flight
//! stampede protection — a decorator over any [`FeatureSource`].
//!
//! Experiment E11 prices the remote feature fetch at ~1 ms per micro-batch:
//! every batch pays it, even when the same users decide again seconds
//! later, and a store outage hits the [`DegradePolicy`] on the very first
//! batch. [`CachedFeatureSource`] sits between the shard workers and the
//! store so that
//!
//! * **repeat keys are free** — a fresh positive entry answers without any
//!   upstream work, so steady-state batch latency drops from one round
//!   trip to a map lookup (measured ≥5× in `exp_e14`);
//! * **outages are bridged** — recently fetched rows keep serving while
//!   the store is down, and keys that just *failed* are negative-cached so
//!   a dead store is not hammered once per batch;
//! * **cold-key stampedes collapse** — concurrent micro-batches missing on
//!   the same key issue **one** upstream call; the rest wait for the
//!   leader's result (single-flight).
//!
//! ## Lookup semantics
//!
//! Each key in a batch resolves against its lock stripe as follows:
//!
//! | entry found            | age               | action                                   | counter         |
//! |------------------------|-------------------|------------------------------------------|-----------------|
//! | positive (feature row) | `< positive_ttl`  | serve cached row, no upstream call       | `hits`          |
//! | positive (feature row) | `≥ positive_ttl`  | drop entry, treat as miss                | `misses`        |
//! | negative (recent error)| `< negative_ttl`  | fail the whole batch fast, no upstream   | `negative_hits` |
//! | negative (recent error)| `≥ negative_ttl`  | drop entry, retry upstream (miss)        | `misses`        |
//! | none                   | —                 | claim or join an in-flight upstream call | `misses`        |
//!
//! Ahead of the table, one check applies to *every* entry: an entry
//! stamped before the last [`invalidate`](CachedFeatureSource::invalidate)
//! call is stale regardless of TTL — it is dropped on access, counted in
//! `CacheStats::invalidated`, and the key treated as a miss. This is the
//! O(1) rollout hook: bumping a generation counter invalidates every
//! resident row without touching a single stripe lock.
//!
//! A batch with any fresh **negative** key fails with the cached error
//! before any upstream call is issued: during an outage the store sees at
//! most one probe per key per `negative_ttl`, and recovery is automatic —
//! the short TTL expires and the next batch retries, so the cache never
//! serves stale absence forever. Misses are fetched **in one upstream
//! call per batch** (the cached slice and the fetched slice are merged
//! back in request order), and an upstream *error* negative-caches every
//! key of that fetch for `negative_ttl`.
//!
//! ## Soundness contract
//!
//! Caching is keyed by `route_key` alone, so it is transparent only when
//! the upstream source is **key-deterministic within a TTL window**: equal
//! keys must map to equal rows, as a real feature store keyed by entity id
//! does. ([`InlineFeatures`] qualifies whenever requests carry
//! key-consistent vectors; the transparency property test in
//! `crates/serve/tests/cache_transparency.rs` holds the decorator to
//! row-for-row identity under exactly that contract.)
//!
//! ## Time
//!
//! All expiry decisions go through a [`Clock`], so TTL expiry, negative-
//! cache recovery, and outage bridging are deterministically testable with
//! a [`ManualClock`] — no sleeps, no wall-clock flakiness. Production uses
//! the zero-cost [`SystemClock`].
//!
//! [`DegradePolicy`]: crate::guards::DegradePolicy
//! [`InlineFeatures`]: crate::source::InlineFeatures

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use fact_data::{FactError, Matrix, Result};

use crate::metrics::CacheStats;
use crate::source::FeatureSource;

/// An injectable time source for TTL decisions.
///
/// The cache never calls `Instant::now()` directly; every expiry check
/// asks the clock, which is what makes TTL behaviour reproducible in
/// tests ([`ManualClock`]) and free in production ([`SystemClock`]).
pub trait Clock: Send + Sync {
    /// The current instant.
    fn now(&self) -> Instant;
}

/// The production clock: `Instant::now()`.
#[derive(Debug, Clone, Copy, Default)]
pub struct SystemClock;

impl Clock for SystemClock {
    fn now(&self) -> Instant {
        Instant::now()
    }
}

/// A test clock that only moves when [`advance`](ManualClock::advance) is
/// called, so TTL expiry and negative-cache recovery replay exactly.
#[derive(Debug)]
pub struct ManualClock {
    base: Instant,
    offset_nanos: AtomicU64,
}

impl ManualClock {
    /// A clock frozen at construction time.
    pub fn new() -> Self {
        ManualClock {
            base: Instant::now(),
            offset_nanos: AtomicU64::new(0),
        }
    }

    /// Move the clock forward by `by` (never backward).
    pub fn advance(&self, by: Duration) {
        self.offset_nanos.fetch_add(
            by.as_nanos().min(u128::from(u64::MAX)) as u64,
            Ordering::SeqCst,
        );
    }
}

impl Default for ManualClock {
    fn default() -> Self {
        ManualClock::new()
    }
}

impl Clock for ManualClock {
    fn now(&self) -> Instant {
        self.base + Duration::from_nanos(self.offset_nanos.load(Ordering::SeqCst))
    }
}

/// Tuning for a [`CachedFeatureSource`].
#[derive(Debug, Clone)]
pub struct CacheConfig {
    /// Lock stripes the key space is sharded over; concurrent batches on
    /// different stripes never contend.
    pub stripes: usize,
    /// How long a fetched feature row stays servable.
    pub positive_ttl: Duration,
    /// How long a failed key fails fast before the upstream is probed
    /// again. Keep this short: it is the outage's re-probe interval.
    pub negative_ttl: Duration,
    /// Entries one stripe holds before inserting evicts the entry closest
    /// to expiry.
    pub capacity_per_stripe: usize,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig {
            stripes: 16,
            positive_ttl: Duration::from_secs(60),
            negative_ttl: Duration::from_secs(2),
            capacity_per_stripe: 4_096,
        }
    }
}

/// What a cache entry remembers about a key.
#[derive(Debug, Clone)]
enum Cached {
    /// A feature row fetched from upstream.
    Row(Vec<f64>),
    /// The upstream recently failed for this key; the string is the error
    /// replayed to fast-failing batches.
    Negative(String),
}

#[derive(Debug)]
struct Entry {
    value: Cached,
    expires_at: Instant,
    /// The cache generation this entry was fetched under; entries from an
    /// older generation are stale regardless of TTL and are dropped lazily.
    generation: u64,
}

/// One single-flight ticket: the leader completes it once its upstream
/// call has been published to the map (success *or* failure).
#[derive(Default)]
struct Flight {
    done: Mutex<bool>,
    cv: Condvar,
}

impl Flight {
    fn complete(&self) {
        let mut done = self.done.lock().unwrap_or_else(|e| e.into_inner());
        *done = true;
        self.cv.notify_all();
    }

    /// Wait until the leader publishes, bounded by `timeout` so a leader
    /// that died mid-fetch (panicked upstream) degrades to a retry instead
    /// of a hang.
    fn wait(&self, timeout: Duration) {
        let deadline = Instant::now() + timeout;
        let mut done = self.done.lock().unwrap_or_else(|e| e.into_inner());
        while !*done {
            let now = Instant::now();
            if now >= deadline {
                return;
            }
            let (guard, _) = self
                .cv
                .wait_timeout(done, deadline - now)
                .unwrap_or_else(|e| e.into_inner());
            done = guard;
        }
    }
}

#[derive(Default)]
struct Stripe {
    map: HashMap<u64, Entry>,
    /// Keys a leader batch is currently fetching upstream.
    inflight: HashMap<u64, Arc<Flight>>,
}

/// How one key classified during the lookup pass.
enum Lookup {
    Hit(Vec<f64>),
    NegativeHit(String),
    Miss,
}

/// A caching decorator over any [`FeatureSource`]: sharded TTL map,
/// negative caching, single-flight stampede protection. See the module
/// docs for semantics; construction:
///
/// ```
/// use std::sync::Arc;
/// use std::time::Duration;
/// use fact_serve::{CacheConfig, CachedFeatureSource, FeatureSource, InlineFeatures};
///
/// let cached = CachedFeatureSource::new(
///     Arc::new(InlineFeatures),
///     CacheConfig { positive_ttl: Duration::from_secs(30), ..CacheConfig::default() },
/// );
/// let m = cached.fetch_batch(&[1, 2, 1], &[vec![0.1], vec![0.2], vec![0.1]]).unwrap();
/// assert_eq!(m.rows(), 3);
/// assert_eq!(cached.stats().snapshot().misses, 2); // key 1 deduplicated
/// ```
///
/// Inside the service, set [`ServeConfig::cache`] instead and
/// [`DecisionService::start_with_source`] wraps whatever source you give
/// it, wiring the counters into the service metrics and final report.
///
/// [`ServeConfig::cache`]: crate::service::ServeConfig::cache
/// [`DecisionService::start_with_source`]: crate::service::DecisionService::start_with_source
pub struct CachedFeatureSource {
    inner: Arc<dyn FeatureSource>,
    stripes: Vec<Mutex<Stripe>>,
    config: CacheConfig,
    clock: Arc<dyn Clock>,
    stats: Arc<CacheStats>,
    /// Bumped by [`invalidate`](CachedFeatureSource::invalidate); entries
    /// stamped with an older value are dropped on their next access.
    generation: AtomicU64,
}

impl CachedFeatureSource {
    /// Wrap `inner` with the system clock and fresh counters.
    pub fn new(inner: Arc<dyn FeatureSource>, config: CacheConfig) -> Self {
        Self::with_clock_and_stats(
            inner,
            config,
            Arc::new(SystemClock),
            Arc::new(CacheStats::default()),
        )
    }

    /// Wrap `inner` with an explicit [`Clock`] — the deterministic-test
    /// entry point.
    pub fn with_clock(
        inner: Arc<dyn FeatureSource>,
        config: CacheConfig,
        clock: Arc<dyn Clock>,
    ) -> Self {
        Self::with_clock_and_stats(inner, config, clock, Arc::new(CacheStats::default()))
    }

    /// Wrap `inner` with an explicit clock *and* externally shared
    /// counters (how the service wires the cache into its
    /// [`MetricsRegistry`](crate::metrics::MetricsRegistry)).
    pub fn with_clock_and_stats(
        inner: Arc<dyn FeatureSource>,
        config: CacheConfig,
        clock: Arc<dyn Clock>,
        stats: Arc<CacheStats>,
    ) -> Self {
        let stripes = config.stripes.max(1);
        CachedFeatureSource {
            inner,
            stripes: (0..stripes)
                .map(|_| Mutex::new(Stripe::default()))
                .collect(),
            config,
            clock,
            stats,
            generation: AtomicU64::new(0),
        }
    }

    /// The shared counters (hits, misses, negative hits, evictions,
    /// coalesced flights, upstream batches).
    pub fn stats(&self) -> &Arc<CacheStats> {
        &self.stats
    }

    /// Entries currently resident (positive and negative, fresh or not —
    /// expired entries are dropped lazily on access).
    pub fn len(&self) -> usize {
        self.stripes
            .iter()
            .map(|s| s.lock().unwrap_or_else(|e| e.into_inner()).map.len())
            .sum()
    }

    /// Whether the cache holds no entries at all.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop every entry (e.g. after a model or schema rollout invalidates
    /// the feature space).
    pub fn clear(&self) {
        for s in &self.stripes {
            let mut s = s.lock().unwrap_or_else(|e| e.into_inner());
            s.map.clear();
        }
    }

    /// Invalidate every resident entry **without** taking the stripe locks:
    /// bumps the generation counter, so entries stamped before the bump are
    /// dropped lazily the next time they are looked at (and counted in
    /// [`CacheStats::invalidated`]). O(1), safe to call from any thread mid-
    /// traffic — the hook a model or schema rollout uses when cached rows
    /// must not outlive the rollout. Unlike [`clear`](Self::clear) it also
    /// stales entries a concurrent batch is *about to insert*: inserts are
    /// stamped with the generation read at batch start, so a fetch that
    /// raced the invalidation publishes rows that are already stale.
    pub fn invalidate(&self) {
        self.generation.fetch_add(1, Ordering::SeqCst);
    }

    /// The current cache generation (bumps once per
    /// [`invalidate`](Self::invalidate) call).
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::SeqCst)
    }

    fn stripe(&self, key: u64) -> &Mutex<Stripe> {
        // splitmix64-style scramble so sequential keys spread over stripes
        let mut h = key.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        h ^= h >> 32;
        &self.stripes[(h % self.stripes.len() as u64) as usize]
    }

    /// Classify `key` against its stripe, dropping an entry that is expired
    /// or stamped before generation `gen` (invalidated).
    fn lookup(&self, key: u64, now: Instant, gen: u64) -> Lookup {
        let mut s = self.stripe(key).lock().unwrap_or_else(|e| e.into_inner());
        match s.map.get(&key) {
            Some(e) if e.generation < gen => {
                s.map.remove(&key);
                self.stats.invalidated.fetch_add(1, Ordering::Relaxed);
                Lookup::Miss
            }
            Some(e) if e.expires_at > now => match &e.value {
                Cached::Row(row) => Lookup::Hit(row.clone()),
                Cached::Negative(reason) => Lookup::NegativeHit(reason.clone()),
            },
            Some(_) => {
                s.map.remove(&key);
                Lookup::Miss
            }
            None => Lookup::Miss,
        }
    }

    /// Insert under the stripe lock, evicting the entry closest to expiry
    /// when the stripe is at capacity.
    fn insert(&self, key: u64, value: Cached, ttl: Duration, now: Instant, gen: u64) {
        let cap = self.config.capacity_per_stripe.max(1);
        let mut s = self.stripe(key).lock().unwrap_or_else(|e| e.into_inner());
        if s.map.len() >= cap && !s.map.contains_key(&key) {
            // free drops first: expired entries are not worth an eviction
            s.map.retain(|_, e| e.expires_at > now);
            while s.map.len() >= cap {
                let victim = s
                    .map
                    .iter()
                    .min_by_key(|(_, e)| e.expires_at)
                    .map(|(&k, _)| k);
                match victim {
                    Some(k) => {
                        s.map.remove(&k);
                        self.stats.evictions.fetch_add(1, Ordering::Relaxed);
                    }
                    None => break,
                }
            }
        }
        s.map.insert(
            key,
            Entry {
                value,
                expires_at: now + ttl,
                generation: gen,
            },
        );
    }

    /// Fetch `keys` (with their first-occurrence inline rows) upstream and
    /// publish the outcome: rows on success, negatives on failure. Returns
    /// the upstream error, if any.
    fn fetch_and_publish(
        &self,
        keys: &[u64],
        inline: &[Vec<f64>],
        now: Instant,
        gen: u64,
        resolved: &mut HashMap<u64, Vec<f64>>,
    ) -> Option<FactError> {
        self.stats.upstream_batches.fetch_add(1, Ordering::Relaxed);
        match self.inner.fetch_batch(keys, inline) {
            Ok(m) if m.rows() == keys.len() => {
                for (i, &k) in keys.iter().enumerate() {
                    let row = m.row(i).to_vec();
                    self.insert(
                        k,
                        Cached::Row(row.clone()),
                        self.config.positive_ttl,
                        now,
                        gen,
                    );
                    resolved.insert(k, row);
                }
                None
            }
            Ok(m) => {
                let err = FactError::InvalidArgument(format!(
                    "feature source returned {} rows for {} keys",
                    m.rows(),
                    keys.len()
                ));
                let reason = err.to_string();
                for &k in keys {
                    self.insert(
                        k,
                        Cached::Negative(reason.clone()),
                        self.config.negative_ttl,
                        now,
                        gen,
                    );
                }
                Some(err)
            }
            Err(err) => {
                let reason = err.to_string();
                for &k in keys {
                    self.insert(
                        k,
                        Cached::Negative(reason.clone()),
                        self.config.negative_ttl,
                        now,
                        gen,
                    );
                }
                Some(err)
            }
        }
    }

    fn negative_error(reason: &str) -> FactError {
        FactError::Io(std::io::Error::new(
            std::io::ErrorKind::ConnectionRefused,
            format!("negative-cached feature fetch: {reason}"),
        ))
    }
}

/// How long a follower waits on a leader's in-flight fetch before falling
/// back to its own upstream call. Generous: it only binds if a leader
/// *panicked* between claiming and publishing.
const FLIGHT_TIMEOUT: Duration = Duration::from_secs(30);

impl FeatureSource for CachedFeatureSource {
    fn fetch_batch(&self, keys: &[u64], inline: &[Vec<f64>]) -> Result<Matrix> {
        if keys.len() != inline.len() {
            return Err(FactError::LengthMismatch {
                expected: keys.len(),
                actual: inline.len(),
            });
        }
        let now = self.clock.now();
        // One generation per batch: entries this batch inserts carry it, so
        // an invalidation that lands mid-batch stales them retroactively.
        let gen = self.generation.load(Ordering::SeqCst);

        // Deduplicate keys, remembering each key's first row index so the
        // upstream sees one (key, inline) pair per distinct key.
        let mut first_idx: HashMap<u64, usize> = HashMap::with_capacity(keys.len());
        let mut uniq: Vec<u64> = Vec::with_capacity(keys.len());
        for (i, &k) in keys.iter().enumerate() {
            first_idx.entry(k).or_insert_with(|| {
                uniq.push(k);
                i
            });
        }

        // Pass 1 — classify every distinct key.
        let mut resolved: HashMap<u64, Vec<f64>> = HashMap::with_capacity(uniq.len());
        let mut missing: Vec<u64> = Vec::new();
        for &k in &uniq {
            match self.lookup(k, now, gen) {
                Lookup::Hit(row) => {
                    self.stats.hits.fetch_add(1, Ordering::Relaxed);
                    resolved.insert(k, row);
                }
                Lookup::NegativeHit(reason) => {
                    self.stats.negative_hits.fetch_add(1, Ordering::Relaxed);
                    return Err(Self::negative_error(&reason));
                }
                Lookup::Miss => {
                    self.stats.misses.fetch_add(1, Ordering::Relaxed);
                    missing.push(k);
                }
            }
        }

        // Pass 2 — for each miss, claim the flight (we will fetch it) or
        // join one already in the air (another batch is fetching it).
        let mut claimed: Vec<u64> = Vec::new();
        let mut joined: Vec<(u64, Arc<Flight>)> = Vec::new();
        for &k in &missing {
            let mut s = self.stripe(k).lock().unwrap_or_else(|e| e.into_inner());
            // the key may have landed while we classified other stripes
            if let Some(e) = s.map.get(&k) {
                if e.generation < gen {
                    s.map.remove(&k);
                    self.stats.invalidated.fetch_add(1, Ordering::Relaxed);
                } else if e.expires_at > now {
                    match &e.value {
                        Cached::Row(row) => {
                            resolved.insert(k, row.clone());
                            continue;
                        }
                        Cached::Negative(reason) => {
                            let reason = reason.clone();
                            drop(s);
                            self.stats.negative_hits.fetch_add(1, Ordering::Relaxed);
                            self.release_claims(&claimed);
                            return Err(Self::negative_error(&reason));
                        }
                    }
                }
            }
            match s.inflight.get(&k) {
                Some(f) => {
                    self.stats.coalesced.fetch_add(1, Ordering::Relaxed);
                    joined.push((k, Arc::clone(f)));
                }
                None => {
                    s.inflight.insert(k, Arc::new(Flight::default()));
                    claimed.push(k);
                }
            }
        }

        // Pass 3 — leader fetch: one upstream call for everything we
        // claimed, publish, then land the flights (success or failure).
        let mut upstream_err: Option<FactError> = None;
        if !claimed.is_empty() {
            let claimed_inline: Vec<Vec<f64>> = claimed
                .iter()
                .map(|k| inline[first_idx[k]].clone())
                .collect();
            upstream_err =
                self.fetch_and_publish(&claimed, &claimed_inline, now, gen, &mut resolved);
            self.release_claims(&claimed);
        }
        if let Some(err) = upstream_err {
            return Err(err);
        }

        // Pass 4 — wait out flights other batches are leading, then read
        // what they published. A vanished entry (evicted, or the leader
        // died) falls back to a retry fetch of our own.
        let mut retry: Vec<u64> = Vec::new();
        for (k, flight) in joined {
            flight.wait(FLIGHT_TIMEOUT);
            match self.lookup(k, now, gen) {
                Lookup::Hit(row) => {
                    resolved.insert(k, row);
                }
                Lookup::NegativeHit(reason) => {
                    self.stats.negative_hits.fetch_add(1, Ordering::Relaxed);
                    return Err(Self::negative_error(&reason));
                }
                Lookup::Miss => retry.push(k),
            }
        }
        if !retry.is_empty() {
            let retry_inline: Vec<Vec<f64>> =
                retry.iter().map(|k| inline[first_idx[k]].clone()).collect();
            if let Some(err) =
                self.fetch_and_publish(&retry, &retry_inline, now, gen, &mut resolved)
            {
                return Err(err);
            }
        }

        // Reassemble in request order (duplicates included).
        let rows: Vec<Vec<f64>> = keys
            .iter()
            .map(|k| resolved.get(k).cloned().expect("every key resolved"))
            .collect();
        Matrix::from_rows(&rows)
    }
}

impl CachedFeatureSource {
    /// Land every claimed flight: remove it from the stripe and wake the
    /// batches that joined it.
    fn release_claims(&self, claimed: &[u64]) {
        for &k in claimed {
            let flight = {
                let mut s = self.stripe(k).lock().unwrap_or_else(|e| e.into_inner());
                s.inflight.remove(&k)
            };
            if let Some(f) = flight {
                f.complete();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::{FailingFeatureSource, InlineFeatures};
    use std::sync::atomic::AtomicU64;
    use std::sync::Barrier;

    /// Key-deterministic upstream: row = [key/100, key/100 + 1], counting
    /// calls and optionally stalling (for stampede tests).
    struct KeyedSource {
        calls: AtomicU64,
        keys_fetched: AtomicU64,
        stall: Duration,
    }

    impl KeyedSource {
        fn new() -> Self {
            KeyedSource {
                calls: AtomicU64::new(0),
                keys_fetched: AtomicU64::new(0),
                stall: Duration::ZERO,
            }
        }

        fn slow(stall: Duration) -> Self {
            KeyedSource {
                stall,
                ..KeyedSource::new()
            }
        }

        fn row_for(k: u64) -> Vec<f64> {
            vec![k as f64 / 100.0, k as f64 / 100.0 + 1.0]
        }
    }

    impl FeatureSource for KeyedSource {
        fn fetch_batch(&self, keys: &[u64], _inline: &[Vec<f64>]) -> Result<Matrix> {
            self.calls.fetch_add(1, Ordering::SeqCst);
            self.keys_fetched
                .fetch_add(keys.len() as u64, Ordering::SeqCst);
            if !self.stall.is_zero() {
                std::thread::sleep(self.stall);
            }
            let rows: Vec<Vec<f64>> = keys.iter().map(|&k| Self::row_for(k)).collect();
            Matrix::from_rows(&rows)
        }
    }

    fn small_config() -> CacheConfig {
        CacheConfig {
            stripes: 4,
            positive_ttl: Duration::from_secs(10),
            negative_ttl: Duration::from_secs(1),
            capacity_per_stripe: 64,
        }
    }

    fn inline_for(keys: &[u64]) -> Vec<Vec<f64>> {
        keys.iter().map(|&k| vec![k as f64]).collect()
    }

    #[test]
    fn second_fetch_is_served_from_cache() {
        let upstream = Arc::new(KeyedSource::new());
        let cache = CachedFeatureSource::new(Arc::clone(&upstream) as Arc<_>, small_config());
        let keys = [1u64, 2, 3];
        let a = cache.fetch_batch(&keys, &inline_for(&keys)).unwrap();
        let b = cache.fetch_batch(&keys, &inline_for(&keys)).unwrap();
        assert_eq!(a.as_slice(), b.as_slice());
        assert_eq!(upstream.calls.load(Ordering::SeqCst), 1);
        let snap = cache.stats().snapshot();
        assert_eq!(snap.misses, 3);
        assert_eq!(snap.hits, 3);
        assert_eq!(snap.upstream_batches, 1);
    }

    #[test]
    fn partial_hit_fetches_only_the_misses_and_preserves_row_order() {
        let upstream = Arc::new(KeyedSource::new());
        let cache = CachedFeatureSource::new(Arc::clone(&upstream) as Arc<_>, small_config());
        cache
            .fetch_batch(&[10, 20], &inline_for(&[10, 20]))
            .unwrap();
        assert_eq!(upstream.keys_fetched.load(Ordering::SeqCst), 2);
        // 30 and 40 are cold; 10 and 20 are warm; order must be preserved
        let keys = [30u64, 10, 40, 20];
        let m = cache.fetch_batch(&keys, &inline_for(&keys)).unwrap();
        assert_eq!(upstream.calls.load(Ordering::SeqCst), 2);
        assert_eq!(upstream.keys_fetched.load(Ordering::SeqCst), 4);
        for (i, &k) in keys.iter().enumerate() {
            assert_eq!(m.row(i), KeyedSource::row_for(k).as_slice(), "row {i}");
        }
    }

    #[test]
    fn duplicate_keys_in_one_batch_fetch_once() {
        let upstream = Arc::new(KeyedSource::new());
        let cache = CachedFeatureSource::new(Arc::clone(&upstream) as Arc<_>, small_config());
        let keys = [7u64, 7, 7, 8];
        let m = cache.fetch_batch(&keys, &inline_for(&keys)).unwrap();
        assert_eq!(m.rows(), 4);
        assert_eq!(upstream.keys_fetched.load(Ordering::SeqCst), 2);
        assert_eq!(m.row(0), m.row(1));
        assert_eq!(cache.stats().snapshot().misses, 2);
    }

    #[test]
    fn positive_ttl_expiry_refetches() {
        let clock = Arc::new(ManualClock::new());
        let upstream = Arc::new(KeyedSource::new());
        let cache = CachedFeatureSource::with_clock(
            Arc::clone(&upstream) as Arc<_>,
            small_config(),
            Arc::clone(&clock) as Arc<_>,
        );
        cache.fetch_batch(&[5], &inline_for(&[5])).unwrap();
        clock.advance(Duration::from_secs(9));
        cache.fetch_batch(&[5], &inline_for(&[5])).unwrap();
        assert_eq!(upstream.calls.load(Ordering::SeqCst), 1, "still fresh");
        clock.advance(Duration::from_secs(2)); // now 11s > 10s ttl
        cache.fetch_batch(&[5], &inline_for(&[5])).unwrap();
        assert_eq!(
            upstream.calls.load(Ordering::SeqCst),
            2,
            "expired → refetch"
        );
    }

    #[test]
    fn negative_cache_fails_fast_then_recovers_after_its_ttl() {
        let clock = Arc::new(ManualClock::new());
        let failing =
            Arc::new(FailingFeatureSource::new(Arc::new(KeyedSource::new())).fail_window(0, 1));
        let cache = CachedFeatureSource::with_clock(
            Arc::clone(&failing) as Arc<_>,
            small_config(),
            Arc::clone(&clock) as Arc<_>,
        );
        // first fetch hits the injected outage and is negative-cached
        assert!(cache.fetch_batch(&[9], &inline_for(&[9])).is_err());
        assert_eq!(failing.fetches(), 1);
        // fast-fail without touching the upstream while the entry is fresh
        for _ in 0..5 {
            assert!(cache.fetch_batch(&[9], &inline_for(&[9])).is_err());
        }
        assert_eq!(failing.fetches(), 1, "outage must not be hammered");
        assert_eq!(cache.stats().snapshot().negative_hits, 5);
        // after negative_ttl the upstream (now healed) is probed again
        clock.advance(Duration::from_secs(2));
        let m = cache.fetch_batch(&[9], &inline_for(&[9])).unwrap();
        assert_eq!(m.rows(), 1);
        assert_eq!(failing.fetches(), 2);
    }

    #[test]
    fn warm_entries_bridge_an_outage() {
        let clock = Arc::new(ManualClock::new());
        let failing =
            Arc::new(FailingFeatureSource::new(Arc::new(KeyedSource::new())).fail_from(1));
        let cache = CachedFeatureSource::with_clock(
            Arc::clone(&failing) as Arc<_>,
            small_config(),
            Arc::clone(&clock) as Arc<_>,
        );
        // warm while healthy (fetch 0 succeeds), then the store dies
        let keys = [1u64, 2, 3, 4];
        cache.fetch_batch(&keys, &inline_for(&keys)).unwrap();
        for _ in 0..10 {
            let m = cache.fetch_batch(&keys, &inline_for(&keys)).unwrap();
            assert_eq!(m.rows(), 4);
        }
        assert_eq!(failing.fetches(), 1, "outage never even observed");
        // a cold key during the outage fails (and is negative-cached) …
        assert!(cache.fetch_batch(&[99], &inline_for(&[99])).is_err());
        assert_eq!(failing.failures(), 1);
        // … but the warm keys keep serving
        assert!(cache.fetch_batch(&keys, &inline_for(&keys)).is_ok());
    }

    #[test]
    fn capacity_evicts_the_entry_closest_to_expiry() {
        let cfg = CacheConfig {
            stripes: 1,
            capacity_per_stripe: 2,
            ..small_config()
        };
        let upstream = Arc::new(KeyedSource::new());
        let clock = Arc::new(ManualClock::new());
        let cache = CachedFeatureSource::with_clock(
            Arc::clone(&upstream) as Arc<_>,
            cfg,
            Arc::clone(&clock) as Arc<_>,
        );
        cache.fetch_batch(&[1], &inline_for(&[1])).unwrap();
        clock.advance(Duration::from_secs(1)); // key 1 now expires first
        cache.fetch_batch(&[2], &inline_for(&[2])).unwrap();
        cache.fetch_batch(&[3], &inline_for(&[3])).unwrap(); // evicts 1
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.stats().snapshot().evictions, 1);
        cache.fetch_batch(&[2], &inline_for(&[2])).unwrap(); // still warm
        assert_eq!(upstream.calls.load(Ordering::SeqCst), 3);
        cache.fetch_batch(&[1], &inline_for(&[1])).unwrap(); // was evicted
        assert_eq!(upstream.calls.load(Ordering::SeqCst), 4);
    }

    #[test]
    fn stampede_on_one_cold_key_issues_one_upstream_call() {
        let upstream = Arc::new(KeyedSource::slow(Duration::from_millis(30)));
        let cache = Arc::new(CachedFeatureSource::new(
            Arc::clone(&upstream) as Arc<_>,
            small_config(),
        ));
        let n = 8;
        let barrier = Arc::new(Barrier::new(n));
        let mut handles = Vec::new();
        for _ in 0..n {
            let cache = Arc::clone(&cache);
            let barrier = Arc::clone(&barrier);
            handles.push(std::thread::spawn(move || {
                barrier.wait();
                cache.fetch_batch(&[42], &inline_for(&[42])).unwrap()
            }));
        }
        for h in handles {
            let m = h.join().unwrap();
            assert_eq!(m.row(0), KeyedSource::row_for(42).as_slice());
        }
        assert_eq!(
            upstream.calls.load(Ordering::SeqCst),
            1,
            "single-flight must collapse the stampede"
        );
        assert!(cache.stats().snapshot().coalesced >= 1);
    }

    #[test]
    fn invalidate_drops_entries_lazily_and_counts_them() {
        let upstream = Arc::new(KeyedSource::new());
        let cache = CachedFeatureSource::new(Arc::clone(&upstream) as Arc<_>, small_config());
        let keys = [1u64, 2, 3];
        cache.fetch_batch(&keys, &inline_for(&keys)).unwrap();
        assert_eq!(upstream.calls.load(Ordering::SeqCst), 1);
        assert_eq!(cache.generation(), 0);

        // invalidate is O(1): entries stay resident until touched
        cache.invalidate();
        assert_eq!(cache.generation(), 1);
        assert_eq!(cache.len(), 3, "drop is lazy, not eager");
        assert_eq!(cache.stats().snapshot().invalidated, 0);

        // the next batch must refetch — TTL-fresh entries are still stale
        let m = cache.fetch_batch(&keys, &inline_for(&keys)).unwrap();
        assert_eq!(m.rows(), 3);
        assert_eq!(upstream.calls.load(Ordering::SeqCst), 2, "refetched");
        let snap = cache.stats().snapshot();
        assert_eq!(snap.invalidated, 3);
        assert_eq!(snap.hits, 0, "nothing survived the invalidation");

        // freshly restamped entries serve normally again
        cache.fetch_batch(&keys, &inline_for(&keys)).unwrap();
        assert_eq!(upstream.calls.load(Ordering::SeqCst), 2);
        assert_eq!(cache.stats().snapshot().hits, 3);
        assert_eq!(cache.stats().snapshot().invalidated, 3);
    }

    /// An upstream whose *first* fetch parks on a two-phase gate, so a test
    /// can interleave an action between a batch's generation read (which
    /// happens before the upstream call) and its publish (after).
    struct GatedSource {
        inner: KeyedSource,
        entered: Arc<Barrier>,
        release: Arc<Barrier>,
        first: std::sync::atomic::AtomicBool,
    }

    impl FeatureSource for GatedSource {
        fn fetch_batch(&self, keys: &[u64], inline: &[Vec<f64>]) -> Result<Matrix> {
            if self.first.swap(false, Ordering::SeqCst) {
                self.entered.wait();
                self.release.wait();
            }
            self.inner.fetch_batch(keys, inline)
        }
    }

    #[test]
    fn invalidate_stales_rows_inserted_by_an_in_flight_batch() {
        // A batch that *started* before the invalidation must not publish
        // rows that survive it: inserts carry the generation read at batch
        // start, so the racing batch's rows land already-stale.
        let entered = Arc::new(Barrier::new(2));
        let release = Arc::new(Barrier::new(2));
        let upstream = Arc::new(GatedSource {
            inner: KeyedSource::new(),
            entered: Arc::clone(&entered),
            release: Arc::clone(&release),
            first: std::sync::atomic::AtomicBool::new(true),
        });
        let cache = Arc::new(CachedFeatureSource::new(
            Arc::clone(&upstream) as Arc<_>,
            small_config(),
        ));
        let worker = {
            let cache = Arc::clone(&cache);
            std::thread::spawn(move || {
                cache.fetch_batch(&[77], &inline_for(&[77])).unwrap();
            })
        };
        // Once `entered` trips, the worker has read generation 0 and is
        // parked inside its upstream call; invalidate, then let it publish.
        entered.wait();
        cache.invalidate();
        release.wait();
        worker.join().unwrap();
        assert_eq!(cache.len(), 1, "the stale row was still published");
        // the published row is from generation 0 < 1 → dropped on access
        cache.fetch_batch(&[77], &inline_for(&[77])).unwrap();
        assert_eq!(
            upstream.inner.calls.load(Ordering::SeqCst),
            2,
            "stale published row must be refetched"
        );
        assert_eq!(cache.stats().snapshot().invalidated, 1);
    }

    #[test]
    fn clear_empties_and_mismatched_lengths_error() {
        let cache = CachedFeatureSource::new(Arc::new(InlineFeatures), small_config());
        cache.fetch_batch(&[1, 2], &inline_for(&[1, 2])).unwrap();
        assert_eq!(cache.len(), 2);
        assert!(!cache.is_empty());
        cache.clear();
        assert!(cache.is_empty());
        assert!(matches!(
            cache.fetch_batch(&[1, 2], &inline_for(&[1])),
            Err(FactError::LengthMismatch { .. })
        ));
    }

    #[test]
    fn manual_clock_advances_monotonically() {
        let c = ManualClock::new();
        let t0 = c.now();
        c.advance(Duration::from_millis(5));
        assert_eq!(c.now() - t0, Duration::from_millis(5));
        assert!(SystemClock.now() <= SystemClock.now());
    }
}
