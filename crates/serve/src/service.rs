//! The decision service: sharded workers, micro-batching, admission
//! control, guard-driven degradation, and graceful shutdown.
//!
//! A [`DecisionService`] owns one worker thread per shard. Requests are
//! routed by key hash onto a shard's **bounded** queue (`try_send`): a full
//! queue sheds the request with [`ServeError::Busy`] instead of letting
//! latency collapse — admission control, not buffering. Each worker drains
//! its queue into micro-batches so one matrix-level `predict_proba` call
//! amortizes model overhead across requests, then walks the batch through
//! the shard's FACT guards. A tripped guard engages the configured
//! [`DegradePolicy`] for a cooldown: decisions are flagged for audit or
//! hard-rejected until the cooldown expires.
//!
//! Shutdown drops the queue senders; workers finish whatever is buffered
//! (every accepted request is answered), then report their totals, which
//! are merged into a [`ServiceReport`].

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{
    channel, sync_channel, Receiver, RecvTimeoutError, Sender, SyncSender, TryRecvError,
    TrySendError,
};
use std::sync::{Arc, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use fact_core::runtime::Alert;
use fact_ml::Classifier;
use fact_net::{
    decode as net_decode, encode as net_encode, CheckpointAckWire, ControlAckWire, ControlWire,
    DecisionWire, Endpoint, FrameKind, NetError, PendingReply, RemoteShard, RequestWire,
    ResponseWire,
};

use crate::admission::{AdmissionConfig, AdmissionController, AdmissionDecision};
use crate::audit_sink::{
    AuditEvent, AuditSink, AuditSinkConfig, AuditSinkHandle, AuditStorage, RecoveryReport,
};
use crate::cache::{CacheConfig, CachedFeatureSource, SystemClock};
use crate::checkpoint::{load_checkpoint, write_checkpoint, CheckpointConfig};
use crate::guards::{AlertHub, AlertKind, DegradePolicy, GuardConfig, ServiceAlert, ShardGuards};
use crate::metrics::{AdmissionSnapshot, CacheSnapshot, MetricsRegistry, MetricsSnapshot};
use crate::source::{FeatureSource, InlineFeatures};

/// Errors surfaced to callers of the service.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The target shard's queue is full (or past the adaptive effective
    /// capacity); the request was shed at admission.
    Busy {
        /// Shard whose queue was full.
        shard: usize,
    },
    /// The request's tenant is over its admission quota; retrying after
    /// backoff is the contract (well-behaved tenants never see this).
    Throttled {
        /// Tenant whose token bucket was empty.
        tenant: u64,
    },
    /// The caller's deadline passed before a decision arrived. The request
    /// is *not* cancelled — an accepted request is always served — but the
    /// reply is discarded.
    Timeout {
        /// How long the caller waited.
        waited: Duration,
    },
    /// A guard tripped and the hard-reject policy is active.
    Rejected {
        /// Human-readable reason.
        reason: String,
    },
    /// The request was malformed (e.g. wrong feature count).
    BadRequest(String),
    /// The service is shutting down (or already shut down).
    ShuttingDown,
    /// A live reshard's cutover outlasted the bounded hold window: the
    /// request was neither enqueued nor served. Retrying after backoff is
    /// safe — requests that arrive during cutover are held and replayed
    /// into the new topology, and only the tail past the hold window sees
    /// this error (see [`crate::reshard`]).
    Resharding,
    /// The model failed on this batch.
    Internal(String),
    /// A remote shard failed at the transport level (worker down, torn
    /// connection, malformed reply) or answered with a worker-side error.
    Remote(String),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Busy { shard } => write!(f, "shard {shard} queue full"),
            ServeError::Throttled { tenant } => write!(f, "tenant {tenant} over quota"),
            ServeError::Timeout { waited } => write!(f, "timed out after {waited:?}"),
            ServeError::Rejected { reason } => write!(f, "rejected: {reason}"),
            ServeError::BadRequest(msg) => write!(f, "bad request: {msg}"),
            ServeError::ShuttingDown => write!(f, "service is shutting down"),
            ServeError::Resharding => write!(f, "resharding cutover exceeded the hold window"),
            ServeError::Internal(msg) => write!(f, "internal error: {msg}"),
            ServeError::Remote(msg) => write!(f, "remote shard error: {msg}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl ServeError {
    /// Machine-readable class for the fact-net wire (`ResponseWire.code`),
    /// so a client can rebuild the typed error across the process
    /// boundary. `None` for errors that stay opaque remotely.
    fn wire_code(&self) -> Option<&'static str> {
        match self {
            ServeError::Busy { .. } => Some("busy"),
            ServeError::Throttled { .. } => Some("throttled"),
            ServeError::Rejected { .. } => Some("rejected"),
            ServeError::Resharding => Some("resharding"),
            _ => None,
        }
    }
}

/// Service configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker shards (threads).
    pub shards: usize,
    /// Feature-vector length every request must match.
    pub n_features: usize,
    /// Bounded queue capacity per shard; a full queue sheds requests.
    pub queue_cap: usize,
    /// Largest micro-batch a worker will assemble.
    pub batch_max: usize,
    /// How long a worker waits to top off a partial batch.
    pub batch_linger: Duration,
    /// Default caller deadline for [`DecisionService::decide`].
    pub default_timeout: Duration,
    /// Probability threshold for a favorable decision.
    pub threshold: f64,
    /// What happens to decisions while a guard trip is in effect.
    pub policy: DegradePolicy,
    /// Decisions a guard trip stays in effect for (per shard).
    pub trip_cooldown: u64,
    /// Minimum decisions between forwarded alerts of one kind (per shard).
    pub alert_debounce: u64,
    /// The FACT guard set; `None` serves unguarded (baseline).
    pub guards: Option<GuardConfig>,
    /// Seed decorrelating per-shard DP noise streams.
    pub seed: u64,
    /// Durable audit sink for flagged/rejected decisions and alerts;
    /// `None` keeps the pre-sink behavior (counters only).
    pub audit: Option<AuditSinkConfig>,
    /// Wrap the feature source in a [`CachedFeatureSource`] (sharded TTL
    /// map, negative caching, single-flight); `None` fetches every batch
    /// upstream. The cache's counters land in the service metrics and the
    /// final [`ServiceReport`].
    pub cache: Option<CacheConfig>,
    /// Where each shard runs: `None` keeps every shard in-process (the
    /// pre-fact-net behavior). When set, it must have exactly `shards`
    /// entries; [`ShardSlot::Remote`] entries are dialed over fact-net
    /// instead of getting a local worker thread, and the routing hash is
    /// unchanged either way.
    pub topology: Option<Vec<ShardSlot>>,
    /// Periodic + on-shutdown guard-state checkpointing for local shards;
    /// on startup each local shard restores its fairness window, ε
    /// ledger, and DP counters from its sidecar file if one exists.
    pub checkpoint: Option<CheckpointConfig>,
    /// Adaptive admission control: an AIMD latency-target controller plus
    /// per-tenant token quotas layered on the depth gauge (see
    /// [`crate::admission`]). `None` keeps the static `queue_cap` bound.
    pub admission: Option<AdmissionConfig>,
}

/// Where one shard of the routing space is hosted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShardSlot {
    /// A worker thread in this process (the default).
    Local,
    /// A `fact-shardd` worker reached over the Unix socket at this path.
    Remote(PathBuf),
    /// A `fact-shardd` worker reached over TCP at this `host:port`
    /// address — same frame protocol, deadlines, and reconnect semantics
    /// as [`Remote`](ShardSlot::Remote), for workers on other hosts.
    RemoteTcp(String),
}

impl ShardSlot {
    /// The fact-net endpoint a remote slot dials; `None` for local slots.
    fn endpoint(&self) -> Option<Endpoint> {
        match self {
            ShardSlot::Local => None,
            ShardSlot::Remote(path) => Some(Endpoint::Unix(path.clone())),
            ShardSlot::RemoteTcp(addr) => Some(Endpoint::Tcp(addr.clone())),
        }
    }
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            shards: 2,
            n_features: 1,
            queue_cap: 256,
            batch_max: 16,
            batch_linger: Duration::from_micros(200),
            default_timeout: Duration::from_secs(1),
            threshold: 0.5,
            policy: DegradePolicy::AuditAndFlag,
            trip_cooldown: 1_000,
            alert_debounce: 500,
            guards: Some(GuardConfig::default()),
            seed: 0,
            audit: None,
            cache: None,
            topology: None,
            checkpoint: None,
            admission: None,
        }
    }
}

/// One decision request.
#[derive(Debug, Clone)]
pub struct DecisionRequest {
    /// Feature vector (must have `n_features` entries).
    pub features: Vec<f64>,
    /// Protected-group membership, observed by the fairness guard.
    pub group_b: bool,
    /// Routing key (e.g. user id): requests with equal keys land on the
    /// same shard.
    pub route_key: u64,
    /// Tenant the request bills its admission quota against (e.g. the
    /// calling product or customer). Ignored unless
    /// [`ServeConfig::admission`] enables tenant quotas; 0 is a fine
    /// default for single-tenant callers.
    pub tenant: u64,
}

/// One served decision.
#[derive(Debug, Clone, PartialEq)]
pub struct Decision {
    /// Model probability of the favorable class.
    pub probability: f64,
    /// The decision at the configured threshold.
    pub favorable: bool,
    /// True when served in degraded audit-and-flag mode.
    pub flagged: bool,
    /// Shard that served it.
    pub shard: usize,
}

/// The transport a handle is waiting on: a local worker's reply channel
/// or a fact-net in-flight frame.
enum HandleInner {
    Local {
        rx: Receiver<Result<Decision, ServeError>>,
    },
    Remote {
        reply: PendingReply,
        enqueued: Instant,
    },
}

/// An in-flight decision returned by [`DecisionService::submit`]. The
/// caller cannot tell (and need not care) whether the shard is a local
/// worker thread or a remote process.
pub struct DecisionHandle {
    inner: HandleInner,
    shard: usize,
    metrics: Arc<MetricsRegistry>,
}

/// Convert a worker's wire reply into the local decision type, stamped
/// with the *client-side* slot index so routing stays observable.
fn decode_remote_decision(payload: &[u8], slot: usize) -> Result<Decision, ServeError> {
    let wire: ResponseWire = net_decode(payload).map_err(|e| ServeError::Remote(e.to_string()))?;
    // a coded failure rebuilds the worker's typed error, so callers (and
    // per-tenant accounting) see the same shape across both topologies
    let code = wire.code.clone();
    let tenant = wire.tenant;
    let d = wire.into_result().map_err(|e| match e {
        NetError::Remote(msg) => match code.as_deref() {
            Some("busy") => ServeError::Busy { shard: slot },
            Some("throttled") => ServeError::Throttled {
                tenant: tenant.unwrap_or(0),
            },
            Some("rejected") => ServeError::Rejected { reason: msg },
            Some("resharding") => ServeError::Resharding,
            _ => ServeError::Remote(msg),
        },
        other => ServeError::Remote(other.to_string()),
    })?;
    Ok(Decision {
        probability: d.probability,
        favorable: d.favorable,
        flagged: d.flagged,
        shard: slot,
    })
}

/// Mirror a remote worker's typed admission refusal into the client-side
/// shard counters, so reports read the same across both topologies.
fn count_remote_error(m: &crate::metrics::ShardMetrics, e: &ServeError) {
    match e {
        ServeError::Busy { .. } => {
            m.shed.fetch_add(1, Ordering::Relaxed);
        }
        ServeError::Throttled { .. } => {
            m.throttled.fetch_add(1, Ordering::Relaxed);
        }
        _ => {}
    }
}

impl DecisionHandle {
    /// Block until the decision arrives or `timeout` passes.
    pub fn wait(self, timeout: Duration) -> Result<Decision, ServeError> {
        let m = self.metrics.shard(self.shard);
        match self.inner {
            HandleInner::Local { rx } => match rx.recv_timeout(timeout) {
                Ok(result) => result,
                Err(RecvTimeoutError::Timeout) => {
                    m.timeouts.fetch_add(1, Ordering::Relaxed);
                    Err(ServeError::Timeout { waited: timeout })
                }
                // The worker exited without answering: only possible
                // mid-shutdown.
                Err(RecvTimeoutError::Disconnected) => Err(ServeError::ShuttingDown),
            },
            HandleInner::Remote { reply, enqueued } => match reply.wait(timeout) {
                Ok(frame) => {
                    let result = decode_remote_decision(&frame.payload, self.shard);
                    match &result {
                        Ok(_) => {
                            m.served.fetch_add(1, Ordering::Relaxed);
                            self.metrics.latency.record(enqueued.elapsed());
                        }
                        Err(e) => count_remote_error(m, e),
                    }
                    result
                }
                Err(NetError::Timeout) => {
                    m.timeouts.fetch_add(1, Ordering::Relaxed);
                    Err(ServeError::Timeout { waited: timeout })
                }
                Err(e) => Err(ServeError::Remote(e.to_string())),
            },
        }
    }

    /// Non-blocking poll; `None` while the decision is still in flight.
    pub fn try_wait(&self) -> Option<Result<Decision, ServeError>> {
        match &self.inner {
            HandleInner::Local { rx } => match rx.try_recv() {
                Ok(result) => Some(result),
                Err(TryRecvError::Empty) => None,
                Err(TryRecvError::Disconnected) => Some(Err(ServeError::ShuttingDown)),
            },
            HandleInner::Remote { reply, enqueued } => match reply.try_wait()? {
                Ok(frame) => {
                    let result = decode_remote_decision(&frame.payload, self.shard);
                    let m = self.metrics.shard(self.shard);
                    match &result {
                        Ok(_) => {
                            m.served.fetch_add(1, Ordering::Relaxed);
                            self.metrics.latency.record(enqueued.elapsed());
                        }
                        Err(e) => count_remote_error(m, e),
                    }
                    Some(result)
                }
                Err(e) => Some(Err(ServeError::Remote(e.to_string()))),
            },
        }
    }
}

/// What one worker reports when it drains and exits.
#[derive(Debug, Clone)]
pub struct ShardReport {
    /// Shard index.
    pub shard: usize,
    /// Decisions served (including flagged ones).
    pub served: u64,
    /// Hard rejections issued while degraded.
    pub rejected: u64,
    /// Decisions flagged for audit.
    pub flagged: u64,
    /// Micro-batches executed.
    pub batches: u64,
    /// Alerts forwarded to the global channel.
    pub alerts: u64,
    /// ε spent by this shard's DP counter.
    pub epsilon_spent: f64,
    /// Guard checkpoints durably written (periodic + final).
    pub checkpoints: u64,
    /// Lifetime decision count restored from a checkpoint at startup
    /// (zero on first boot or when checkpointing is off).
    pub resumed_at: u64,
}

/// Client-side view of one remote shard's connection at shutdown.
#[derive(Debug, Clone)]
pub struct RemoteShardReport {
    /// Shard slot the worker serves.
    pub shard: usize,
    /// Decisions this client observed served by the worker.
    pub served: u64,
    /// Frames sent to the worker.
    pub requests: u64,
    /// Reconnects after the worker dropped the connection.
    pub reconnects: u64,
    /// Transport-level errors (including timeouts).
    pub errors: u64,
    /// Mean request round-trip time in microseconds.
    pub rtt_mean_micros: f64,
}

/// The final accounting returned by [`DecisionService::shutdown`].
#[derive(Debug, Clone)]
pub struct ServiceReport {
    /// Decisions served across all shards.
    pub decisions_served: u64,
    /// Requests shed at admission.
    pub shed: u64,
    /// Requests refused because their tenant was over quota.
    pub throttled: u64,
    /// Caller-side timeouts observed.
    pub timed_out: u64,
    /// Hard rejections issued by the degrade policy.
    pub rejected: u64,
    /// Decisions flagged for audit.
    pub flagged: u64,
    /// Alerts forwarded to the global channel.
    pub alerts_raised: u64,
    /// Total ε spent across shards.
    pub epsilon_spent: f64,
    /// Audit entries durably written (and fsynced) by the sink this run,
    /// including the sink's own lifecycle markers. Zero when no sink is
    /// configured.
    pub audited: u64,
    /// Entries a previous run's crash provably cost, as found by the
    /// sink's startup recovery pass (persisted chain head vs recovered
    /// log, plus any missing-middle segments quantified from neighboring
    /// handoff claims). Zero when no sink is configured.
    pub lost_on_recovery: u64,
    /// Audit-log segments present at shutdown (the sink rolls to a new
    /// segment when the active one exceeds the configured size). Zero when
    /// no sink is configured.
    pub audit_segments: u64,
    /// Feature-cache counters at shutdown (hits, misses, negative hits,
    /// evictions); all zero when no cache is configured.
    pub cache: CacheSnapshot,
    /// Admission-control counters at shutdown (ticks, capacity moves,
    /// per-tenant outcomes); all zero when admission control is off.
    pub admission: AdmissionSnapshot,
    /// Audit-archiver counters at shutdown (segments compacted, bytes
    /// before/after, verify failures); all zero when archiving is off.
    pub archive: crate::archive::ArchiveSnapshot,
    /// Guard checkpoints durably written across all local shards.
    pub checkpoints_written: u64,
    /// Per-shard breakdown (local shards only; remote workers keep their
    /// own reports in their own processes).
    pub shards: Vec<ShardReport>,
    /// Client-side transport stats for each remote shard slot. Shutting
    /// down this service does *not* stop the remote workers — their
    /// lifecycle belongs to whoever spawned them.
    pub remotes: Vec<RemoteShardReport>,
}

impl ServiceReport {
    /// Render as a short plain-text block.
    pub fn render_text(&self) -> String {
        let mut out = format!(
            "served={} shed={} throttled={} timed_out={} rejected={} flagged={} alerts={} \
             eps_spent={:.4} audited={} lost_on_recovery={} audit_segments={}\n",
            self.decisions_served,
            self.shed,
            self.throttled,
            self.timed_out,
            self.rejected,
            self.flagged,
            self.alerts_raised,
            self.epsilon_spent,
            self.audited,
            self.lost_on_recovery,
            self.audit_segments,
        );
        out.push_str(&format!(
            "cache hits={} misses={} neg_hits={} evictions={} hit_rate={:.3}\n",
            self.cache.hits,
            self.cache.misses,
            self.cache.negative_hits,
            self.cache.evictions,
            self.cache.hit_rate(),
        ));
        out.push_str(&format!(
            "admission cap={} ticks={} shrinks={} grows={} throttled={} adm_shed={}\n",
            self.admission.effective_cap,
            self.admission.ticks,
            self.admission.shrinks,
            self.admission.grows,
            self.admission.throttled,
            self.admission.shed,
        ));
        out.push_str(&format!(
            "archive segments={} bytes_before={} bytes_after={} ratio={:.3} verify_failures={}\n",
            self.archive.segments_archived,
            self.archive.bytes_before,
            self.archive.bytes_after,
            self.archive.ratio(),
            self.archive.verify_failures,
        ));
        for t in &self.admission.tenants {
            out.push_str(&format!(
                "  tenant {}: admitted={} shed={} throttled={}\n",
                t.tenant, t.admitted, t.shed, t.throttled,
            ));
        }
        for s in &self.shards {
            out.push_str(&format!(
                "  shard {}: served={} batches={} rejected={} flagged={} alerts={} eps={:.4} \
                 checkpoints={} resumed_at={}\n",
                s.shard,
                s.served,
                s.batches,
                s.rejected,
                s.flagged,
                s.alerts,
                s.epsilon_spent,
                s.checkpoints,
                s.resumed_at,
            ));
        }
        for r in &self.remotes {
            out.push_str(&format!(
                "  remote shard {}: served={} requests={} reconnects={} errors={} \
                 rtt_mean={:.1}us\n",
                r.shard, r.served, r.requests, r.reconnects, r.errors, r.rtt_mean_micros,
            ));
        }
        out
    }
}

/// One queued request inside a shard.
struct Job {
    features: Vec<f64>,
    group_b: bool,
    route_key: u64,
    enqueued: Instant,
    reply: Sender<Result<Decision, ServeError>>,
}

struct Inner {
    config: ServeConfig,
    metrics: Arc<MetricsRegistry>,
    /// `None` once shutdown has begun: dropping the senders is what tells
    /// the workers to drain and exit.
    senders: RwLock<Option<Vec<SyncSender<Job>>>>,
    workers: Mutex<Vec<JoinHandle<ShardReport>>>,
    alert_rx: Mutex<Receiver<ServiceAlert>>,
    report: Mutex<Option<ServiceReport>>,
    /// The audit sink, finished (drained + stop marker + fsync) at
    /// shutdown, *after* the workers have been joined.
    sink: Mutex<Option<AuditSink>>,
    /// What the sink's startup recovery pass found, if a sink is on.
    audit_recovery: Option<RecoveryReport>,
    /// The cache decorating the feature source, retained so rollouts can
    /// invalidate it through the service; `None` when caching is off.
    cache: Option<Arc<CachedFeatureSource>>,
    /// One fact-net client per remote shard slot (`None` for local slots).
    remotes: Vec<Option<Arc<RemoteShard>>>,
    /// Bumped by [`DecisionService::request_checkpoint`]; local workers
    /// compare against it after every batch and flush when it moved.
    checkpoint_gen: Arc<AtomicU64>,
    /// Adaptive admission controller shared by every local shard's submit
    /// path; `None` keeps the static bound.
    admission: Option<Arc<AdmissionController>>,
}

/// A cheaply-cloneable handle to the serving fabric. All clones address the
/// same shards; the service keeps running until [`shutdown`] is called.
///
/// [`shutdown`]: DecisionService::shutdown
#[derive(Clone)]
pub struct DecisionService {
    inner: Arc<Inner>,
}

impl DecisionService {
    /// Start the worker shards around a trained model, with features taken
    /// inline from each request ([`InlineFeatures`]).
    pub fn start(
        model: Arc<dyn Classifier + Send + Sync>,
        config: ServeConfig,
    ) -> Result<Self, ServeError> {
        Self::start_with_source(model, config, Arc::new(InlineFeatures))
    }

    /// Start the worker shards around a trained model and an explicit
    /// [`FeatureSource`] that assembles each micro-batch's feature matrix
    /// (e.g. a simulated or real feature store) before the model scores it.
    pub fn start_with_source(
        model: Arc<dyn Classifier + Send + Sync>,
        config: ServeConfig,
        source: Arc<dyn FeatureSource>,
    ) -> Result<Self, ServeError> {
        let sink = match &config.audit {
            Some(audit_cfg) => Some(
                AuditSink::open(audit_cfg)
                    .map_err(|e| ServeError::Internal(format!("audit sink: {e}")))?,
            ),
            None => None,
        };
        Self::start_inner(model, config, source, sink)
    }

    /// Start with an explicit [`AuditStorage`] backing the audit sink —
    /// the entry point for fault-injection tests and benchmarks. Sink
    /// tuning comes from `config.audit` (or its defaults when `None`);
    /// the configured path is ignored in favor of the given storage.
    pub fn start_with_audit_storage(
        model: Arc<dyn Classifier + Send + Sync>,
        config: ServeConfig,
        source: Arc<dyn FeatureSource>,
        storage: Box<dyn AuditStorage>,
    ) -> Result<Self, ServeError> {
        let audit_cfg = config.audit.clone().unwrap_or_default();
        let sink = AuditSink::open_with_storage(&audit_cfg, storage)
            .map_err(|e| ServeError::Internal(format!("audit sink: {e}")))?;
        Self::start_inner(model, config, source, Some(sink))
    }

    fn start_inner(
        model: Arc<dyn Classifier + Send + Sync>,
        config: ServeConfig,
        source: Arc<dyn FeatureSource>,
        sink: Option<AuditSink>,
    ) -> Result<Self, ServeError> {
        if config.shards == 0
            || config.queue_cap == 0
            || config.batch_max == 0
            || config.n_features == 0
        {
            return Err(ServeError::BadRequest(
                "shards, queue_cap, batch_max, and n_features must be positive".into(),
            ));
        }
        if !(0.0..=1.0).contains(&config.threshold) {
            return Err(ServeError::BadRequest("threshold must be in [0, 1]".into()));
        }
        if let Some(cache) = &config.cache {
            if cache.stripes == 0 || cache.capacity_per_stripe == 0 {
                return Err(ServeError::BadRequest(
                    "cache stripes and capacity_per_stripe must be positive".into(),
                ));
            }
        }
        if let Some(topology) = &config.topology {
            if topology.len() != config.shards {
                return Err(ServeError::BadRequest(format!(
                    "topology has {} slots but shards is {}",
                    topology.len(),
                    config.shards
                )));
            }
        }
        if let Some(ck) = &config.checkpoint {
            if ck.every == 0 || ck.segment_events == 0 {
                return Err(ServeError::BadRequest(
                    "checkpoint.every and checkpoint.segment_events must be positive".into(),
                ));
            }
        }
        if let Some(adm) = &config.admission {
            adm.validate().map_err(ServeError::BadRequest)?;
        }
        // The archiver's counters are shared with the registry so metrics
        // snapshots see compaction progress while the service runs.
        let archive_stats = sink
            .as_ref()
            .map(AuditSink::archive_stats)
            .unwrap_or_default();
        let metrics = Arc::new(MetricsRegistry::with_archive_stats(
            config.shards,
            archive_stats,
        ));
        let admission: Option<Arc<AdmissionController>> = config.admission.as_ref().map(|adm| {
            Arc::new(AdmissionController::new(
                adm.clone(),
                config.queue_cap,
                Arc::new(SystemClock),
                Arc::clone(&metrics.admission),
            ))
        });
        // The cache decorates whatever source the caller supplied, sharing
        // its counters with the registry so snapshots and the final report
        // see hits/misses/negative hits/evictions.
        let cache: Option<Arc<CachedFeatureSource>> = config.cache.as_ref().map(|cache_cfg| {
            Arc::new(CachedFeatureSource::with_clock_and_stats(
                Arc::clone(&source),
                cache_cfg.clone(),
                Arc::new(SystemClock),
                Arc::clone(&metrics.cache),
            ))
        });
        let source: Arc<dyn FeatureSource> = match &cache {
            Some(c) => Arc::clone(c) as Arc<dyn FeatureSource>,
            None => source,
        };
        let checkpoint_gen = Arc::new(AtomicU64::new(0));
        let (alert_tx, alert_rx) = channel();
        let mut senders = Vec::with_capacity(config.shards);
        let mut workers = Vec::with_capacity(config.shards);
        let mut remotes: Vec<Option<Arc<RemoteShard>>> = Vec::with_capacity(config.shards);
        for shard in 0..config.shards {
            let slot = config
                .topology
                .as_ref()
                .map_or(&ShardSlot::Local, |t| &t[shard]);
            if let Some(endpoint) = slot.endpoint() {
                // No local worker: a dummy sender keeps the vec aligned
                // (its receiver drops here, so a stray send just reports
                // ShuttingDown rather than wedging).
                let (tx, _) = sync_channel::<Job>(1);
                senders.push(tx);
                remotes.push(Some(Arc::new(
                    RemoteShard::connect_endpoint(endpoint.clone()).map_err(|e| {
                        ServeError::Remote(format!("shard {shard} at {endpoint}: {e}"))
                    })?,
                )));
                continue;
            }
            remotes.push(None);
            let (tx, rx) = sync_channel::<Job>(config.queue_cap);
            senders.push(tx);
            let mut resumed_at = 0;
            let guards = match &config.guards {
                Some(g) => {
                    let mut guards = ShardGuards::new(g, config.seed.wrapping_add(shard as u64))
                        .map_err(|e| ServeError::BadRequest(e.to_string()))?;
                    // Resume from the sidecar checkpoint, if one exists: a
                    // respawned shard keeps its fairness window and ε
                    // ledger instead of silently resetting them.
                    if let Some(ck_cfg) = &config.checkpoint {
                        match load_checkpoint(&ck_cfg.dir, shard) {
                            Ok(Some(ck)) => {
                                guards.restore(&ck).map_err(|e| {
                                    ServeError::Internal(format!(
                                        "shard {shard} checkpoint restore: {e}"
                                    ))
                                })?;
                                resumed_at = ck.decisions;
                            }
                            Ok(None) => {}
                            Err(e) => {
                                return Err(ServeError::Internal(format!(
                                    "shard {shard} checkpoint load: {e}"
                                )))
                            }
                        }
                    }
                    Some(guards)
                }
                None => None,
            };
            let hub = AlertHub::new(
                shard,
                alert_tx.clone(),
                Arc::clone(&metrics),
                config.alert_debounce,
            );
            let worker = ShardWorker {
                shard,
                rx,
                model: Arc::clone(&model),
                source: Arc::clone(&source),
                metrics: Arc::clone(&metrics),
                guards,
                hub,
                threshold: config.threshold,
                batch_max: config.batch_max,
                batch_linger: config.batch_linger,
                policy: config.policy,
                trip_cooldown: config.trip_cooldown,
                audit: sink.as_ref().map(AuditSink::handle),
                checkpoint: config.checkpoint.clone(),
                base_decisions: resumed_at,
                checkpoint_gen: Arc::clone(&checkpoint_gen),
                admission: admission.clone(),
            };
            workers.push(
                std::thread::Builder::new()
                    .name(format!("fact-serve-{shard}"))
                    .spawn(move || worker.run())
                    .map_err(|e| ServeError::Internal(e.to_string()))?,
            );
        }
        Ok(DecisionService {
            inner: Arc::new(Inner {
                config,
                metrics,
                senders: RwLock::new(Some(senders)),
                workers: Mutex::new(workers),
                alert_rx: Mutex::new(alert_rx),
                report: Mutex::new(None),
                audit_recovery: sink.as_ref().map(|s| s.recovery().clone()),
                sink: Mutex::new(sink),
                cache,
                remotes,
                checkpoint_gen,
                admission,
            }),
        })
    }

    fn shard_of(&self, route_key: u64) -> usize {
        let mut h = DefaultHasher::new();
        route_key.hash(&mut h);
        (h.finish() % self.inner.config.shards as u64) as usize
    }

    /// Enqueue a request without waiting for the decision.
    ///
    /// Fails fast with [`ServeError::Busy`] when the shard's queue is full
    /// (load shedding) and [`ServeError::ShuttingDown`] after shutdown has
    /// begun.
    pub fn submit(&self, request: DecisionRequest) -> Result<DecisionHandle, ServeError> {
        if request.features.len() != self.inner.config.n_features {
            return Err(ServeError::BadRequest(format!(
                "expected {} features, got {}",
                self.inner.config.n_features,
                request.features.len()
            )));
        }
        let shard = self.shard_of(request.route_key);
        if let Some(remote) = self.inner.remotes[shard].as_deref() {
            // remote slots enforce their own admission policy worker-side,
            // where the depth gauge and latency window actually live
            return self.submit_remote(remote, shard, request);
        }
        let m = self.inner.metrics.shard(shard);
        if let Some(adm) = &self.inner.admission {
            match adm.admit(request.tenant, m.depth.load(Ordering::Relaxed)) {
                AdmissionDecision::Admit => {}
                AdmissionDecision::Shed => {
                    m.shed.fetch_add(1, Ordering::Relaxed);
                    return Err(ServeError::Busy { shard });
                }
                AdmissionDecision::Throttle => {
                    m.throttled.fetch_add(1, Ordering::Relaxed);
                    return Err(ServeError::Throttled {
                        tenant: request.tenant,
                    });
                }
            }
        }
        let (reply_tx, reply_rx) = channel();
        let job = Job {
            features: request.features,
            group_b: request.group_b,
            route_key: request.route_key,
            enqueued: Instant::now(),
            reply: reply_tx,
        };
        let guard = self.inner.senders.read().unwrap_or_else(|e| e.into_inner());
        let senders = guard.as_ref().ok_or(ServeError::ShuttingDown)?;
        // The gauge goes up *before* the send: the worker may dequeue (and
        // decrement) the instant try_send returns, so incrementing after
        // would transiently wrap the gauge below zero.
        m.depth_inc();
        match senders[shard].try_send(job) {
            Ok(()) => {
                m.enqueued.fetch_add(1, Ordering::Relaxed);
                Ok(DecisionHandle {
                    inner: HandleInner::Local { rx: reply_rx },
                    shard,
                    metrics: Arc::clone(&self.inner.metrics),
                })
            }
            Err(TrySendError::Full(_)) => {
                m.depth_dec();
                m.shed.fetch_add(1, Ordering::Relaxed);
                Err(ServeError::Busy { shard })
            }
            Err(TrySendError::Disconnected(_)) => {
                m.depth_dec();
                Err(ServeError::ShuttingDown)
            }
        }
    }

    /// Ship a request to a remote worker over fact-net.
    fn submit_remote(
        &self,
        remote: &RemoteShard,
        shard: usize,
        request: DecisionRequest,
    ) -> Result<DecisionHandle, ServeError> {
        if self
            .inner
            .senders
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .is_none()
        {
            return Err(ServeError::ShuttingDown);
        }
        let payload = net_encode(&RequestWire {
            features: request.features,
            group_b: request.group_b,
            route_key: request.route_key,
            tenant: Some(request.tenant),
        })
        .map_err(|e| ServeError::Remote(e.to_string()))?;
        let enqueued = Instant::now();
        let reply = remote
            .send(FrameKind::Request, payload)
            .map_err(|e| ServeError::Remote(e.to_string()))?;
        let m = self.inner.metrics.shard(shard);
        m.enqueued.fetch_add(1, Ordering::Relaxed);
        Ok(DecisionHandle {
            inner: HandleInner::Remote { reply, enqueued },
            shard,
            metrics: Arc::clone(&self.inner.metrics),
        })
    }

    /// Submit and wait for the decision under the configured default
    /// timeout.
    pub fn decide(&self, request: DecisionRequest) -> Result<Decision, ServeError> {
        let timeout = self.inner.config.default_timeout;
        self.submit(request)?.wait(timeout)
    }

    /// Ask every local worker to write a guard checkpoint at its next
    /// batch boundary (a worker idle on an empty queue flushes when its
    /// next batch completes). No-op when checkpointing is off.
    pub fn request_checkpoint(&self) {
        self.inner.checkpoint_gen.fetch_add(1, Ordering::Release);
    }

    /// Client-side transport stats for each remote shard slot (empty when
    /// the whole topology is local).
    pub fn remote_stats(&self) -> Vec<RemoteShardReport> {
        let snap = self.inner.metrics.snapshot();
        self.inner
            .remotes
            .iter()
            .enumerate()
            .filter_map(|(shard, r)| {
                r.as_ref().map(|remote| {
                    let s = remote.stats();
                    RemoteShardReport {
                        shard,
                        served: snap.shards[shard].served,
                        requests: s.requests,
                        reconnects: s.reconnects,
                        errors: s.errors,
                        rtt_mean_micros: s.rtt_mean_micros,
                    }
                })
            })
            .collect()
    }

    /// An instantaneous metrics snapshot.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.inner.metrics.snapshot()
    }

    /// Drain all alerts currently buffered on the global channel.
    pub fn drain_alerts(&self) -> Vec<ServiceAlert> {
        let rx = self
            .inner
            .alert_rx
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        let mut out = Vec::new();
        while let Ok(a) = rx.try_recv() {
            out.push(a);
        }
        out
    }

    /// The configured shard count.
    pub fn shards(&self) -> usize {
        self.inner.config.shards
    }

    /// What the audit sink's startup recovery pass found, when a sink is
    /// configured: intact entries, truncated tail, and provable loss.
    pub fn audit_recovery(&self) -> Option<&RecoveryReport> {
        self.inner.audit_recovery.as_ref()
    }

    /// Invalidate every cached feature row — the hook a model or schema
    /// rollout calls so decisions stop being served from pre-rollout
    /// features. Bumps the cache's generation counter; stale entries are
    /// dropped lazily on their next lookup (no stop-the-world sweep) and
    /// counted in [`CacheStats`](crate::CacheStats) `invalidated`. Returns
    /// `false` when no cache is configured (nothing to invalidate).
    pub fn invalidate_features(&self) -> bool {
        match &self.inner.cache {
            Some(cache) => {
                cache.invalidate();
                true
            }
            None => false,
        }
    }

    /// Stop admitting requests, let every shard drain its queue, and join
    /// the workers. Every request accepted before shutdown is answered.
    /// Idempotent: later calls (from this or any clone) return the same
    /// report.
    pub fn shutdown(&self) -> ServiceReport {
        {
            // Dropping the senders disconnects the queues; workers exit
            // after serving what is already buffered.
            let mut senders = self
                .inner
                .senders
                .write()
                .unwrap_or_else(|e| e.into_inner());
            senders.take();
        }
        let mut report_slot = self.inner.report.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(report) = report_slot.as_ref() {
            return report.clone();
        }
        let handles: Vec<JoinHandle<ShardReport>> = {
            let mut workers = self.inner.workers.lock().unwrap_or_else(|e| e.into_inner());
            workers.drain(..).collect()
        };
        let mut shards: Vec<ShardReport> = handles
            .into_iter()
            .map(|h| h.join().expect("fact-serve worker panicked"))
            .collect();
        shards.sort_by_key(|s| s.shard);
        // The workers (and their sink handles) are gone: finishing the sink
        // now drains whatever they enqueued, stamps the stop marker, and
        // fsyncs the final batch.
        let sink_report = {
            let mut sink = self.inner.sink.lock().unwrap_or_else(|e| e.into_inner());
            sink.take().map(AuditSink::finish)
        };
        let snap = self.inner.metrics.snapshot();
        let remotes = self.remote_stats();
        let remote_served: u64 = remotes.iter().map(|r| r.served).sum();
        let report = ServiceReport {
            decisions_served: shards.iter().map(|s| s.served).sum::<u64>() + remote_served,
            shed: snap.shed(),
            throttled: snap.throttled(),
            timed_out: snap.shards.iter().map(|s| s.timeouts).sum(),
            rejected: shards.iter().map(|s| s.rejected).sum(),
            flagged: shards.iter().map(|s| s.flagged).sum(),
            alerts_raised: shards.iter().map(|s| s.alerts).sum(),
            epsilon_spent: shards.iter().map(|s| s.epsilon_spent).sum(),
            audited: sink_report.as_ref().map_or(0, |r| r.audited),
            lost_on_recovery: sink_report.as_ref().map_or(0, |r| r.recovery.lost),
            audit_segments: sink_report.as_ref().map_or(0, |r| r.segments),
            cache: snap.cache.clone(),
            admission: snap.admission.clone(),
            archive: sink_report
                .as_ref()
                .map(|r| r.archive.clone())
                .unwrap_or_default(),
            checkpoints_written: shards.iter().map(|s| s.checkpoints).sum(),
            shards,
            remotes,
        };
        *report_slot = Some(report.clone());
        report
    }
}

/// The per-shard worker loop.
struct ShardWorker {
    shard: usize,
    rx: Receiver<Job>,
    model: Arc<dyn Classifier + Send + Sync>,
    source: Arc<dyn FeatureSource>,
    metrics: Arc<MetricsRegistry>,
    guards: Option<ShardGuards>,
    hub: AlertHub,
    threshold: f64,
    batch_max: usize,
    batch_linger: Duration,
    policy: DegradePolicy,
    trip_cooldown: u64,
    /// Sender into the durable audit sink; `None` when auditing is off.
    audit: Option<AuditSinkHandle>,
    /// Guard-state checkpoint cadence; `None` disables checkpointing.
    checkpoint: Option<CheckpointConfig>,
    /// Lifetime decisions restored from a checkpoint at startup; the
    /// shard keeps counting from here so its decision count survives
    /// restarts.
    base_decisions: u64,
    /// Shared flush-request generation (see
    /// [`DecisionService::request_checkpoint`]).
    checkpoint_gen: Arc<AtomicU64>,
    /// Feeds served latencies into the admission controller's rolling
    /// window; `None` when admission control is off.
    admission: Option<Arc<AdmissionController>>,
}

impl ShardWorker {
    /// Write a guard checkpoint if guards and checkpointing are both on.
    /// Returns whether one was durably written; failures are swallowed
    /// (serving outranks checkpoint freshness — the previous checkpoint
    /// file is still intact).
    fn write_guard_checkpoint(&self, decisions: u64) -> bool {
        let (Some(cfg), Some(guards)) = (&self.checkpoint, &self.guards) else {
            return false;
        };
        guards
            .checkpoint(self.shard, decisions, cfg.segment_events)
            .ok()
            .and_then(|ck| write_checkpoint(&cfg.dir, &ck).ok())
            .is_some()
    }

    fn run(mut self) -> ShardReport {
        let mut served: u64 = 0;
        let mut rejected: u64 = 0;
        let mut flagged: u64 = 0;
        let mut batches: u64 = 0;
        let mut alerts: u64 = 0;
        let mut checkpoints: u64 = 0;
        let mut last_checkpoint_at: u64 = self.base_decisions;
        let mut seen_gen = self.checkpoint_gen.load(Ordering::Acquire);
        // decision count until which the degrade policy stays engaged
        let mut degraded_until: u64 = 0;
        let mut batch: Vec<Job> = Vec::with_capacity(self.batch_max);

        loop {
            // Block for the first job; a disconnect here means the queue is
            // fully drained and shutdown can complete.
            match self.rx.recv() {
                Ok(job) => batch.push(job),
                Err(_) => break,
            }
            // Top off the batch: greedily take what is buffered, then wait
            // out the linger for stragglers.
            let deadline = Instant::now() + self.batch_linger;
            while batch.len() < self.batch_max {
                match self.rx.try_recv() {
                    Ok(job) => batch.push(job),
                    Err(TryRecvError::Disconnected) => break,
                    Err(TryRecvError::Empty) => {
                        let now = Instant::now();
                        if now >= deadline {
                            break;
                        }
                        match self.rx.recv_timeout(deadline - now) {
                            Ok(job) => batch.push(job),
                            Err(_) => break,
                        }
                    }
                }
            }

            let m = self.metrics.shard(self.shard);
            for _ in 0..batch.len() {
                m.depth_dec();
            }
            m.batches.fetch_add(1, Ordering::Relaxed);
            m.batch_items
                .fetch_add(batch.len() as u64, Ordering::Relaxed);
            batches += 1;

            // One batched feature fetch per micro-batch, then one
            // matrix-level model call: both the round trip and the model
            // overhead are amortized across the whole batch.
            let keys: Vec<u64> = batch.iter().map(|j| j.route_key).collect();
            let rows: Vec<Vec<f64>> = batch.iter().map(|j| j.features.clone()).collect();
            let probs = self
                .source
                .fetch_batch(&keys, &rows)
                .and_then(|x| self.model.predict_proba(&x));
            let probs = match probs {
                Ok(p) => p,
                Err(e) => {
                    let msg = e.to_string();
                    for job in batch.drain(..) {
                        let _ = job.reply.send(Err(ServeError::Internal(msg.clone())));
                    }
                    continue;
                }
            };

            let mut raised = Vec::new();
            for (job, p) in batch.drain(..).zip(probs) {
                let favorable = p >= self.threshold;
                served += 1;
                if let Some(g) = &mut self.guards {
                    raised.clear();
                    g.observe(job.group_b, favorable, p, &mut raised);
                    for alert in raised.drain(..) {
                        if let Alert::DpRelease { epsilon, .. } = &alert {
                            // ε is spent whether or not the alert is
                            // debounced out of the channel.
                            self.metrics.add_epsilon(*epsilon);
                        }
                        if AlertKind::of(&alert).trips_policy() {
                            degraded_until = served + self.trip_cooldown;
                        }
                        let summary = self.audit.as_ref().map(|_| format!("{alert:?}"));
                        if self.hub.raise(served, alert) {
                            alerts += 1;
                            if let (Some(sink), Some(summary)) = (&self.audit, summary) {
                                sink.record(AuditEvent::Alert {
                                    shard: self.shard,
                                    at_decision: served,
                                    summary,
                                });
                            }
                        }
                    }
                }
                let degraded = self.policy != DegradePolicy::Off && served <= degraded_until;
                let result = if degraded && self.policy == DegradePolicy::HardReject {
                    rejected += 1;
                    m.rejected.fetch_add(1, Ordering::Relaxed);
                    if let Some(sink) = &self.audit {
                        sink.record(AuditEvent::Rejected {
                            shard: self.shard,
                            route_key: job.route_key,
                        });
                    }
                    Err(ServeError::Rejected {
                        reason: "guard tripped; hard-reject policy active".into(),
                    })
                } else {
                    let flag = degraded && self.policy == DegradePolicy::AuditAndFlag;
                    if flag {
                        flagged += 1;
                        m.flagged.fetch_add(1, Ordering::Relaxed);
                        if let Some(sink) = &self.audit {
                            sink.record(AuditEvent::Flagged {
                                shard: self.shard,
                                route_key: job.route_key,
                                probability: p,
                                favorable,
                                group_b: job.group_b,
                            });
                        }
                    }
                    Ok(Decision {
                        probability: p,
                        favorable,
                        flagged: flag,
                        shard: self.shard,
                    })
                };
                m.served.fetch_add(1, Ordering::Relaxed);
                let latency = job.enqueued.elapsed();
                self.metrics.latency.record(latency);
                if let Some(adm) = &self.admission {
                    // also drives the control tick, so a draining queue
                    // keeps adapting even when arrivals pause
                    adm.record_latency(latency);
                }
                // The caller may have timed out and dropped the receiver;
                // an accepted request is still counted as served.
                let _ = job.reply.send(result);
            }

            // Periodic guard checkpoint at the batch boundary: on the
            // cadence, or when a flush was requested via the service.
            if let Some(cfg) = &self.checkpoint {
                let decisions = self.base_decisions + served;
                let gen = self.checkpoint_gen.load(Ordering::Acquire);
                if decisions.saturating_sub(last_checkpoint_at) >= cfg.every || gen != seen_gen {
                    if self.write_guard_checkpoint(decisions) {
                        checkpoints += 1;
                        last_checkpoint_at = decisions;
                    }
                    seen_gen = gen;
                }
            }
        }

        // Final checkpoint on clean drain, so a graceful shutdown loses
        // nothing at all.
        if self.checkpoint.is_some() && self.write_guard_checkpoint(self.base_decisions + served) {
            checkpoints += 1;
        }

        ShardReport {
            shard: self.shard,
            served,
            rejected,
            flagged,
            batches,
            alerts,
            epsilon_spent: self.guards.as_ref().map_or(0.0, ShardGuards::epsilon_spent),
            checkpoints,
            resumed_at: self.base_decisions,
        }
    }
}

/// The worker-side glue between a fact-net [`Server`](fact_net::Server)
/// and a local [`DecisionService`]: decodes request frames, submits them
/// into the service on the connection's reader thread (fast — bounded
/// `try_send`), and waits for each decision inside the completion thunk on
/// the connection's writer thread. This is what `fact-shardd` plugs into
/// its server.
///
/// Control commands: `"ping"` acks; `"checkpoint"` requests a guard
/// checkpoint flush; `"shutdown"` sets the shutdown flag (when one was
/// provided) and acks — actually stopping the service and exiting is the
/// hosting process's job, *after* it sees the flag, so the ack still
/// reaches the client; `"reshard <M>"` (reshardable hosts only, see
/// [`NetShardHandler::reshardable`]) performs a live cutover to `M` shards
/// on the connection's writer thread and acks with the conservation
/// numbers (`PROTOCOL.md §6 — Control commands`).
pub struct NetShardHandler {
    host: Host,
    /// Worker-side ceiling on how long a thunk waits for a decision.
    timeout: Duration,
    /// Set to true when a `"shutdown"` control command arrives.
    shutdown_requested: Arc<std::sync::atomic::AtomicBool>,
}

/// What the handler serves: a plain service, or one wrapped in the
/// reshard gate so `"reshard <M>"` control commands work.
enum Host {
    Plain(DecisionService),
    Reshardable(crate::reshard::ReshardableService),
}

impl Host {
    fn submit(&self, request: DecisionRequest) -> Result<DecisionHandle, ServeError> {
        match self {
            Host::Plain(s) => s.submit(request),
            Host::Reshardable(s) => s.submit(request),
        }
    }

    fn request_checkpoint(&self) {
        match self {
            Host::Plain(s) => s.request_checkpoint(),
            Host::Reshardable(s) => s.request_checkpoint(),
        }
    }

    fn shards(&self) -> usize {
        match self {
            Host::Plain(s) => s.shards(),
            Host::Reshardable(s) => s.shards(),
        }
    }

    fn served(&self) -> u64 {
        match self {
            Host::Plain(s) => s.metrics().served(),
            Host::Reshardable(s) => s.metrics().map_or(0, |m| m.served()),
        }
    }
}

impl NetShardHandler {
    /// Wrap `service` for serving over fact-net.
    pub fn new(service: DecisionService, timeout: Duration) -> Self {
        NetShardHandler {
            host: Host::Plain(service),
            timeout,
            shutdown_requested: Arc::new(std::sync::atomic::AtomicBool::new(false)),
        }
    }

    /// Wrap a [`ReshardableService`](crate::reshard::ReshardableService):
    /// identical to [`new`](NetShardHandler::new) except the
    /// `"reshard <M>"` control command is live.
    pub fn reshardable(service: crate::reshard::ReshardableService, timeout: Duration) -> Self {
        NetShardHandler {
            host: Host::Reshardable(service),
            timeout,
            shutdown_requested: Arc::new(std::sync::atomic::AtomicBool::new(false)),
        }
    }

    /// The flag a `"shutdown"` control command raises; the hosting process
    /// polls it and performs the actual shutdown.
    pub fn shutdown_flag(&self) -> Arc<std::sync::atomic::AtomicBool> {
        Arc::clone(&self.shutdown_requested)
    }
}

impl fact_net::ShardHandler for NetShardHandler {
    fn submit(&self, kind: FrameKind, payload: Vec<u8>) -> Box<dyn FnOnce() -> Vec<u8> + Send> {
        fn emit<T: serde::Serialize>(value: &T) -> Vec<u8> {
            net_encode(value).unwrap_or_else(|_| b"{}".to_vec())
        }
        match kind {
            FrameKind::Request => {
                // Decode + submit here (reader thread): admission control
                // stays immediate, so a full queue answers Busy without
                // waiting behind earlier thunks.
                let outcome = net_decode::<RequestWire>(&payload)
                    .map_err(|e| ServeError::Remote(e.to_string()))
                    .and_then(|req| {
                        self.host.submit(DecisionRequest {
                            features: req.features,
                            group_b: req.group_b,
                            route_key: req.route_key,
                            // pre-tenant clients fold into tenant 0
                            tenant: req.tenant.unwrap_or(0),
                        })
                    });
                let timeout = self.timeout;
                Box::new(move || {
                    let resp = match outcome.and_then(|h| h.wait(timeout)) {
                        Ok(d) => ResponseWire::success(DecisionWire {
                            probability: d.probability,
                            favorable: d.favorable,
                            flagged: d.flagged,
                            shard: d.shard,
                        }),
                        Err(e) => match e.wire_code() {
                            // typed admission refusals cross the wire as
                            // coded failures so the client can rebuild them
                            Some(code) => {
                                let tenant = match &e {
                                    ServeError::Throttled { tenant } => Some(*tenant),
                                    _ => None,
                                };
                                ResponseWire::failure_coded(e.to_string(), code, tenant)
                            }
                            None => ResponseWire::failure(e.to_string()),
                        },
                    };
                    emit(&resp)
                })
            }
            FrameKind::Checkpoint => {
                self.host.request_checkpoint();
                let ack = CheckpointAckWire {
                    shards: self.host.shards(),
                    decisions: self.host.served(),
                };
                Box::new(move || emit(&ack))
            }
            FrameKind::Control => {
                let command = net_decode::<ControlWire>(&payload)
                    .map(|c| c.command)
                    .unwrap_or_default();
                // "reshard <M>" blocks for the whole cutover, so it runs in
                // the thunk (writer thread): the reader thread stays free
                // and the ack carries the cutover's conservation numbers.
                if let Some(target) = command.strip_prefix("reshard ") {
                    let target: Result<usize, _> = target.trim().parse();
                    let reshardable = match &self.host {
                        Host::Reshardable(s) => Some(s.clone()),
                        Host::Plain(_) => None,
                    };
                    return Box::new(move || {
                        let (ok, info) = match (reshardable, target) {
                            (_, Err(_)) => (false, "reshard needs a shard count".to_string()),
                            (None, _) => (false, "this worker is not reshardable".to_string()),
                            (Some(s), Ok(m)) => match s.reshard(m) {
                                Ok(r) => (
                                    true,
                                    format!(
                                        "resharded {} -> {}: {} decisions drained, \
                                         {} ledger entries redistributed, {} held submits replayed",
                                        r.from,
                                        r.to,
                                        r.epoch.decisions_served,
                                        r.ledger_entries,
                                        r.held
                                    ),
                                ),
                                Err(e) => (false, format!("reshard failed: {e}")),
                            },
                        };
                        emit(&ControlAckWire { ok, info })
                    });
                }
                let (ok, info) = match command.as_str() {
                    "ping" => (true, "pong".to_string()),
                    "checkpoint" => {
                        self.host.request_checkpoint();
                        (true, "checkpoint requested".to_string())
                    }
                    "shutdown" => {
                        self.shutdown_requested
                            .store(true, std::sync::atomic::Ordering::Release);
                        (true, "shutting down".to_string())
                    }
                    other => (false, format!("unknown command {other:?}")),
                };
                Box::new(move || emit(&ControlAckWire { ok, info }))
            }
            // a response frame arriving at a server is a protocol error
            FrameKind::Response => {
                Box::new(move || emit(&ResponseWire::failure("unexpected response frame")))
            }
        }
    }
}
