//! The decision service: sharded workers, micro-batching, admission
//! control, guard-driven degradation, and graceful shutdown.
//!
//! A [`DecisionService`] owns one worker thread per shard. Requests are
//! routed by key hash onto a shard's **bounded** queue (`try_send`): a full
//! queue sheds the request with [`ServeError::Busy`] instead of letting
//! latency collapse — admission control, not buffering. Each worker drains
//! its queue into micro-batches so one matrix-level `predict_proba` call
//! amortizes model overhead across requests, then walks the batch through
//! the shard's FACT guards. A tripped guard engages the configured
//! [`DegradePolicy`] for a cooldown: decisions are flagged for audit or
//! hard-rejected until the cooldown expires.
//!
//! Shutdown drops the queue senders; workers finish whatever is buffered
//! (every accepted request is answered), then report their totals, which
//! are merged into a [`ServiceReport`].

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::sync::atomic::Ordering;
use std::sync::mpsc::{
    channel, sync_channel, Receiver, RecvTimeoutError, Sender, SyncSender, TryRecvError,
    TrySendError,
};
use std::sync::{Arc, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use fact_core::runtime::Alert;
use fact_ml::Classifier;

use crate::audit_sink::{
    AuditEvent, AuditSink, AuditSinkConfig, AuditSinkHandle, AuditStorage, RecoveryReport,
};
use crate::cache::{CacheConfig, CachedFeatureSource, SystemClock};
use crate::guards::{AlertHub, AlertKind, DegradePolicy, GuardConfig, ServiceAlert, ShardGuards};
use crate::metrics::{CacheSnapshot, MetricsRegistry, MetricsSnapshot};
use crate::source::{FeatureSource, InlineFeatures};

/// Errors surfaced to callers of the service.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The target shard's queue is full; the request was shed at admission.
    Busy {
        /// Shard whose queue was full.
        shard: usize,
    },
    /// The caller's deadline passed before a decision arrived. The request
    /// is *not* cancelled — an accepted request is always served — but the
    /// reply is discarded.
    Timeout {
        /// How long the caller waited.
        waited: Duration,
    },
    /// A guard tripped and the hard-reject policy is active.
    Rejected {
        /// Human-readable reason.
        reason: String,
    },
    /// The request was malformed (e.g. wrong feature count).
    BadRequest(String),
    /// The service is shutting down (or already shut down).
    ShuttingDown,
    /// The model failed on this batch.
    Internal(String),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Busy { shard } => write!(f, "shard {shard} queue full"),
            ServeError::Timeout { waited } => write!(f, "timed out after {waited:?}"),
            ServeError::Rejected { reason } => write!(f, "rejected: {reason}"),
            ServeError::BadRequest(msg) => write!(f, "bad request: {msg}"),
            ServeError::ShuttingDown => write!(f, "service is shutting down"),
            ServeError::Internal(msg) => write!(f, "internal error: {msg}"),
        }
    }
}

impl std::error::Error for ServeError {}

/// Service configuration.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker shards (threads).
    pub shards: usize,
    /// Feature-vector length every request must match.
    pub n_features: usize,
    /// Bounded queue capacity per shard; a full queue sheds requests.
    pub queue_cap: usize,
    /// Largest micro-batch a worker will assemble.
    pub batch_max: usize,
    /// How long a worker waits to top off a partial batch.
    pub batch_linger: Duration,
    /// Default caller deadline for [`DecisionService::decide`].
    pub default_timeout: Duration,
    /// Probability threshold for a favorable decision.
    pub threshold: f64,
    /// What happens to decisions while a guard trip is in effect.
    pub policy: DegradePolicy,
    /// Decisions a guard trip stays in effect for (per shard).
    pub trip_cooldown: u64,
    /// Minimum decisions between forwarded alerts of one kind (per shard).
    pub alert_debounce: u64,
    /// The FACT guard set; `None` serves unguarded (baseline).
    pub guards: Option<GuardConfig>,
    /// Seed decorrelating per-shard DP noise streams.
    pub seed: u64,
    /// Durable audit sink for flagged/rejected decisions and alerts;
    /// `None` keeps the pre-sink behavior (counters only).
    pub audit: Option<AuditSinkConfig>,
    /// Wrap the feature source in a [`CachedFeatureSource`] (sharded TTL
    /// map, negative caching, single-flight); `None` fetches every batch
    /// upstream. The cache's counters land in the service metrics and the
    /// final [`ServiceReport`].
    pub cache: Option<CacheConfig>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            shards: 2,
            n_features: 1,
            queue_cap: 256,
            batch_max: 16,
            batch_linger: Duration::from_micros(200),
            default_timeout: Duration::from_secs(1),
            threshold: 0.5,
            policy: DegradePolicy::AuditAndFlag,
            trip_cooldown: 1_000,
            alert_debounce: 500,
            guards: Some(GuardConfig::default()),
            seed: 0,
            audit: None,
            cache: None,
        }
    }
}

/// One decision request.
#[derive(Debug, Clone)]
pub struct DecisionRequest {
    /// Feature vector (must have `n_features` entries).
    pub features: Vec<f64>,
    /// Protected-group membership, observed by the fairness guard.
    pub group_b: bool,
    /// Routing key (e.g. user id): requests with equal keys land on the
    /// same shard.
    pub route_key: u64,
}

/// One served decision.
#[derive(Debug, Clone, PartialEq)]
pub struct Decision {
    /// Model probability of the favorable class.
    pub probability: f64,
    /// The decision at the configured threshold.
    pub favorable: bool,
    /// True when served in degraded audit-and-flag mode.
    pub flagged: bool,
    /// Shard that served it.
    pub shard: usize,
}

/// An in-flight decision returned by [`DecisionService::submit`].
pub struct DecisionHandle {
    rx: Receiver<Result<Decision, ServeError>>,
    shard: usize,
    metrics: Arc<MetricsRegistry>,
}

impl DecisionHandle {
    /// Block until the decision arrives or `timeout` passes.
    pub fn wait(self, timeout: Duration) -> Result<Decision, ServeError> {
        match self.rx.recv_timeout(timeout) {
            Ok(result) => result,
            Err(RecvTimeoutError::Timeout) => {
                self.metrics
                    .shard(self.shard)
                    .timeouts
                    .fetch_add(1, Ordering::Relaxed);
                Err(ServeError::Timeout { waited: timeout })
            }
            // The worker exited without answering: only possible mid-shutdown.
            Err(RecvTimeoutError::Disconnected) => Err(ServeError::ShuttingDown),
        }
    }

    /// Non-blocking poll; `None` while the decision is still in flight.
    pub fn try_wait(&self) -> Option<Result<Decision, ServeError>> {
        match self.rx.try_recv() {
            Ok(result) => Some(result),
            Err(TryRecvError::Empty) => None,
            Err(TryRecvError::Disconnected) => Some(Err(ServeError::ShuttingDown)),
        }
    }
}

/// What one worker reports when it drains and exits.
#[derive(Debug, Clone)]
pub struct ShardReport {
    /// Shard index.
    pub shard: usize,
    /// Decisions served (including flagged ones).
    pub served: u64,
    /// Hard rejections issued while degraded.
    pub rejected: u64,
    /// Decisions flagged for audit.
    pub flagged: u64,
    /// Micro-batches executed.
    pub batches: u64,
    /// Alerts forwarded to the global channel.
    pub alerts: u64,
    /// ε spent by this shard's DP counter.
    pub epsilon_spent: f64,
}

/// The final accounting returned by [`DecisionService::shutdown`].
#[derive(Debug, Clone)]
pub struct ServiceReport {
    /// Decisions served across all shards.
    pub decisions_served: u64,
    /// Requests shed at admission.
    pub shed: u64,
    /// Caller-side timeouts observed.
    pub timed_out: u64,
    /// Hard rejections issued by the degrade policy.
    pub rejected: u64,
    /// Decisions flagged for audit.
    pub flagged: u64,
    /// Alerts forwarded to the global channel.
    pub alerts_raised: u64,
    /// Total ε spent across shards.
    pub epsilon_spent: f64,
    /// Audit entries durably written (and fsynced) by the sink this run,
    /// including the sink's own lifecycle markers. Zero when no sink is
    /// configured.
    pub audited: u64,
    /// Entries a previous run's crash provably cost, as found by the
    /// sink's startup recovery pass (persisted chain head vs recovered
    /// log, plus any missing-middle segments quantified from neighboring
    /// handoff claims). Zero when no sink is configured.
    pub lost_on_recovery: u64,
    /// Audit-log segments present at shutdown (the sink rolls to a new
    /// segment when the active one exceeds the configured size). Zero when
    /// no sink is configured.
    pub audit_segments: u64,
    /// Feature-cache counters at shutdown (hits, misses, negative hits,
    /// evictions); all zero when no cache is configured.
    pub cache: CacheSnapshot,
    /// Per-shard breakdown.
    pub shards: Vec<ShardReport>,
}

impl ServiceReport {
    /// Render as a short plain-text block.
    pub fn render_text(&self) -> String {
        let mut out = format!(
            "served={} shed={} timed_out={} rejected={} flagged={} alerts={} eps_spent={:.4} \
             audited={} lost_on_recovery={} audit_segments={}\n",
            self.decisions_served,
            self.shed,
            self.timed_out,
            self.rejected,
            self.flagged,
            self.alerts_raised,
            self.epsilon_spent,
            self.audited,
            self.lost_on_recovery,
            self.audit_segments,
        );
        out.push_str(&format!(
            "cache hits={} misses={} neg_hits={} evictions={} hit_rate={:.3}\n",
            self.cache.hits,
            self.cache.misses,
            self.cache.negative_hits,
            self.cache.evictions,
            self.cache.hit_rate(),
        ));
        for s in &self.shards {
            out.push_str(&format!(
                "  shard {}: served={} batches={} rejected={} flagged={} alerts={} eps={:.4}\n",
                s.shard, s.served, s.batches, s.rejected, s.flagged, s.alerts, s.epsilon_spent,
            ));
        }
        out
    }
}

/// One queued request inside a shard.
struct Job {
    features: Vec<f64>,
    group_b: bool,
    route_key: u64,
    enqueued: Instant,
    reply: Sender<Result<Decision, ServeError>>,
}

struct Inner {
    config: ServeConfig,
    metrics: Arc<MetricsRegistry>,
    /// `None` once shutdown has begun: dropping the senders is what tells
    /// the workers to drain and exit.
    senders: RwLock<Option<Vec<SyncSender<Job>>>>,
    workers: Mutex<Vec<JoinHandle<ShardReport>>>,
    alert_rx: Mutex<Receiver<ServiceAlert>>,
    report: Mutex<Option<ServiceReport>>,
    /// The audit sink, finished (drained + stop marker + fsync) at
    /// shutdown, *after* the workers have been joined.
    sink: Mutex<Option<AuditSink>>,
    /// What the sink's startup recovery pass found, if a sink is on.
    audit_recovery: Option<RecoveryReport>,
    /// The cache decorating the feature source, retained so rollouts can
    /// invalidate it through the service; `None` when caching is off.
    cache: Option<Arc<CachedFeatureSource>>,
}

/// A cheaply-cloneable handle to the serving fabric. All clones address the
/// same shards; the service keeps running until [`shutdown`] is called.
///
/// [`shutdown`]: DecisionService::shutdown
#[derive(Clone)]
pub struct DecisionService {
    inner: Arc<Inner>,
}

impl DecisionService {
    /// Start the worker shards around a trained model, with features taken
    /// inline from each request ([`InlineFeatures`]).
    pub fn start(
        model: Arc<dyn Classifier + Send + Sync>,
        config: ServeConfig,
    ) -> Result<Self, ServeError> {
        Self::start_with_source(model, config, Arc::new(InlineFeatures))
    }

    /// Start the worker shards around a trained model and an explicit
    /// [`FeatureSource`] that assembles each micro-batch's feature matrix
    /// (e.g. a simulated or real feature store) before the model scores it.
    pub fn start_with_source(
        model: Arc<dyn Classifier + Send + Sync>,
        config: ServeConfig,
        source: Arc<dyn FeatureSource>,
    ) -> Result<Self, ServeError> {
        let sink = match &config.audit {
            Some(audit_cfg) => Some(
                AuditSink::open(audit_cfg)
                    .map_err(|e| ServeError::Internal(format!("audit sink: {e}")))?,
            ),
            None => None,
        };
        Self::start_inner(model, config, source, sink)
    }

    /// Start with an explicit [`AuditStorage`] backing the audit sink —
    /// the entry point for fault-injection tests and benchmarks. Sink
    /// tuning comes from `config.audit` (or its defaults when `None`);
    /// the configured path is ignored in favor of the given storage.
    pub fn start_with_audit_storage(
        model: Arc<dyn Classifier + Send + Sync>,
        config: ServeConfig,
        source: Arc<dyn FeatureSource>,
        storage: Box<dyn AuditStorage>,
    ) -> Result<Self, ServeError> {
        let audit_cfg = config.audit.clone().unwrap_or_default();
        let sink = AuditSink::open_with_storage(&audit_cfg, storage)
            .map_err(|e| ServeError::Internal(format!("audit sink: {e}")))?;
        Self::start_inner(model, config, source, Some(sink))
    }

    fn start_inner(
        model: Arc<dyn Classifier + Send + Sync>,
        config: ServeConfig,
        source: Arc<dyn FeatureSource>,
        sink: Option<AuditSink>,
    ) -> Result<Self, ServeError> {
        if config.shards == 0
            || config.queue_cap == 0
            || config.batch_max == 0
            || config.n_features == 0
        {
            return Err(ServeError::BadRequest(
                "shards, queue_cap, batch_max, and n_features must be positive".into(),
            ));
        }
        if !(0.0..=1.0).contains(&config.threshold) {
            return Err(ServeError::BadRequest("threshold must be in [0, 1]".into()));
        }
        if let Some(cache) = &config.cache {
            if cache.stripes == 0 || cache.capacity_per_stripe == 0 {
                return Err(ServeError::BadRequest(
                    "cache stripes and capacity_per_stripe must be positive".into(),
                ));
            }
        }
        let metrics = Arc::new(MetricsRegistry::new(config.shards));
        // The cache decorates whatever source the caller supplied, sharing
        // its counters with the registry so snapshots and the final report
        // see hits/misses/negative hits/evictions.
        let cache: Option<Arc<CachedFeatureSource>> = config.cache.as_ref().map(|cache_cfg| {
            Arc::new(CachedFeatureSource::with_clock_and_stats(
                Arc::clone(&source),
                cache_cfg.clone(),
                Arc::new(SystemClock),
                Arc::clone(&metrics.cache),
            ))
        });
        let source: Arc<dyn FeatureSource> = match &cache {
            Some(c) => Arc::clone(c) as Arc<dyn FeatureSource>,
            None => source,
        };
        let (alert_tx, alert_rx) = channel();
        let mut senders = Vec::with_capacity(config.shards);
        let mut workers = Vec::with_capacity(config.shards);
        for shard in 0..config.shards {
            let (tx, rx) = sync_channel::<Job>(config.queue_cap);
            senders.push(tx);
            let guards = match &config.guards {
                Some(g) => Some(
                    ShardGuards::new(g, config.seed.wrapping_add(shard as u64))
                        .map_err(|e| ServeError::BadRequest(e.to_string()))?,
                ),
                None => None,
            };
            let hub = AlertHub::new(
                shard,
                alert_tx.clone(),
                Arc::clone(&metrics),
                config.alert_debounce,
            );
            let worker = ShardWorker {
                shard,
                rx,
                model: Arc::clone(&model),
                source: Arc::clone(&source),
                metrics: Arc::clone(&metrics),
                guards,
                hub,
                threshold: config.threshold,
                batch_max: config.batch_max,
                batch_linger: config.batch_linger,
                policy: config.policy,
                trip_cooldown: config.trip_cooldown,
                audit: sink.as_ref().map(AuditSink::handle),
            };
            workers.push(
                std::thread::Builder::new()
                    .name(format!("fact-serve-{shard}"))
                    .spawn(move || worker.run())
                    .map_err(|e| ServeError::Internal(e.to_string()))?,
            );
        }
        Ok(DecisionService {
            inner: Arc::new(Inner {
                config,
                metrics,
                senders: RwLock::new(Some(senders)),
                workers: Mutex::new(workers),
                alert_rx: Mutex::new(alert_rx),
                report: Mutex::new(None),
                audit_recovery: sink.as_ref().map(|s| s.recovery().clone()),
                sink: Mutex::new(sink),
                cache,
            }),
        })
    }

    fn shard_of(&self, route_key: u64) -> usize {
        let mut h = DefaultHasher::new();
        route_key.hash(&mut h);
        (h.finish() % self.inner.config.shards as u64) as usize
    }

    /// Enqueue a request without waiting for the decision.
    ///
    /// Fails fast with [`ServeError::Busy`] when the shard's queue is full
    /// (load shedding) and [`ServeError::ShuttingDown`] after shutdown has
    /// begun.
    pub fn submit(&self, request: DecisionRequest) -> Result<DecisionHandle, ServeError> {
        if request.features.len() != self.inner.config.n_features {
            return Err(ServeError::BadRequest(format!(
                "expected {} features, got {}",
                self.inner.config.n_features,
                request.features.len()
            )));
        }
        let shard = self.shard_of(request.route_key);
        let (reply_tx, reply_rx) = channel();
        let job = Job {
            features: request.features,
            group_b: request.group_b,
            route_key: request.route_key,
            enqueued: Instant::now(),
            reply: reply_tx,
        };
        let guard = self.inner.senders.read().unwrap_or_else(|e| e.into_inner());
        let senders = guard.as_ref().ok_or(ServeError::ShuttingDown)?;
        let m = self.inner.metrics.shard(shard);
        // The gauge goes up *before* the send: the worker may dequeue (and
        // decrement) the instant try_send returns, so incrementing after
        // would transiently wrap the gauge below zero.
        m.depth_inc();
        match senders[shard].try_send(job) {
            Ok(()) => {
                m.enqueued.fetch_add(1, Ordering::Relaxed);
                Ok(DecisionHandle {
                    rx: reply_rx,
                    shard,
                    metrics: Arc::clone(&self.inner.metrics),
                })
            }
            Err(TrySendError::Full(_)) => {
                m.depth_dec();
                m.shed.fetch_add(1, Ordering::Relaxed);
                Err(ServeError::Busy { shard })
            }
            Err(TrySendError::Disconnected(_)) => {
                m.depth_dec();
                Err(ServeError::ShuttingDown)
            }
        }
    }

    /// Submit and wait for the decision under the configured default
    /// timeout.
    pub fn decide(&self, request: DecisionRequest) -> Result<Decision, ServeError> {
        let timeout = self.inner.config.default_timeout;
        self.submit(request)?.wait(timeout)
    }

    /// An instantaneous metrics snapshot.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.inner.metrics.snapshot()
    }

    /// Drain all alerts currently buffered on the global channel.
    pub fn drain_alerts(&self) -> Vec<ServiceAlert> {
        let rx = self
            .inner
            .alert_rx
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        let mut out = Vec::new();
        while let Ok(a) = rx.try_recv() {
            out.push(a);
        }
        out
    }

    /// The configured shard count.
    pub fn shards(&self) -> usize {
        self.inner.config.shards
    }

    /// What the audit sink's startup recovery pass found, when a sink is
    /// configured: intact entries, truncated tail, and provable loss.
    pub fn audit_recovery(&self) -> Option<&RecoveryReport> {
        self.inner.audit_recovery.as_ref()
    }

    /// Invalidate every cached feature row — the hook a model or schema
    /// rollout calls so decisions stop being served from pre-rollout
    /// features. Bumps the cache's generation counter; stale entries are
    /// dropped lazily on their next lookup (no stop-the-world sweep) and
    /// counted in [`CacheStats`](crate::CacheStats) `invalidated`. Returns
    /// `false` when no cache is configured (nothing to invalidate).
    pub fn invalidate_features(&self) -> bool {
        match &self.inner.cache {
            Some(cache) => {
                cache.invalidate();
                true
            }
            None => false,
        }
    }

    /// Stop admitting requests, let every shard drain its queue, and join
    /// the workers. Every request accepted before shutdown is answered.
    /// Idempotent: later calls (from this or any clone) return the same
    /// report.
    pub fn shutdown(&self) -> ServiceReport {
        {
            // Dropping the senders disconnects the queues; workers exit
            // after serving what is already buffered.
            let mut senders = self
                .inner
                .senders
                .write()
                .unwrap_or_else(|e| e.into_inner());
            senders.take();
        }
        let mut report_slot = self.inner.report.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(report) = report_slot.as_ref() {
            return report.clone();
        }
        let handles: Vec<JoinHandle<ShardReport>> = {
            let mut workers = self.inner.workers.lock().unwrap_or_else(|e| e.into_inner());
            workers.drain(..).collect()
        };
        let mut shards: Vec<ShardReport> = handles
            .into_iter()
            .map(|h| h.join().expect("fact-serve worker panicked"))
            .collect();
        shards.sort_by_key(|s| s.shard);
        // The workers (and their sink handles) are gone: finishing the sink
        // now drains whatever they enqueued, stamps the stop marker, and
        // fsyncs the final batch.
        let sink_report = {
            let mut sink = self.inner.sink.lock().unwrap_or_else(|e| e.into_inner());
            sink.take().map(AuditSink::finish)
        };
        let snap = self.inner.metrics.snapshot();
        let report = ServiceReport {
            decisions_served: shards.iter().map(|s| s.served).sum(),
            shed: snap.shed(),
            timed_out: snap.shards.iter().map(|s| s.timeouts).sum(),
            rejected: shards.iter().map(|s| s.rejected).sum(),
            flagged: shards.iter().map(|s| s.flagged).sum(),
            alerts_raised: shards.iter().map(|s| s.alerts).sum(),
            epsilon_spent: shards.iter().map(|s| s.epsilon_spent).sum(),
            audited: sink_report.as_ref().map_or(0, |r| r.audited),
            lost_on_recovery: sink_report.as_ref().map_or(0, |r| r.recovery.lost),
            audit_segments: sink_report.as_ref().map_or(0, |r| r.segments),
            cache: snap.cache.clone(),
            shards,
        };
        *report_slot = Some(report.clone());
        report
    }
}

/// The per-shard worker loop.
struct ShardWorker {
    shard: usize,
    rx: Receiver<Job>,
    model: Arc<dyn Classifier + Send + Sync>,
    source: Arc<dyn FeatureSource>,
    metrics: Arc<MetricsRegistry>,
    guards: Option<ShardGuards>,
    hub: AlertHub,
    threshold: f64,
    batch_max: usize,
    batch_linger: Duration,
    policy: DegradePolicy,
    trip_cooldown: u64,
    /// Sender into the durable audit sink; `None` when auditing is off.
    audit: Option<AuditSinkHandle>,
}

impl ShardWorker {
    fn run(mut self) -> ShardReport {
        let mut served: u64 = 0;
        let mut rejected: u64 = 0;
        let mut flagged: u64 = 0;
        let mut batches: u64 = 0;
        let mut alerts: u64 = 0;
        // decision count until which the degrade policy stays engaged
        let mut degraded_until: u64 = 0;
        let mut batch: Vec<Job> = Vec::with_capacity(self.batch_max);

        loop {
            // Block for the first job; a disconnect here means the queue is
            // fully drained and shutdown can complete.
            match self.rx.recv() {
                Ok(job) => batch.push(job),
                Err(_) => break,
            }
            // Top off the batch: greedily take what is buffered, then wait
            // out the linger for stragglers.
            let deadline = Instant::now() + self.batch_linger;
            while batch.len() < self.batch_max {
                match self.rx.try_recv() {
                    Ok(job) => batch.push(job),
                    Err(TryRecvError::Disconnected) => break,
                    Err(TryRecvError::Empty) => {
                        let now = Instant::now();
                        if now >= deadline {
                            break;
                        }
                        match self.rx.recv_timeout(deadline - now) {
                            Ok(job) => batch.push(job),
                            Err(_) => break,
                        }
                    }
                }
            }

            let m = self.metrics.shard(self.shard);
            for _ in 0..batch.len() {
                m.depth_dec();
            }
            m.batches.fetch_add(1, Ordering::Relaxed);
            m.batch_items
                .fetch_add(batch.len() as u64, Ordering::Relaxed);
            batches += 1;

            // One batched feature fetch per micro-batch, then one
            // matrix-level model call: both the round trip and the model
            // overhead are amortized across the whole batch.
            let keys: Vec<u64> = batch.iter().map(|j| j.route_key).collect();
            let rows: Vec<Vec<f64>> = batch.iter().map(|j| j.features.clone()).collect();
            let probs = self
                .source
                .fetch_batch(&keys, &rows)
                .and_then(|x| self.model.predict_proba(&x));
            let probs = match probs {
                Ok(p) => p,
                Err(e) => {
                    let msg = e.to_string();
                    for job in batch.drain(..) {
                        let _ = job.reply.send(Err(ServeError::Internal(msg.clone())));
                    }
                    continue;
                }
            };

            let mut raised = Vec::new();
            for (job, p) in batch.drain(..).zip(probs) {
                let favorable = p >= self.threshold;
                served += 1;
                if let Some(g) = &mut self.guards {
                    raised.clear();
                    g.observe(job.group_b, favorable, p, &mut raised);
                    for alert in raised.drain(..) {
                        if let Alert::DpRelease { epsilon, .. } = &alert {
                            // ε is spent whether or not the alert is
                            // debounced out of the channel.
                            self.metrics.add_epsilon(*epsilon);
                        }
                        if AlertKind::of(&alert).trips_policy() {
                            degraded_until = served + self.trip_cooldown;
                        }
                        let summary = self.audit.as_ref().map(|_| format!("{alert:?}"));
                        if self.hub.raise(served, alert) {
                            alerts += 1;
                            if let (Some(sink), Some(summary)) = (&self.audit, summary) {
                                sink.record(AuditEvent::Alert {
                                    shard: self.shard,
                                    at_decision: served,
                                    summary,
                                });
                            }
                        }
                    }
                }
                let degraded = self.policy != DegradePolicy::Off && served <= degraded_until;
                let result = if degraded && self.policy == DegradePolicy::HardReject {
                    rejected += 1;
                    m.rejected.fetch_add(1, Ordering::Relaxed);
                    if let Some(sink) = &self.audit {
                        sink.record(AuditEvent::Rejected {
                            shard: self.shard,
                            route_key: job.route_key,
                        });
                    }
                    Err(ServeError::Rejected {
                        reason: "guard tripped; hard-reject policy active".into(),
                    })
                } else {
                    let flag = degraded && self.policy == DegradePolicy::AuditAndFlag;
                    if flag {
                        flagged += 1;
                        m.flagged.fetch_add(1, Ordering::Relaxed);
                        if let Some(sink) = &self.audit {
                            sink.record(AuditEvent::Flagged {
                                shard: self.shard,
                                route_key: job.route_key,
                                probability: p,
                                favorable,
                                group_b: job.group_b,
                            });
                        }
                    }
                    Ok(Decision {
                        probability: p,
                        favorable,
                        flagged: flag,
                        shard: self.shard,
                    })
                };
                m.served.fetch_add(1, Ordering::Relaxed);
                self.metrics.latency.record(job.enqueued.elapsed());
                // The caller may have timed out and dropped the receiver;
                // an accepted request is still counted as served.
                let _ = job.reply.send(result);
            }
        }

        ShardReport {
            shard: self.shard,
            served,
            rejected,
            flagged,
            batches,
            alerts,
            epsilon_spent: self.guards.as_ref().map_or(0.0, ShardGuards::epsilon_spent),
        }
    }
}
