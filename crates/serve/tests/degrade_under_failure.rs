//! Feature-store outage resilience: every [`DegradePolicy`] exercised
//! while the [`FeatureSource`] is failing or slow.
//!
//! The contract under test: a failed batched fetch fails *that batch's*
//! requests with [`ServeError::Internal`] — it never panics a worker,
//! never wedges the queue, and never silently serves stale features. When
//! the store heals, serving (and the degrade policy's own behavior:
//! flagging or hard-rejecting after a guard trip) resumes unchanged.

use std::sync::Arc;
use std::time::Duration;

use fact_data::{Matrix, Result};
use fact_ml::Classifier;
use fact_serve::{
    CacheConfig, Decision, DecisionRequest, DecisionService, DegradePolicy, FailingFeatureSource,
    FeatureSource, GuardConfig, InlineFeatures, MemStorage, ServeConfig, ServeError,
};

/// Probability = first feature, clamped.
struct PassThrough;

impl Classifier for PassThrough {
    fn predict_proba(&self, x: &Matrix) -> Result<Vec<f64>> {
        Ok((0..x.rows()).map(|i| x.get(i, 0).clamp(0.0, 1.0)).collect())
    }
}

/// Single shard + single-request batches: the Nth decide() call is exactly
/// the Nth batched fetch, so a fail window is a deterministic outage.
fn config(policy: DegradePolicy, guards: Option<GuardConfig>) -> ServeConfig {
    ServeConfig {
        shards: 1,
        n_features: 1,
        queue_cap: 64,
        batch_max: 1,
        batch_linger: Duration::ZERO,
        default_timeout: Duration::from_secs(5),
        policy,
        trip_cooldown: 10_000,
        guards,
        ..ServeConfig::default()
    }
}

/// Guards that trip the fairness monitor quickly under disparity traffic.
fn quick_trip_guards() -> GuardConfig {
    GuardConfig {
        fairness_window: 100,
        min_di: 0.8,
        min_samples_per_group: 10,
        dp_interval: 1_000_000,
        ..GuardConfig::default()
    }
}

/// Group B scores low, group A high: sustained disparate impact.
fn disparity_request(i: u64) -> DecisionRequest {
    let group_b = i.is_multiple_of(2);
    DecisionRequest {
        features: vec![if group_b { 0.1 } else { 0.9 }],
        group_b,
        route_key: i,
        tenant: 0,
    }
}

fn run_traffic(
    service: &DecisionService,
    n: u64,
) -> Vec<std::result::Result<Decision, ServeError>> {
    (0..n)
        .map(|i| service.decide(disparity_request(i)))
        .collect()
}

fn internal_errors(results: &[std::result::Result<Decision, ServeError>]) -> usize {
    results
        .iter()
        .filter(|r| matches!(r, Err(ServeError::Internal(_))))
        .count()
}

#[test]
fn outage_fails_only_its_own_batches_and_heals() {
    let source = Arc::new(FailingFeatureSource::new(Arc::new(InlineFeatures)).fail_window(10, 20));
    let service = DecisionService::start_with_source(
        Arc::new(PassThrough),
        config(DegradePolicy::Off, None),
        Arc::clone(&source) as Arc<dyn FeatureSource>,
    )
    .unwrap();
    let results = run_traffic(&service, 40);
    for (i, r) in results.iter().enumerate() {
        if (10..20).contains(&i) {
            assert!(
                matches!(r, Err(ServeError::Internal(_))),
                "request {i} during the outage must fail: {r:?}"
            );
        } else {
            assert!(
                r.is_ok(),
                "request {i} outside the outage must serve: {r:?}"
            );
        }
    }
    assert_eq!(source.fetches(), 40);
    assert_eq!(source.failures(), 10);
    let report = service.shutdown();
    // failed batches are answered but not *served*
    assert_eq!(report.decisions_served, 30);
}

#[test]
fn audit_and_flag_keeps_flagging_after_the_store_heals() {
    let source = Arc::new(FailingFeatureSource::new(Arc::new(InlineFeatures)).fail_window(50, 60));
    let storage = MemStorage::new();
    let service = DecisionService::start_with_audit_storage(
        Arc::new(PassThrough),
        config(DegradePolicy::AuditAndFlag, Some(quick_trip_guards())),
        Arc::clone(&source) as Arc<dyn FeatureSource>,
        Box::new(storage.clone()),
    )
    .unwrap();
    let results = run_traffic(&service, 400);
    assert_eq!(internal_errors(&results), 10);
    let flagged_after_outage = results[60..]
        .iter()
        .filter(|r| matches!(r, Ok(d) if d.flagged))
        .count();
    assert!(
        flagged_after_outage > 0,
        "flagging must resume once the store heals"
    );
    let report = service.shutdown();
    assert_eq!(report.decisions_served, 390);
    assert!(report.flagged > 0);
    // the outage must not have poisoned the durable audit trail
    assert!(
        report.audited >= report.flagged,
        "audited={} flagged={}",
        report.audited,
        report.flagged
    );
    let entries = fact_serve::audit_sink::parse_log(&storage.log_bytes());
    assert_eq!(
        fact_transparency::verify_chain_from(fact_transparency::ChainHead::genesis(), &entries),
        None,
        "audit chain must verify end-to-end"
    );
}

#[test]
fn hard_reject_still_refuses_after_the_store_heals() {
    let source = Arc::new(FailingFeatureSource::new(Arc::new(InlineFeatures)).fail_window(50, 60));
    let service = DecisionService::start_with_source(
        Arc::new(PassThrough),
        config(DegradePolicy::HardReject, Some(quick_trip_guards())),
        Arc::clone(&source) as Arc<dyn FeatureSource>,
    )
    .unwrap();
    let results = run_traffic(&service, 400);
    assert_eq!(internal_errors(&results), 10);
    let rejected_after_outage = results[60..]
        .iter()
        .filter(|r| matches!(r, Err(ServeError::Rejected { .. })))
        .count();
    assert!(
        rejected_after_outage > 0,
        "hard-reject must stay engaged across the outage"
    );
    let report = service.shutdown();
    assert!(report.rejected > 0);
    assert_eq!(report.decisions_served, 390);
}

#[test]
fn permanent_outage_fails_everything_but_shutdown_still_drains() {
    let source = Arc::new(FailingFeatureSource::new(Arc::new(InlineFeatures)).fail_from(0));
    let service = DecisionService::start_with_source(
        Arc::new(PassThrough),
        config(DegradePolicy::AuditAndFlag, Some(quick_trip_guards())),
        Arc::clone(&source) as Arc<dyn FeatureSource>,
    )
    .unwrap();
    let results = run_traffic(&service, 50);
    assert_eq!(internal_errors(&results), 50);
    let report = service.shutdown();
    assert_eq!(report.decisions_served, 0);
    assert_eq!(report.flagged, 0);
}

/// TTLs long enough that nothing expires mid-test: the outage is bridged
/// (or not) purely by what the warm phase cached.
fn long_lived_cache() -> CacheConfig {
    CacheConfig {
        stripes: 4,
        positive_ttl: Duration::from_secs(3_600),
        negative_ttl: Duration::from_secs(3_600),
        capacity_per_stripe: 1_024,
    }
}

/// Keys the warm phase touches; with `batch_max: 1` each costs exactly one
/// upstream fetch, so `fail_from(WARM_KEYS)` starts the outage the moment
/// warming ends.
const WARM_KEYS: u64 = 40;

#[test]
fn warm_cache_bridges_a_permanent_store_outage() {
    let source = Arc::new(FailingFeatureSource::new(Arc::new(InlineFeatures)).fail_from(WARM_KEYS));
    let service = DecisionService::start_with_source(
        Arc::new(PassThrough),
        ServeConfig {
            cache: Some(long_lived_cache()),
            ..config(DegradePolicy::Off, None)
        },
        Arc::clone(&source) as Arc<dyn FeatureSource>,
    )
    .unwrap();

    // Warm: every key misses once and is fetched from the (healthy) store.
    assert!(run_traffic(&service, WARM_KEYS).iter().all(|r| r.is_ok()));
    assert_eq!(source.fetches(), WARM_KEYS);

    // Outage: the store now fails every fetch, but five full rounds over
    // the warm keyspace are served entirely from cache — the store is not
    // even probed.
    for _ in 0..5 {
        let results = run_traffic(&service, WARM_KEYS);
        assert!(results.iter().all(|r| r.is_ok()), "warm keys must serve");
    }
    assert_eq!(
        source.fetches(),
        WARM_KEYS,
        "no upstream probes for warm keys"
    );
    assert_eq!(source.failures(), 0);

    // A cold key hits the dead store once, then fails fast from the
    // negative cache without another probe.
    let cold = disparity_request(1_000);
    for _ in 0..3 {
        assert!(matches!(
            service.decide(cold.clone()),
            Err(ServeError::Internal(_))
        ));
    }
    assert_eq!(source.fetches(), WARM_KEYS + 1, "one probe, then fail-fast");
    assert_eq!(source.failures(), 1);

    let report = service.shutdown();
    assert_eq!(report.decisions_served, WARM_KEYS * 6);
    assert!(report.cache.hits >= WARM_KEYS * 5);
    assert!(report.cache.negative_hits >= 2);
}

#[test]
fn every_degrade_policy_survives_an_outage_on_a_warm_cache() {
    for policy in [
        DegradePolicy::Off,
        DegradePolicy::AuditAndFlag,
        DegradePolicy::HardReject,
    ] {
        let source =
            Arc::new(FailingFeatureSource::new(Arc::new(InlineFeatures)).fail_from(WARM_KEYS));
        let service = DecisionService::start_with_source(
            Arc::new(PassThrough),
            ServeConfig {
                cache: Some(long_lived_cache()),
                ..config(policy, Some(quick_trip_guards()))
            },
            Arc::clone(&source) as Arc<dyn FeatureSource>,
        )
        .unwrap();

        // Warm phase populates the cache; the disparity traffic also trips
        // the fairness guard, engaging the policy. Features are fetched
        // before the policy is applied, so even hard-rejected warm
        // requests fill the cache.
        run_traffic(&service, WARM_KEYS);
        assert_eq!(source.fetches(), WARM_KEYS, "{policy:?}: warm fetches");

        // Outage over warm keys: the store is dead, yet not a single
        // request fails with Internal — the cache bridges it, and the
        // degrade policy's own behavior stays intact throughout.
        let mut results = Vec::new();
        for _ in 0..5 {
            results.extend(run_traffic(&service, WARM_KEYS));
        }
        assert_eq!(
            internal_errors(&results),
            0,
            "{policy:?}: outage must be invisible on warm keys"
        );
        assert_eq!(source.failures(), 0, "{policy:?}: store never probed");
        match policy {
            DegradePolicy::Off => assert!(results.iter().all(|r| r.is_ok())),
            DegradePolicy::AuditAndFlag => assert!(
                results.iter().any(|r| matches!(r, Ok(d) if d.flagged)),
                "flagging must continue through the outage"
            ),
            DegradePolicy::HardReject => assert!(
                results
                    .iter()
                    .any(|r| matches!(r, Err(ServeError::Rejected { .. }))),
                "hard-reject must stay engaged through the outage"
            ),
        }
        let report = service.shutdown();
        assert!(report.cache.hits >= WARM_KEYS * 5, "{policy:?}: cache hits");
    }
}

#[test]
fn slow_store_degrades_latency_not_correctness() {
    let source = Arc::new(
        FailingFeatureSource::new(Arc::new(InlineFeatures)).with_latency(Duration::from_millis(2)),
    );
    let service = DecisionService::start_with_source(
        Arc::new(PassThrough),
        config(DegradePolicy::Off, None),
        Arc::clone(&source) as Arc<dyn FeatureSource>,
    )
    .unwrap();
    let results = run_traffic(&service, 20);
    assert!(results.iter().all(|r| r.is_ok()));
    assert_eq!(source.failures(), 0);
    let report = service.shutdown();
    assert_eq!(report.decisions_served, 20);
}
