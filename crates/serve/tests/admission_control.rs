//! Property and regression tests for the adaptive admission controller.
//!
//! The proptest half drives an [`AdmissionController`] through arbitrary
//! interleavings of latency samples, admit calls, and clock advances on a
//! [`ManualClock`] — no sleeps, no real time — and pins the two invariants
//! the ISSUE names:
//!
//! 1. the effective capacity never leaves `[floor, queue_cap]`, and
//! 2. while the observed p99 stays above target, the capacity sequence is
//!    non-increasing: more load can never buy more admitted concurrency.
//!
//! The service-level half pins the config edge cases (`queue_cap: 0`,
//! `capacity_per_stripe: 0`, malformed admission knobs) as loud
//! `BadRequest`s at startup, and tenant quotas as typed `Throttled`
//! errors end to end.

use std::sync::Arc;
use std::time::Duration;

use fact_data::Matrix;
use fact_ml::Classifier;
use fact_serve::cache::{Clock, ManualClock};
use fact_serve::{
    AdmissionConfig, AdmissionController, AdmissionDecision, AdmissionStats, CacheConfig,
    DecisionRequest, DecisionService, ServeConfig, ServeError,
};
use proptest::prelude::*;

/// Scores 0.9 for everything, instantly.
struct FastModel;

impl Classifier for FastModel {
    fn predict_proba(&self, x: &Matrix) -> fact_data::Result<Vec<f64>> {
        Ok(vec![0.9; x.rows()])
    }
}

fn controller(cfg: AdmissionConfig, queue_cap: usize) -> (Arc<ManualClock>, AdmissionController) {
    let clock = Arc::new(ManualClock::new());
    let c = AdmissionController::new(
        cfg,
        queue_cap,
        Arc::clone(&clock) as Arc<dyn Clock>,
        Arc::new(AdmissionStats::default()),
    );
    (clock, c)
}

/// One step of an arbitrary interleaving.
#[derive(Debug, Clone)]
enum Op {
    /// Feed a served latency (microseconds) into the rolling window.
    Record(u64),
    /// An arrival for `tenant` with the shard at `depth`.
    Admit(u64, u64),
    /// Let `ms` of manual-clock time pass.
    Advance(u64),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    // the vendored proptest has no prop_oneof!: select the variant with a
    // discriminant drawn alongside the payloads
    (0u8..3, 0u64..100_000, (0u64..8, 0u64..512)).prop_map(|(sel, us, (tenant, depth))| match sel {
        0 => Op::Record(us),
        1 => Op::Admit(tenant, depth),
        _ => Op::Advance(us % 50),
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Under ANY interleaving of samples, arrivals, and time, the
    /// effective capacity stays inside `[floor, queue_cap]` — the
    /// controller can neither black-hole a live service nor admit past
    /// the queue bound.
    #[test]
    fn effective_cap_never_leaves_its_bounds(
        queue_cap in 1usize..300,
        min_cap in 0usize..400, // deliberately allowed to exceed queue_cap
        ops in prop::collection::vec(op_strategy(), 0..200),
    ) {
        let cfg = AdmissionConfig {
            target_p99: Duration::from_millis(10),
            min_cap,
            tick: Duration::from_millis(5),
            ..AdmissionConfig::default()
        };
        let floor = min_cap.clamp(1, queue_cap);
        let (clock, c) = controller(cfg, queue_cap);
        prop_assert_eq!(c.effective_cap(), floor);
        for op in ops {
            match op {
                Op::Record(us) => c.record_latency(Duration::from_micros(us)),
                Op::Admit(tenant, depth) => { let _ = c.admit(tenant, depth); }
                Op::Advance(ms) => clock.advance(Duration::from_millis(ms)),
            }
            let cap = c.effective_cap();
            prop_assert!(
                (floor..=queue_cap).contains(&cap),
                "cap {} escaped [{}, {}]", cap, floor, queue_cap
            );
        }
    }

    /// While every control window observes a p99 above target, capacity
    /// is non-increasing tick after tick: ramping load harder never
    /// increases admitted concurrency.
    #[test]
    fn over_target_windows_never_grow_capacity(
        rounds in 1usize..40,
        samples_per_round in 1usize..20,
        over_by_us in 1u64..1_000_000,
    ) {
        let cfg = AdmissionConfig {
            target_p99: Duration::from_millis(10),
            min_cap: 1,
            tick: Duration::from_millis(5),
            ..AdmissionConfig::default()
        };
        let tick = cfg.tick;
        let over = cfg.target_p99 + Duration::from_micros(over_by_us);
        let (clock, c) = controller(cfg, 256);
        // warm the controller up first so there is capacity to lose
        for _ in 0..10 {
            clock.advance(tick + Duration::from_nanos(1));
            let _ = c.admit(0, 0); // idle-window probe tick
        }
        let mut prev = c.effective_cap();
        for _ in 0..rounds {
            for _ in 0..samples_per_round {
                c.record_latency(over);
            }
            clock.advance(tick + Duration::from_nanos(1));
            c.record_latency(over); // crosses the tick deadline
            let cap = c.effective_cap();
            prop_assert!(
                cap <= prev,
                "cap grew {} -> {} with p99 over target", prev, cap
            );
            prev = cap;
        }
    }

    /// Shedding honors the adaptive bound exactly: a request is admitted
    /// iff depth < effective capacity (quotas off).
    #[test]
    fn admit_matches_effective_cap_exactly(
        warm_ticks in 0usize..20,
        depth in 0u64..512,
    ) {
        let cfg = AdmissionConfig {
            target_p99: Duration::from_millis(10),
            min_cap: 2,
            tick: Duration::from_millis(5),
            ..AdmissionConfig::default()
        };
        let tick = cfg.tick;
        let (clock, c) = controller(cfg, 64);
        for _ in 0..warm_ticks {
            clock.advance(tick + Duration::from_nanos(1));
            let _ = c.admit(0, 0);
        }
        let cap = c.effective_cap() as u64;
        let expect = if depth < cap {
            AdmissionDecision::Admit
        } else {
            AdmissionDecision::Shed
        };
        prop_assert_eq!(c.admit(0, depth), expect);
    }
}

// ---- service-level regressions ----

fn admitted_config(admission: AdmissionConfig) -> ServeConfig {
    ServeConfig {
        shards: 2,
        n_features: 1,
        guards: None,
        admission: Some(admission),
        ..ServeConfig::default()
    }
}

fn request(tenant: u64, key: u64) -> DecisionRequest {
    DecisionRequest {
        features: vec![0.9],
        group_b: false,
        route_key: key,
        tenant,
    }
}

#[test]
fn zero_queue_cap_with_admission_is_rejected_at_startup() {
    let cfg = ServeConfig {
        queue_cap: 0,
        ..admitted_config(AdmissionConfig::default())
    };
    let err = match DecisionService::start(Arc::new(FastModel), cfg) {
        Ok(_) => panic!("queue_cap 0 must not start"),
        Err(e) => e,
    };
    assert!(matches!(err, ServeError::BadRequest(_)), "{err:?}");
}

#[test]
fn zero_capacity_per_stripe_is_rejected_at_startup() {
    let cfg = ServeConfig {
        cache: Some(CacheConfig {
            capacity_per_stripe: 0,
            ..CacheConfig::default()
        }),
        guards: None,
        ..ServeConfig::default()
    };
    let err = match DecisionService::start(Arc::new(FastModel), cfg) {
        Ok(_) => panic!("capacity_per_stripe 0 must not start"),
        Err(e) => e,
    };
    assert!(
        matches!(&err, ServeError::BadRequest(msg) if msg.contains("capacity_per_stripe")),
        "{err:?}"
    );
}

#[test]
fn malformed_admission_knobs_are_rejected_at_startup() {
    for bad in [
        AdmissionConfig {
            decrease: 1.5,
            ..AdmissionConfig::default()
        },
        AdmissionConfig {
            increase: 0,
            ..AdmissionConfig::default()
        },
        AdmissionConfig {
            target_p99: Duration::ZERO,
            ..AdmissionConfig::default()
        },
        AdmissionConfig {
            tenant_rate: f64::NAN,
            ..AdmissionConfig::default()
        },
    ] {
        let err = match DecisionService::start(Arc::new(FastModel), admitted_config(bad.clone())) {
            Ok(_) => panic!("bad admission config must not start: {bad:?}"),
            Err(e) => e,
        };
        assert!(matches!(err, ServeError::BadRequest(_)), "{err:?}");
    }
}

#[test]
fn over_quota_tenant_gets_typed_throttled_and_counters() {
    // hard quotas make this deterministic: burst 4 at a slow refill means
    // the fifth back-to-back request throttles no matter how fast the
    // service is
    let service = DecisionService::start(
        Arc::new(FastModel),
        admitted_config(AdmissionConfig {
            tenant_rate: 0.001,
            tenant_burst: 4.0,
            ..AdmissionConfig::default()
        }),
    )
    .unwrap();

    for i in 0..4 {
        service.decide(request(9, i)).unwrap();
    }
    let err = service.decide(request(9, 4)).unwrap_err();
    assert!(
        matches!(err, ServeError::Throttled { tenant: 9 }),
        "{err:?}"
    );
    // a different tenant has its own untouched bucket
    service.decide(request(3, 5)).unwrap();

    let snap = service.metrics();
    assert_eq!(snap.throttled(), 1);
    let t9 = snap.admission.tenant(9).expect("tenant 9 tracked");
    assert_eq!(t9.admitted, 4);
    assert_eq!(t9.throttled, 1);
    let t3 = snap.admission.tenant(3).expect("tenant 3 tracked");
    assert_eq!(t3.admitted, 1);
    assert_eq!(t3.throttled, 0);

    let report = service.shutdown();
    assert_eq!(report.throttled, 1);
    let text = report.render_text();
    assert!(text.contains("throttled=1"), "{text}");
    assert!(text.contains("tenant 9:"), "{text}");
}

#[test]
fn admission_off_keeps_the_legacy_static_bound() {
    // no admission config: tenants are ignored and nothing throttles
    let service = DecisionService::start(
        Arc::new(FastModel),
        ServeConfig {
            shards: 2,
            n_features: 1,
            guards: None,
            ..ServeConfig::default()
        },
    )
    .unwrap();
    for i in 0..50 {
        service.decide(request(i % 3, i)).unwrap();
    }
    let snap = service.metrics();
    assert_eq!(snap.throttled(), 0);
    assert_eq!(snap.admission.ticks, 0, "no controller, no ticks");
    let report = service.shutdown();
    assert_eq!(report.decisions_served, 50);
    assert_eq!(report.throttled, 0);
}

#[test]
fn slow_start_ramps_to_queue_cap_under_light_load() {
    // with real traffic comfortably under target, the controller must
    // open up from its floor instead of pinning throughput at min_cap
    let service = DecisionService::start(
        Arc::new(FastModel),
        admitted_config(AdmissionConfig {
            min_cap: 1,
            increase: 64,
            tick: Duration::from_millis(1),
            target_p99: Duration::from_secs(1), // everything is under target
            ..AdmissionConfig::default()
        }),
    )
    .unwrap();
    for i in 0..2_000 {
        service.decide(request(0, i)).unwrap();
    }
    let snap = service.metrics();
    assert!(
        snap.admission.ticks > 0,
        "2k decisions must cross some 1ms ticks"
    );
    assert!(
        snap.admission.effective_cap > 1,
        "capacity must grow off the floor: {:?}",
        snap.admission
    );
    service.shutdown();
}
