//! Per-tenant admission isolation, end to end, in both topologies.
//!
//! A hot tenant that floods past its token quota must be refused with the
//! *typed* `ServeError::Throttled` — and a quiet tenant sharing the same
//! service must see zero sheds and zero throttles — whether the shards
//! are local worker threads or live behind a fact-net socket in a worker
//! process (here: an in-process `Server` + `NetShardHandler`, the exact
//! stack `fact-shardd` runs; the spawned-binary variant is exercised by
//! `exp_e18`).
//!
//! Determinism comes from *hard* token quotas: burst `B` at a near-zero
//! refill rate means request `B + 1` in a back-to-back burst throttles no
//! matter how fast or slow the machine is — no sleeps, no latency
//! assumptions.

use std::sync::Arc;
use std::time::Duration;

use fact_data::{Matrix, Result};
use fact_ml::Classifier;
use fact_net::{Server, ShardHandler};
use fact_serve::service::NetShardHandler;
use fact_serve::{
    AdmissionConfig, DecisionRequest, DecisionService, ServeConfig, ServeError, ShardSlot,
};

const HOT: u64 = 1;
const QUIET: u64 = 2;
const BURST: u64 = 8;
const FLOOD: u64 = 40;

/// Probability = first feature.
struct StubModel;
impl Classifier for StubModel {
    fn predict_proba(&self, x: &Matrix) -> Result<Vec<f64>> {
        Ok((0..x.rows()).map(|i| x.get(i, 0).clamp(0.0, 1.0)).collect())
    }
}

fn admission() -> AdmissionConfig {
    AdmissionConfig {
        // ~zero refill: the burst is the whole budget for this test
        tenant_rate: 0.000_001,
        tenant_burst: BURST as f64,
        ..AdmissionConfig::default()
    }
}

fn worker_config() -> ServeConfig {
    ServeConfig {
        shards: 4,
        n_features: 1,
        guards: None,
        admission: Some(admission()),
        ..ServeConfig::default()
    }
}

fn request(tenant: u64, key: u64) -> DecisionRequest {
    DecisionRequest {
        features: vec![0.9],
        group_b: key % 2 == 0,
        route_key: key,
        tenant,
    }
}

/// Flood with HOT, then drive QUIET; return (hot_ok, hot_throttled).
fn drive(service: &DecisionService) -> (u64, u64) {
    let mut hot_ok = 0;
    let mut hot_throttled = 0;
    for i in 0..FLOOD {
        match service.decide(request(HOT, i)) {
            Ok(_) => hot_ok += 1,
            Err(ServeError::Throttled { tenant }) => {
                assert_eq!(tenant, HOT, "throttle must name the offending tenant");
                hot_throttled += 1;
            }
            Err(e) => panic!("unexpected error for hot tenant: {e:?}"),
        }
    }
    // the quiet tenant's bucket is untouched by the flood
    for i in 0..5 {
        service
            .decide(request(QUIET, 1_000 + i))
            .expect("quiet tenant must be unaffected");
    }
    (hot_ok, hot_throttled)
}

#[test]
fn local_topology_throttles_hot_tenant_and_spares_quiet_one() {
    let service = DecisionService::start(Arc::new(StubModel), worker_config()).unwrap();
    let (hot_ok, hot_throttled) = drive(&service);

    assert_eq!(hot_ok, BURST, "exactly the burst is admitted");
    assert_eq!(hot_throttled, FLOOD - BURST);

    let snap = service.metrics();
    let hot = snap.admission.tenant(HOT).expect("hot tenant tracked");
    assert_eq!(hot.admitted, BURST);
    assert_eq!(hot.throttled, FLOOD - BURST);
    let quiet = snap.admission.tenant(QUIET).expect("quiet tenant tracked");
    assert_eq!(quiet.admitted, 5);
    assert_eq!(quiet.shed, 0, "quiet tenant shed rate must be ~0");
    assert_eq!(quiet.throttled, 0);

    let report = service.shutdown();
    assert_eq!(report.decisions_served, BURST + 5);
    assert_eq!(report.throttled, FLOOD - BURST);
}

#[test]
fn remote_topology_carries_typed_throttles_across_the_wire() {
    // worker side: the same stack fact-shardd runs — a guarded service
    // with admission enabled behind a fact-net server
    let sock = std::env::temp_dir().join(format!("fact-serve-iso-{}.sock", std::process::id()));
    let worker = DecisionService::start(Arc::new(StubModel), worker_config()).unwrap();
    let handler = NetShardHandler::new(worker.clone(), Duration::from_secs(5));
    let mut server = Server::bind(&sock, Arc::new(handler) as Arc<dyn ShardHandler>).unwrap();

    // client side: a 4-slot map, every slot dialing the worker socket;
    // the client itself runs NO admission — policy lives with the worker
    let client = DecisionService::start(
        Arc::new(StubModel),
        ServeConfig {
            shards: 4,
            n_features: 1,
            guards: None,
            topology: Some(vec![ShardSlot::Remote(sock.clone()); 4]),
            default_timeout: Duration::from_secs(5),
            ..ServeConfig::default()
        },
    )
    .unwrap();

    let (hot_ok, hot_throttled) = drive(&client);
    assert_eq!(hot_ok, BURST);
    assert_eq!(hot_throttled, FLOOD - BURST);

    // the worker tracked the tenants; the client mirrored the typed
    // errors into its shard counters
    let wsnap = worker.metrics();
    let hot = wsnap.admission.tenant(HOT).expect("hot tenant tracked");
    assert_eq!(hot.admitted, BURST);
    assert_eq!(hot.throttled, FLOOD - BURST);
    let quiet = wsnap.admission.tenant(QUIET).expect("quiet tenant tracked");
    assert_eq!(quiet.admitted, 5);
    assert_eq!(quiet.shed, 0);
    assert_eq!(quiet.throttled, 0);

    let csnap = client.metrics();
    let client_throttled: u64 = csnap.shards.iter().map(|s| s.throttled).sum();
    assert_eq!(
        client_throttled,
        FLOOD - BURST,
        "client shard counters must mirror remote throttles"
    );

    let creport = client.shutdown();
    assert_eq!(creport.decisions_served, BURST + 5);
    server.shutdown();
    let wreport = worker.shutdown();
    assert_eq!(wreport.decisions_served, BURST + 5);
    assert_eq!(wreport.throttled, FLOOD - BURST);
    let _ = std::fs::remove_file(&sock);
}
