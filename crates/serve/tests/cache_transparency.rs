//! Cache transparency: for a key-deterministic upstream,
//! [`CachedFeatureSource`] is row-for-row indistinguishable from the
//! uncached source — for *any* key sequence, TTL schedule, stripe count,
//! capacity (eviction pressure included), and worker count.
//!
//! This is the soundness contract from the cache's module docs, checked as
//! a property rather than by example: whatever mix of hits, misses,
//! expiries, evictions, and coalesced flights a workload produces, the
//! rows that come back must be exactly what the upstream would have
//! returned. [`InlineFeatures`] qualifies as key-deterministic here
//! because every request derives its inline row from its key.

use std::sync::Arc;
use std::time::Duration;

use fact_serve::{
    CacheConfig, CachedFeatureSource, Clock, FeatureSource, InlineFeatures, ManualClock,
};
use proptest::prelude::*;

/// The key-deterministic feature row: any pure function of the key works;
/// this one varies every component so row mix-ups can't cancel out.
fn row_for(key: u64) -> Vec<f64> {
    vec![
        key as f64 * 0.25,
        ((key % 7) as f64).sin(),
        (key ^ (key >> 3)) as f64,
    ]
}

fn assert_transparent(
    cache: &CachedFeatureSource,
    keys: &[u64],
) -> std::result::Result<(), TestCaseError> {
    let inline: Vec<Vec<f64>> = keys.iter().map(|&k| row_for(k)).collect();
    let expected = InlineFeatures.fetch_batch(keys, &inline).unwrap();
    let got = cache.fetch_batch(keys, &inline).unwrap();
    prop_assert_eq!(got.rows(), expected.rows());
    prop_assert_eq!(got.cols(), expected.cols());
    for i in 0..expected.rows() {
        prop_assert_eq!(got.row(i), expected.row(i));
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any batch/TTL sequence against any cache shape: rows identical to
    /// the uncached source. Tiny capacities force evictions, tiny TTLs
    /// force expiries, duplicate keys in a batch exercise dedup — none of
    /// it may be observable in the returned matrices.
    #[test]
    fn cached_rows_equal_uncached_rows_for_any_sequence(
        stripes in 1usize..5,
        positive_ttl_ms in 1u64..2_000,
        negative_ttl_ms in 1u64..500,
        capacity in 1usize..8,
        steps in prop::collection::vec(
            (prop::collection::vec(0u64..24, 1..10), 0u64..1_500),
            1..30,
        ),
    ) {
        let clock = Arc::new(ManualClock::new());
        let cache = CachedFeatureSource::with_clock(
            Arc::new(InlineFeatures),
            CacheConfig {
                stripes,
                positive_ttl: Duration::from_millis(positive_ttl_ms),
                negative_ttl: Duration::from_millis(negative_ttl_ms),
                capacity_per_stripe: capacity,
            },
            Arc::clone(&clock) as Arc<dyn Clock>,
        );
        for (keys, advance_ms) in steps {
            assert_transparent(&cache, &keys)?;
            clock.advance(Duration::from_millis(advance_ms));
        }
    }
}

/// The same invariant under real concurrency: 1, 2, and 4 workers hammer
/// one shared cache (small capacity, so eviction and re-fetch race with
/// hits and coalesced flights) and every returned row must still be the
/// upstream's. Per-thread key streams are deterministic, so any failure
/// reproduces.
#[test]
fn cached_rows_equal_uncached_rows_at_any_worker_count() {
    for workers in [1usize, 2, 4] {
        let cache = Arc::new(CachedFeatureSource::new(
            Arc::new(InlineFeatures),
            CacheConfig {
                stripes: 4,
                positive_ttl: Duration::from_millis(5),
                negative_ttl: Duration::from_millis(1),
                capacity_per_stripe: 4,
            },
        ));
        let handles: Vec<_> = (0..workers)
            .map(|t| {
                let cache = Arc::clone(&cache);
                std::thread::spawn(move || {
                    // splitmix64-style per-thread key stream
                    let mut state = 0x9e37_79b9_7f4a_7c15u64.wrapping_mul(t as u64 + 1);
                    for _ in 0..300 {
                        let keys: Vec<u64> = (0..4)
                            .map(|_| {
                                state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
                                let mut z = state;
                                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                                z ^ (z >> 27)
                            })
                            .map(|z| z % 32)
                            .collect();
                        let inline: Vec<Vec<f64>> = keys.iter().map(|&k| row_for(k)).collect();
                        let got = cache.fetch_batch(&keys, &inline).unwrap();
                        for (i, &k) in keys.iter().enumerate() {
                            assert_eq!(got.row(i), row_for(k).as_slice(), "key {k}");
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert!(
            cache.stats().snapshot().evictions > 0,
            "stress must actually exercise eviction at {workers} workers"
        );
    }
}
