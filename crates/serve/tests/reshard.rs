//! Live-reshard coverage: the checkpoint transform conserves every count,
//! the cutover gate holds and replays concurrent submits, the hold window
//! is bounded by a typed refusal, and the `"reshard <M>"` control command
//! works end to end over fact-net.

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use fact_data::{Matrix, Result};
use fact_ml::Classifier;
use fact_net::{RemoteShard, Server, ShardHandler};
use fact_serve::{
    load_checkpoint, transform_checkpoints, write_checkpoint, CheckpointConfig, DecisionRequest,
    GuardCheckpoint, GuardConfig, LedgerEntry, NetShardHandler, ReshardConfig, ReshardableService,
    ServeConfig, ServeError,
};

/// Probability = first feature.
struct StubModel;
impl Classifier for StubModel {
    fn predict_proba(&self, x: &Matrix) -> Result<Vec<f64>> {
        Ok((0..x.rows()).map(|i| x.get(i, 0).clamp(0.0, 1.0)).collect())
    }
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fact-reshard-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn config(shards: usize, ckpt_dir: &std::path::Path) -> ServeConfig {
    ServeConfig {
        shards,
        n_features: 1,
        guards: Some(GuardConfig {
            fairness_window: 500,
            min_samples_per_group: 20,
            dp_interval: 100,
            ..GuardConfig::default()
        }),
        checkpoint: Some(CheckpointConfig {
            dir: ckpt_dir.to_path_buf(),
            every: 200,
            segment_events: 50,
        }),
        ..ServeConfig::default()
    }
}

fn request(i: u64) -> DecisionRequest {
    let group_b = i % 2 == 0;
    DecisionRequest {
        features: vec![if group_b { 0.3 } else { 0.7 }],
        group_b,
        route_key: i,
        tenant: 0,
    }
}

fn sidecar(shard: u64, decisions: u64, n_ledger: usize, eps_each: f64) -> GuardCheckpoint {
    let window = fact_fairness::WindowSummary::from_events(
        500,
        50,
        (0..decisions.min(500)).map(|i| (i % 2 == 0, i % 3 == 0)),
    )
    .unwrap();
    GuardCheckpoint {
        shard,
        decisions,
        window,
        ledger: (0..n_ledger)
            .map(|_| LedgerEntry {
                label: "dp-release".into(),
                epsilon: eps_each,
                delta: 0.0,
            })
            .collect(),
        budget_epsilon: 1.0,
        budget_delta: 0.0,
        dp_pending: decisions % 100,
        dp_exhausted: false,
    }
}

#[test]
fn transform_conserves_counts_ledger_and_decisions() {
    let dir = temp_dir("transform");
    std::fs::create_dir_all(&dir).unwrap();
    // 4 uneven shards, shrink to 3 then grow to 8
    let mut pre_decisions = 0;
    let mut pre_ledger = 0;
    for shard in 0..4u64 {
        let ck = sidecar(shard, 100 + shard * 37, 3 + shard as usize, 0.01);
        pre_decisions += ck.decisions;
        pre_ledger += ck.ledger.len() as u64;
        write_checkpoint(&dir, &ck).unwrap();
    }

    let shrink = transform_checkpoints(&dir, 4, 3).unwrap();
    assert_eq!(shrink.pre_counts, shrink.post_counts, "window conservation");
    assert_eq!(shrink.pre_decisions, pre_decisions);
    assert_eq!(shrink.post_decisions, pre_decisions);
    assert_eq!(shrink.ledger_entries, pre_ledger);
    // the stale 4th sidecar is gone so a later grow cannot resurrect it
    assert!(load_checkpoint(&dir, 3).unwrap().is_none());

    // every surviving sidecar is loadable and the ledgers sum back
    let total_ledger: usize = (0..3)
        .map(|s| load_checkpoint(&dir, s).unwrap().unwrap().ledger.len())
        .sum();
    assert_eq!(total_ledger as u64, pre_ledger);

    let grow = transform_checkpoints(&dir, 3, 8).unwrap();
    assert_eq!(grow.pre_counts, shrink.post_counts, "chained transforms");
    assert_eq!(grow.pre_counts, grow.post_counts);
    assert_eq!(grow.post_decisions, pre_decisions);
    assert_eq!(grow.ledger_entries, pre_ledger);
    for s in 0..8 {
        assert!(load_checkpoint(&dir, s).unwrap().is_some(), "sidecar {s}");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn transform_refuses_over_budget_successor_without_writing() {
    let dir = temp_dir("budget");
    std::fs::create_dir_all(&dir).unwrap();
    // 4 shards × 30 entries × 0.01 ε = 1.2 ε total; into 1 successor that
    // exceeds the 1.0 budget, so the shrink must refuse
    for shard in 0..4u64 {
        write_checkpoint(&dir, &sidecar(shard, 200, 30, 0.01)).unwrap();
    }
    let before = load_checkpoint(&dir, 0).unwrap().unwrap();
    let err = transform_checkpoints(&dir, 4, 1).unwrap_err();
    assert!(matches!(err, ServeError::BadRequest(_)), "{err:?}");
    assert!(err.to_string().contains("budget"), "{err}");
    // nothing was written: sidecar 0 is untouched and 1..4 still exist
    assert_eq!(load_checkpoint(&dir, 0).unwrap().unwrap(), before);
    assert!(load_checkpoint(&dir, 3).unwrap().is_some());
    // spreading the same ledger over 2 successors fits (0.6 each)
    transform_checkpoints(&dir, 4, 2).unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn reshard_grows_and_shrinks_under_concurrent_load_without_losing_decisions() {
    let dir = temp_dir("live");
    let service = ReshardableService::start(
        Arc::new(StubModel),
        config(4, &dir),
        ReshardConfig {
            hold_max: Duration::from_secs(30),
        },
    )
    .unwrap();
    assert_eq!(service.shards(), 4);

    let stop = Arc::new(AtomicBool::new(false));
    let issued = Arc::new(AtomicU64::new(0));
    let ok = Arc::new(AtomicU64::new(0));
    let drivers: Vec<_> = (0..2)
        .map(|t| {
            let service = service.clone();
            let stop = Arc::clone(&stop);
            let issued = Arc::clone(&issued);
            let ok = Arc::clone(&ok);
            std::thread::spawn(move || {
                let mut i = t * 1_000_000u64;
                while !stop.load(Ordering::Relaxed) {
                    i += 1;
                    issued.fetch_add(1, Ordering::Relaxed);
                    service.decide(request(i)).unwrap();
                    ok.fetch_add(1, Ordering::Relaxed);
                }
            })
        })
        .collect();

    // let the drivers build real guard state, then cut over twice
    while ok.load(Ordering::Relaxed) < 500 {
        std::thread::sleep(Duration::from_millis(5));
    }
    let grow = service.reshard(8).unwrap();
    assert_eq!((grow.from, grow.to), (4, 8));
    assert_eq!(grow.pre_counts, grow.post_counts, "window conservation");
    assert_eq!(grow.pre_decisions, grow.post_decisions);
    assert_eq!(service.shards(), 8);

    let mid = ok.load(Ordering::Relaxed);
    while ok.load(Ordering::Relaxed) < mid + 500 {
        std::thread::sleep(Duration::from_millis(5));
    }
    let shrink = service.reshard(3).unwrap();
    assert_eq!((shrink.from, shrink.to), (8, 3));
    assert_eq!(shrink.pre_counts, shrink.post_counts);
    assert_eq!(service.shards(), 3);
    // the drained epoch between the two cutovers is accounted for
    assert!(shrink.epoch.decisions_served >= 500, "{:?}", shrink.epoch);

    stop.store(true, Ordering::Relaxed);
    for d in drivers {
        d.join().expect("driver saw an error — a decision was lost");
    }
    let epochs = service.shutdown();
    assert_eq!(epochs.len(), 3, "one report per topology epoch");
    let served: u64 = epochs.iter().map(|e| e.decisions_served).sum();
    assert_eq!(issued.load(Ordering::Relaxed), ok.load(Ordering::Relaxed));
    assert_eq!(served, ok.load(Ordering::Relaxed), "zero lost decisions");
    // lifetime decisions survived both transforms into the final sidecars
    let ck_total: u64 = (0..3)
        .map(|s| load_checkpoint(&dir, s).unwrap().unwrap().decisions)
        .sum();
    assert_eq!(ck_total, served);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn submits_past_the_hold_window_get_a_typed_retryable_refusal() {
    let dir = temp_dir("hold");
    // a reshard against a service whose guards/checkpoints are off fails
    // fast — but first, pin the gate semantics with a zero hold window by
    // racing a submit against a real (slow) cutover
    let service = ReshardableService::start(
        Arc::new(StubModel),
        config(2, &dir),
        ReshardConfig {
            hold_max: Duration::ZERO,
        },
    )
    .unwrap();
    for i in 0..100 {
        service.decide(request(i)).unwrap();
    }
    // run the cutover on another thread; with hold_max = 0 any submit that
    // lands mid-cutover must see Resharding, never a hang or a drop
    let svc = service.clone();
    let cutover = std::thread::spawn(move || svc.reshard(5).unwrap());
    let mut saw_refusal = false;
    for i in 0..10_000u64 {
        match service.submit(request(1_000 + i)) {
            Ok(h) => {
                h.wait(Duration::from_secs(5)).unwrap();
            }
            Err(ServeError::Resharding) => {
                saw_refusal = true;
                break;
            }
            Err(e) => panic!("only Resharding is acceptable mid-cutover: {e:?}"),
        }
    }
    let report = cutover.join().unwrap();
    assert_eq!(report.to, 5);
    assert!(
        saw_refusal,
        "a zero hold window during a cutover must refuse at least one submit"
    );
    // after the cutover the same caller succeeds on retry — the refusal
    // was transient back-pressure, not a lost request
    service.decide(request(77)).unwrap();
    service.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn reshard_without_checkpointing_is_a_typed_error() {
    let service = ReshardableService::start(
        Arc::new(StubModel),
        ServeConfig {
            shards: 2,
            n_features: 1,
            guards: None,
            ..ServeConfig::default()
        },
        ReshardConfig::default(),
    )
    .unwrap();
    service.decide(request(1)).unwrap();
    let err = service.reshard(4).unwrap_err();
    assert!(matches!(err, ServeError::BadRequest(_)), "{err:?}");
    // the refusal must not have disturbed the running service
    service.decide(request(2)).unwrap();
    service.shutdown();
}

#[test]
fn over_budget_shrink_rolls_back_and_keeps_serving() {
    let dir = temp_dir("rollback");
    // fat ε releases: 4 shards spending 0.3 per release soon carry more
    // ledger ε than one successor's 1.0 budget can replay
    let mut cfg = config(4, &dir);
    cfg.guards = Some(GuardConfig {
        fairness_window: 500,
        min_samples_per_group: 20,
        dp_interval: 50,
        epsilon_per_release: 0.3,
        ..GuardConfig::default()
    });
    let service =
        ReshardableService::start(Arc::new(StubModel), cfg, ReshardConfig::default()).unwrap();
    // ~600 decisions → ≥ 12 releases → ≥ 3.6 ε in the combined ledger
    for i in 0..600 {
        service.decide(request(i)).unwrap();
    }
    let err = service.reshard(1).unwrap_err();
    assert!(err.to_string().contains("budget"), "{err}");
    // the refusal rolled back: still 4 shards, still serving, and the
    // sidecars still carry the full 4-shard state
    assert_eq!(service.shards(), 4);
    service.decide(request(9_999)).unwrap();
    let total: u64 = (0..4)
        .map(|s| load_checkpoint(&dir, s).unwrap().unwrap().decisions)
        .sum();
    assert_eq!(total, 600, "drained sidecars survive the refusal untouched");
    // a feasible target still works after the refusal
    let report = service.reshard(8).unwrap();
    assert_eq!(report.pre_counts, report.post_counts);
    service.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn reshard_control_command_works_over_fact_net() {
    let dir = temp_dir("wire");
    let sock = std::env::temp_dir().join(format!("fact-reshard-wire-{}.sock", std::process::id()));
    let service = ReshardableService::start(
        Arc::new(StubModel),
        config(4, &dir),
        ReshardConfig::default(),
    )
    .unwrap();
    let handler = NetShardHandler::reshardable(service.clone(), Duration::from_secs(5));
    let mut server = Server::bind(&sock, Arc::new(handler) as Arc<dyn ShardHandler>).unwrap();

    let client = RemoteShard::connect(&sock).unwrap();
    for i in 0..300u64 {
        let wire = fact_net::RequestWire {
            features: vec![0.4],
            group_b: i % 2 == 0,
            route_key: i,
            tenant: None,
        };
        let frame = client
            .send(
                fact_net::FrameKind::Request,
                fact_net::encode(&wire).unwrap(),
            )
            .unwrap()
            .wait(Duration::from_secs(5))
            .unwrap();
        let resp: fact_net::ResponseWire = fact_net::decode(&frame.payload).unwrap();
        resp.into_result().unwrap();
    }

    let ack = client
        .control("reshard 2", Duration::from_secs(30))
        .unwrap();
    let wire: fact_net::ControlAckWire = fact_net::decode(&ack.payload).unwrap();
    assert!(wire.ok, "{}", wire.info);
    assert!(wire.info.contains("resharded 4 -> 2"), "{}", wire.info);
    assert_eq!(service.shards(), 2);

    // the worker keeps serving after the cutover
    let wire = fact_net::RequestWire {
        features: vec![0.9],
        group_b: false,
        route_key: 9,
        tenant: None,
    };
    let frame = client
        .send(
            fact_net::FrameKind::Request,
            fact_net::encode(&wire).unwrap(),
        )
        .unwrap()
        .wait(Duration::from_secs(5))
        .unwrap();
    let resp: fact_net::ResponseWire = fact_net::decode(&frame.payload).unwrap();
    assert!(resp.into_result().unwrap().favorable);

    // a malformed count and a plain-host reshard are refusals, not panics
    let ack = client
        .control("reshard nope", Duration::from_secs(5))
        .unwrap();
    let wire: fact_net::ControlAckWire = fact_net::decode(&ack.payload).unwrap();
    assert!(!wire.ok);

    server.shutdown();
    service.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
