//! Integration coverage for the fact-net serving path and guard-state
//! checkpointing: a service resumes its fairness window and ε ledger
//! across a restart, and a remote topology serves decisions through a
//! worker-hosted service — including healing across a worker restart
//! that restores from checkpoint.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

use fact_data::{Matrix, Result};
use fact_ml::Classifier;
use fact_net::{Server, ShardHandler};
use fact_serve::service::NetShardHandler;
use fact_serve::{
    load_checkpoint, CheckpointConfig, DecisionRequest, DecisionService, GuardConfig, ServeConfig,
    ShardSlot,
};

/// Probability = first feature.
struct StubModel;
impl Classifier for StubModel {
    fn predict_proba(&self, x: &Matrix) -> Result<Vec<f64>> {
        Ok((0..x.rows()).map(|i| x.get(i, 0).clamp(0.0, 1.0)).collect())
    }
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fact-serve-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn guarded_config(ckpt_dir: &std::path::Path) -> ServeConfig {
    ServeConfig {
        shards: 1,
        n_features: 1,
        guards: Some(GuardConfig {
            fairness_window: 500,
            min_samples_per_group: 20,
            dp_interval: 100,
            ..GuardConfig::default()
        }),
        checkpoint: Some(CheckpointConfig {
            dir: ckpt_dir.to_path_buf(),
            every: 200,
            segment_events: 50,
        }),
        ..ServeConfig::default()
    }
}

fn drive(service: &DecisionService, n: u64) {
    for i in 0..n {
        let group_b = i % 2 == 0;
        service
            .decide(DecisionRequest {
                features: vec![if group_b { 0.3 } else { 0.7 }],
                group_b,
                route_key: i,
                tenant: 0,
            })
            .unwrap();
    }
}

#[test]
fn restart_resumes_fairness_window_and_epsilon_ledger() {
    let dir = temp_dir("resume");

    // run 1: 1000 decisions → periodic checkpoints plus a final one
    let service = DecisionService::start(Arc::new(StubModel), guarded_config(&dir)).unwrap();
    drive(&service, 1000);
    let report1 = service.shutdown();
    assert_eq!(report1.decisions_served, 1000);
    assert!(report1.checkpoints_written >= 5, "{report1:?}");
    assert_eq!(report1.shards[0].resumed_at, 0, "first boot starts fresh");
    // 1000 decisions at dp_interval 100 → ε was spent
    assert!(report1.epsilon_spent > 0.0);

    let ck = load_checkpoint(&dir, 0).unwrap().expect("final checkpoint");
    assert_eq!(ck.decisions, 1000);
    assert_eq!(ck.ledger.len(), 10);
    // the window carries real counts (last 500 events, segment-summarized)
    assert_eq!(ck.window.total_events(), 500);

    // run 2 over the same sidecar dir: the shard resumes, not resets
    let service = DecisionService::start(Arc::new(StubModel), guarded_config(&dir)).unwrap();
    let ds = service.clone();
    drive(&ds, 250);
    let report2 = service.shutdown();
    assert_eq!(report2.shards[0].resumed_at, 1000, "{report2:?}");
    // ε is *lifetime*: the replayed ledger plus run 2's releases
    assert!(
        report2.epsilon_spent > report1.epsilon_spent,
        "ledger must survive the restart: {} vs {}",
        report2.epsilon_spent,
        report1.epsilon_spent
    );
    let ck2 = load_checkpoint(&dir, 0).unwrap().unwrap();
    assert_eq!(
        ck2.decisions, 1250,
        "lifetime decision count survives restarts"
    );
    assert!(ck2.ledger.len() > ck.ledger.len());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_checkpoint_fails_startup_loudly() {
    let dir = temp_dir("corrupt");
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(fact_serve::checkpoint_path(&dir, 0), b"{ torn").unwrap();
    let err = match DecisionService::start(Arc::new(StubModel), guarded_config(&dir)) {
        Ok(_) => panic!("startup over a torn checkpoint must fail"),
        Err(e) => e,
    };
    assert!(
        err.to_string().contains("checkpoint"),
        "a torn checkpoint must not silently reset guard state: {err}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

fn start_worker(sock: &std::path::Path, ckpt_dir: &std::path::Path) -> (DecisionService, Server) {
    let service = DecisionService::start(Arc::new(StubModel), guarded_config(ckpt_dir)).unwrap();
    let handler = NetShardHandler::new(service.clone(), Duration::from_secs(5));
    let server = Server::bind(sock, Arc::new(handler) as Arc<dyn ShardHandler>).unwrap();
    (service, server)
}

#[test]
fn remote_topology_serves_and_heals_across_worker_restart() {
    let ckpt_dir = temp_dir("remote-ck");
    let sock = std::env::temp_dir().join(format!("fact-serve-rt-{}.sock", std::process::id()));

    // worker process stand-in: a guarded service behind a fact-net server
    let (worker, mut server) = start_worker(&sock, &ckpt_dir);

    // client: same routing fabric, but shard 0 lives behind the socket
    let client = DecisionService::start(
        Arc::new(StubModel),
        ServeConfig {
            shards: 1,
            n_features: 1,
            guards: None,
            topology: Some(vec![ShardSlot::Remote(sock.clone())]),
            ..ServeConfig::default()
        },
    )
    .unwrap();

    for i in 0..300u64 {
        let group_b = i % 2 == 0;
        let d = client
            .decide(DecisionRequest {
                features: vec![if group_b { 0.3 } else { 0.7 }],
                group_b,
                route_key: i,
                tenant: 0,
            })
            .unwrap();
        assert_eq!(d.favorable, !group_b);
        assert_eq!(d.shard, 0, "client-side slot index");
    }
    let live = client.remote_stats();
    assert_eq!(live.len(), 1);
    assert_eq!(live[0].requests, 300);
    assert_eq!(live[0].served, 300);
    assert!(live[0].rtt_mean_micros > 0.0);

    // worker "dies" (graceful here; the process-level kill lives in E16):
    // its final checkpoint lands in ckpt_dir
    server.shutdown();
    let worker_report = worker.shutdown();
    assert_eq!(worker_report.decisions_served, 300);
    assert!(worker_report.checkpoints_written >= 1);

    // while the worker is down, decisions fail with a typed remote error
    let err = client
        .decide(DecisionRequest {
            features: vec![0.5],
            group_b: false,
            route_key: 1,
            tenant: 0,
        })
        .unwrap_err();
    assert!(matches!(err, fact_serve::ServeError::Remote(_)), "{err:?}");

    // respawn: the worker restores lifetime state from the checkpoint and
    // the client heals on its next request (reconnect counted)
    let (worker2, mut server2) = start_worker(&sock, &ckpt_dir);
    let mut healed = false;
    for _ in 0..100 {
        match client.decide(DecisionRequest {
            features: vec![0.9],
            group_b: false,
            route_key: 7,
            tenant: 0,
        }) {
            Ok(d) => {
                assert!(d.favorable);
                healed = true;
                break;
            }
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
    assert!(healed, "client never healed after worker restart");
    assert!(client.remote_stats()[0].reconnects >= 1);

    let client_report = client.shutdown();
    assert_eq!(client_report.remotes.len(), 1);
    assert!(client_report.decisions_served >= 301);
    let text = client_report.render_text();
    assert!(text.contains("remote shard 0:"), "{text}");

    server2.shutdown();
    let report2 = worker2.shutdown();
    assert_eq!(
        report2.shards[0].resumed_at, 300,
        "worker resumed from the checkpoint, not from zero"
    );
    let _ = std::fs::remove_dir_all(&ckpt_dir);
}
