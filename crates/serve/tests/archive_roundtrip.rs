//! Property tests for the audit-segment archive: the LZSS codec and the
//! FACZ container must restore **byte-identical** content for arbitrary
//! inputs, and a store the archiver has partially compacted — any mix of
//! live, archived, and legitimately pruned leading segments — must still
//! verify end to end with zero loss.

use std::time::Duration;

use proptest::prelude::*;
use proptest::prop::collection::vec as pvec;

use fact_serve::audit_sink::parse_log;
use fact_serve::{
    archive_run_once, decode_archive, encode_archive, read_segment_or_archive, verify_all_segments,
    ArchiveConfig, ArchiveStats, AuditEvent, AuditSink, AuditSinkConfig, AuditStorage, MemStorage,
};
use fact_transparency::{verify_chain_from, ChainHead};

/// Rotate `details` strings through a real sink so every generated batch
/// becomes hash-chained JSONL across several sealed segments.
fn rotated_store(storage: &MemStorage, details: &[String]) {
    let sink = AuditSink::open_with_storage(
        &AuditSinkConfig {
            batch_max: 2,
            flush_interval: Duration::from_millis(1),
            max_segment_bytes: 1,
            ..AuditSinkConfig::default()
        },
        Box::new(storage.clone()),
    )
    .unwrap();
    let h = sink.handle();
    for (k, d) in details.iter().enumerate() {
        // Alert carries an arbitrary string payload — the way to push
        // generated content through the chained-JSONL serialization
        h.record(AuditEvent::Alert {
            shard: k % 3,
            at_decision: k as u64,
            summary: d.clone(),
        });
    }
    drop(h);
    sink.finish();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The raw container roundtrip: arbitrary bytes (including empty and
    /// highly repetitive shapes the LZSS fast path loves) survive
    /// compress → encode → decode byte-identically.
    #[test]
    fn container_roundtrips_arbitrary_bytes(
        segment in 0u64..=u64::MAX,
        bytes in pvec(any::<u8>(), 0..4096),
    ) {
        let container = encode_archive(segment, &bytes);
        let (seg, restored) = decode_archive(&container).unwrap();
        prop_assert_eq!(seg, segment);
        prop_assert_eq!(restored, bytes);
    }

    /// Archive → restore over *chained* content: arbitrary entry batches
    /// rotated into segments, everything sealed compacted, every segment
    /// (live or archived) restored byte-identically, and the whole store
    /// still verifying as one chain with zero loss.
    #[test]
    fn archived_store_restores_and_verifies(
        details in pvec("[ -~]{0,40}", 1..24),
        retain in 0u64..3,
    ) {
        let storage = MemStorage::new();
        rotated_store(&storage, &details);
        let live = storage.segment_ids();
        let newest = *live.last().unwrap();
        let originals: Vec<(u64, Vec<u8>)> = live
            .iter()
            .map(|&id| (id, storage.segment_bytes(id).unwrap()))
            .collect();
        let total = parse_log(&storage.log_bytes()).len();

        let mut probe: Box<dyn AuditStorage> = Box::new(storage.clone());
        let stats = ArchiveStats::default();
        let cfg = ArchiveConfig { retain_segments: retain, ..ArchiveConfig::default() };
        let pass = archive_run_once(probe.as_mut(), &cfg, newest, &stats).unwrap();
        prop_assert!(pass.skipped.is_empty(), "{:?}", pass);
        let sealed = live.len() - 1;
        prop_assert_eq!(pass.archived.len(), sealed.saturating_sub(retain as usize));

        // every original — compacted or not — restores byte-identically
        for (id, bytes) in &originals {
            prop_assert_eq!(&read_segment_or_archive(probe.as_mut(), *id).unwrap(), bytes);
        }
        // the mixed live/archived store is still one continuous history
        let audit = verify_all_segments(probe.as_mut()).unwrap();
        prop_assert!(audit.continuous, "{:?}", audit);
        prop_assert_eq!(audit.segments.len(), live.len());
        let mut all = Vec::new();
        for &id in &live {
            all.extend(read_segment_or_archive(probe.as_mut(), id).unwrap());
        }
        let entries = parse_log(&all);
        prop_assert_eq!(verify_chain_from(ChainHead::genesis(), &entries), None);
        prop_assert_eq!(entries.len(), total);

        // and a restarted sink over it reports zero loss
        let sink = AuditSink::open_with_storage(
            &AuditSinkConfig {
                batch_max: 2,
                flush_interval: Duration::from_millis(1),
                max_segment_bytes: 1,
                ..AuditSinkConfig::default()
            },
            Box::new(storage.clone()),
        )
        .unwrap();
        let rec = sink.recovery().clone();
        sink.finish();
        prop_assert_eq!(rec.lost, 0);
        prop_assert_eq!(rec.missing_segments, 0);
    }

    /// A leading gap — the oldest archives pruned outright by a retention
    /// policy — is *not* loss: verification over what remains stays
    /// continuous and recovery reports nothing missing.
    #[test]
    fn pruned_leading_archives_are_not_loss(
        details in pvec("[ -~]{0,40}", 6..18),
        prune in 1usize..3,
    ) {
        let storage = MemStorage::new();
        rotated_store(&storage, &details);
        let live = storage.segment_ids();
        let newest = *live.last().unwrap();
        prop_assume!(live.len() > prune + 1);

        let mut probe: Box<dyn AuditStorage> = Box::new(storage.clone());
        let stats = ArchiveStats::default();
        let cfg = ArchiveConfig { retain_segments: 0, ..ArchiveConfig::default() };
        archive_run_once(probe.as_mut(), &cfg, newest, &stats).unwrap();
        // the operator prunes the oldest archives per retention policy
        for &id in &live[..prune] {
            prop_assert!(storage.remove_archive(id));
        }

        let audit = verify_all_segments(probe.as_mut()).unwrap();
        prop_assert!(audit.continuous, "{:?}", audit);
        prop_assert_eq!(audit.segments.len(), live.len() - prune);

        let sink = AuditSink::open_with_storage(
            &AuditSinkConfig {
                batch_max: 2,
                flush_interval: Duration::from_millis(1),
                max_segment_bytes: 1,
                ..AuditSinkConfig::default()
            },
            Box::new(storage.clone()),
        )
        .unwrap();
        let rec = sink.recovery().clone();
        sink.finish();
        prop_assert_eq!(rec.lost, 0);
        prop_assert_eq!(rec.missing_segments, 0);
    }
}
