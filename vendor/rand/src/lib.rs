//! Offline stand-in for the parts of `rand` 0.8 this workspace uses.
//!
//! The build environment has no network access and no vendored registry, so
//! the workspace routes its `rand` dependency here. The API mirrors the real
//! crate for the subset actually called: `StdRng` (a deterministic
//! xoshiro256++ generator), `SeedableRng::seed_from_u64`, `Rng::{gen,
//! gen_range, gen_bool}`, and `seq::SliceRandom::{shuffle, choose}`.
//! Sequences are deterministic per seed but are *not* byte-compatible with
//! the real `rand` crate.

pub mod rngs;
pub mod seq;

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction of a generator from a small seed.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types samplable uniformly from a generator's "standard" distribution
/// (mirrors `rand::distributions::Standard`).
pub trait SampleStandard: Sized {
    /// Draw one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl SampleStandard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl SampleStandard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl SampleStandard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl SampleStandard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges samplable uniformly (mirrors `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Draw one value from the range. Panics on an empty range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in gen_range");
        let u = f64::sample_standard(rng);
        let v = self.start + u * (self.end - self.start);
        // guard against rounding up to the excluded endpoint
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range in gen_range");
        // map a 53-bit draw onto the closed interval
        let u = (rng.next_u64() >> 11) as f64 / ((1u64 << 53) - 1) as f64;
        lo + u * (hi - lo)
    }
}

impl SampleRange<f32> for core::ops::Range<f32> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "empty range in gen_range");
        let u = f32::sample_standard(rng);
        let v = self.start + u * (self.end - self.start);
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl SampleRange<f32> for core::ops::RangeInclusive<f32> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range in gen_range");
        let u = (rng.next_u64() >> 40) as f32 / ((1u32 << 24) - 1) as f32;
        lo + u * (hi - lo)
    }
}

/// Unbiased draw from `[0, span)` via 128-bit widening multiply (Lemire).
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    let mut m = rng.next_u64() as u128 * span as u128;
    let mut lo = m as u64;
    if lo < span {
        let threshold = span.wrapping_neg() % span;
        while lo < threshold {
            m = rng.next_u64() as u128 * span as u128;
            lo = m as u64;
        }
    }
    (m >> 64) as u64
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(uniform_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_u64(rng, span as u64) as $t)
            }
        }
    )*};
}
impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Convenience sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// A value from the standard distribution of `T` (floats in `[0, 1)`).
    fn gen<T: SampleStandard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// A uniform value from `range`.
    fn gen_range<T, Ra: SampleRange<T>>(&mut self, range: Ra) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of [0, 1]: {p}");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn float_ranges_respect_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v: f64 = r.gen_range(-2.0..2.0);
            assert!((-2.0..2.0).contains(&v));
            let w: f64 = r.gen_range(0.0..=1.0);
            assert!((0.0..=1.0).contains(&w));
            let u: f64 = r.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn int_ranges_hit_all_values() {
        let mut r = StdRng::seed_from_u64(2);
        let mut seen = [false; 5];
        for _ in 0..1_000 {
            seen[r.gen_range(0usize..5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..1_000 {
            let v = r.gen_range(18..=90i64);
            assert!((18..=90).contains(&v));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = StdRng::seed_from_u64(3);
        let hits = (0..100_000).filter(|_| r.gen_bool(0.3)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.3).abs() < 0.01, "rate {rate}");
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
    }

    #[test]
    fn uniform_mean_is_centered() {
        let mut r = StdRng::seed_from_u64(4);
        let n = 200_000;
        let mean: f64 = (0..n).map(|_| r.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.005, "mean {mean}");
    }
}
