//! Offline stand-in for the `criterion` API subset this workspace uses.
//!
//! Runs each benchmark long enough for a stable median-of-samples estimate
//! and prints `name ... time/iter` lines. No statistical machinery, HTML
//! reports, or baseline comparisons — just honest wall-clock numbers so
//! `cargo bench` works in the offline build environment.

use std::time::{Duration, Instant};

/// Prevent the optimizer from discarding a value (re-export shape matches
/// `criterion::black_box`).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How `iter_batched` amortizes setup cost. Only a hint here.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs (setup re-runs every iteration).
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// Timing driver handed to benchmark closures.
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
}

impl Bencher {
    fn new(sample_count: usize) -> Self {
        Bencher {
            samples: Vec::with_capacity(sample_count),
            iters_per_sample: 1,
        }
    }

    /// Benchmark `routine` by timing batches of calls.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // calibrate: grow the batch until one sample takes >= 1 ms
        let mut iters = 1u64;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(1) || iters >= 1 << 20 {
                self.iters_per_sample = iters;
                break;
            }
            iters *= 2;
        }
        let sample_count = self.samples.capacity().max(1);
        for _ in 0..sample_count {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(routine());
            }
            self.samples.push(start.elapsed());
        }
    }

    /// Benchmark `routine` on fresh inputs from `setup`, excluding setup
    /// time from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let sample_count = self.samples.capacity().max(1);
        self.iters_per_sample = 1;
        for _ in 0..sample_count {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed());
        }
    }

    fn median_ns(&self) -> f64 {
        if self.samples.is_empty() {
            return 0.0;
        }
        let mut ns: Vec<f64> = self
            .samples
            .iter()
            .map(|d| d.as_nanos() as f64 / self.iters_per_sample as f64)
            .collect();
        ns.sort_by(|a, b| a.partial_cmp(b).unwrap());
        ns[ns.len() / 2]
    }
}

fn human(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// A named group of benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_count: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set how many timed samples to take per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_count = n.max(1);
        self
    }

    /// Run one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new(self.sample_count);
        f(&mut b);
        println!("{}/{:<40} {:>12}/iter", self.name, id, human(b.median_ns()));
        self
    }

    /// End the group (matches the criterion API; nothing to flush here).
    pub fn finish(&mut self) {}
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Open a named group.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_count: 10,
            _criterion: self,
        }
    }

    /// Run one ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new(10);
        f(&mut b);
        println!("{:<40} {:>12}/iter", id, human(b.median_ns()));
        self
    }
}

/// Declare a group-runner function, criterion style.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declare the bench `main`, criterion style.
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_machinery_runs() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("smoke");
        g.sample_size(3);
        g.bench_function("add", |b| b.iter(|| black_box(1u64) + black_box(2u64)));
        g.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput)
        });
        g.finish();
    }

    #[test]
    fn human_units() {
        assert!(human(12.0).ends_with("ns"));
        assert!(human(12_000.0).ends_with("µs"));
        assert!(human(12_000_000.0).ends_with("ms"));
        assert!(human(12_000_000_000.0).ends_with("s"));
    }
}
