//! Derive macros for the vendored `serde` stand-in.
//!
//! Supports exactly the shapes this workspace derives:
//!
//! * structs with named fields (any field visibility, doc comments fine);
//! * enums whose variants are all unit variants (serialized as their name).
//!
//! No `#[serde(...)]` attributes, no generics, no tuple structs. Anything
//! else produces a `compile_error!` pointing here.
//!
//! The implementation walks the raw `proc_macro::TokenStream` (no `syn` /
//! `quote` — the build environment is offline) and emits the impl as a
//! string, which is parsed back into a token stream.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// What we learned about the deriving type.
enum Shape {
    /// Struct with named fields (field names in declaration order).
    Struct { name: String, fields: Vec<String> },
    /// Enum with unit variants only.
    Enum { name: String, variants: Vec<String> },
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().unwrap()
}

/// Skip attributes (`#[...]`) and visibility (`pub`, `pub(crate)`, …) from
/// the front of `tokens`, starting at `i`.
fn skip_attrs_and_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                // '#' then the bracket group
                i += 2;
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1; // pub(crate) / pub(super)
                    }
                }
            }
            _ => return i,
        }
    }
}

/// Parse the derive input into a [`Shape`].
fn parse(input: TokenStream) -> Result<Shape, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = skip_attrs_and_vis(&tokens, 0);

    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("unexpected token {other:?}")),
    };
    if kind != "struct" && kind != "enum" {
        return Err(format!("cannot derive for `{kind}` items"));
    }
    i += 1;

    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected type name, got {other:?}")),
    };
    i += 1;

    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            return Err(format!(
                "generic type `{name}` is not supported by the vendored serde_derive"
            ));
        }
    }

    let body = match tokens.get(i) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        other => {
            return Err(format!(
                "expected a braced body for `{name}` (tuple/unit structs \
                 unsupported), got {other:?}"
            ));
        }
    };
    let body: Vec<TokenTree> = body.into_iter().collect();

    if kind == "struct" {
        Ok(Shape::Struct {
            name,
            fields: parse_named_fields(&body)?,
        })
    } else {
        Ok(Shape::Enum {
            name,
            variants: parse_unit_variants(&body)?,
        })
    }
}

/// `field_name: Type,` sequences. Types may contain `<...>` with commas.
fn parse_named_fields(body: &[TokenTree]) -> Result<Vec<String>, String> {
    let mut fields = Vec::new();
    let mut i = 0;
    while i < body.len() {
        i = skip_attrs_and_vis(body, i);
        if i >= body.len() {
            break;
        }
        let field = match &body[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => return Err(format!("expected field name, got {other:?}")),
        };
        i += 1;
        match body.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => return Err(format!("expected `:` after `{field}`, got {other:?}")),
        }
        // skip the type: tokens until a comma at angle-bracket depth 0
        let mut angle = 0i32;
        while i < body.len() {
            match &body[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        fields.push(field);
    }
    Ok(fields)
}

/// `Variant,` sequences; any payload group is an error.
fn parse_unit_variants(body: &[TokenTree]) -> Result<Vec<String>, String> {
    let mut variants = Vec::new();
    let mut i = 0;
    while i < body.len() {
        i = skip_attrs_and_vis(body, i);
        if i >= body.len() {
            break;
        }
        let variant = match &body[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => return Err(format!("expected variant name, got {other:?}")),
        };
        i += 1;
        match body.get(i) {
            None => {}
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => i += 1,
            Some(TokenTree::Group(_)) => {
                return Err(format!(
                    "variant `{variant}` has a payload; only unit variants are supported"
                ))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == '=' => {
                return Err(format!(
                    "variant `{variant}` has a discriminant; unsupported"
                ))
            }
            Some(other) => return Err(format!("unexpected token {other:?}")),
        }
        variants.push(variant);
    }
    Ok(variants)
}

/// `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let shape = match parse(input) {
        Ok(s) => s,
        Err(e) => return compile_error(&e),
    };
    let code = match shape {
        Shape::Struct { name, fields } => {
            let pushes: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "__fields.push((::std::string::ToString::to_string({f:?}), \
                         ::serde::Serialize::to_value(&self.{f})));\n"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::value::Value {{\n\
                         let mut __fields: ::std::vec::Vec<(::std::string::String, ::serde::value::Value)> = ::std::vec::Vec::new();\n\
                         {pushes}\
                         ::serde::value::Value::Object(__fields)\n\
                     }}\n\
                 }}"
            )
        }
        Shape::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| {
                    format!("{name}::{v} => ::serde::value::Value::String({v:?}.to_string()),\n")
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::value::Value {{\n\
                         match self {{ {arms} }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse().unwrap()
}

/// `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let shape = match parse(input) {
        Ok(s) => s,
        Err(e) => return compile_error(&e),
    };
    let code = match shape {
        Shape::Struct { name, fields } => {
            let inits: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "{f}: ::serde::Deserialize::from_value(::serde::field(__obj, {f:?}))\
                         .map_err(|e| ::serde::Error::custom(\
                             format!(\"{name}.{f}: {{e}}\")))?,\n"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(__v: &::serde::value::Value) -> ::core::result::Result<Self, ::serde::Error> {{\n\
                         let __obj = __v.as_object().ok_or_else(|| \
                             ::serde::Error::custom(concat!(\"expected object for \", stringify!({name}))))?;\n\
                         Ok({name} {{ {inits} }})\n\
                     }}\n\
                 }}"
            )
        }
        Shape::Enum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| format!("{v:?} => Ok({name}::{v}),\n"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(__v: &::serde::value::Value) -> ::core::result::Result<Self, ::serde::Error> {{\n\
                         let __s = __v.as_str().ok_or_else(|| \
                             ::serde::Error::custom(concat!(\"expected string for \", stringify!({name}))))?;\n\
                         match __s {{\n\
                             {arms}\
                             other => Err(::serde::Error::custom(\
                                 format!(concat!(\"unknown \", stringify!({name}), \" variant {{}}\"), other))),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse().unwrap()
}
