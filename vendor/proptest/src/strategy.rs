//! Strategies: how to generate values for `proptest!` arguments.

use crate::{sample_size, SizeRange, TestRng};
use rand::{Rng, SampleRange};

/// A generator of values of one type.
///
/// `sample` returns `None` when the strategy rejects (e.g. a filter could not
/// be satisfied); the runner then skips the whole case.
pub trait Strategy {
    /// Generated type.
    type Value;

    /// Draw one value, or `None` to reject this case.
    fn sample(&self, rng: &mut TestRng) -> Option<Self::Value>;

    /// Keep only values where `pred` holds; rejects after 100 misses.
    fn prop_filter<F>(self, reason: impl Into<String>, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            reason: reason.into(),
            pred,
        }
    }

    /// Transform generated values.
    fn prop_map<F, U>(self, map: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, map }
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    #[allow(dead_code)] // kept for parity with proptest's diagnostics
    reason: String,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> Option<S::Value> {
        for _ in 0..100 {
            if let Some(v) = self.inner.sample(rng) {
                if (self.pred)(&v) {
                    return Some(v);
                }
            }
        }
        None
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    map: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn sample(&self, rng: &mut TestRng) -> Option<U> {
        self.inner.sample(rng).map(&self.map)
    }
}

// ---------------------------------------------------------------------------
// numeric ranges
// ---------------------------------------------------------------------------

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> Option<$t> {
                Some(self.clone().sample_from(rng))
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> Option<$t> {
                Some(self.clone().sample_from(rng))
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64, f32);

// ---------------------------------------------------------------------------
// tuples
// ---------------------------------------------------------------------------

macro_rules! impl_tuple_strategy {
    ($($s:ident : $idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Option<Self::Value> {
                Some(($(self.$idx.sample(rng)?,)+))
            }
        }
    };
}
impl_tuple_strategy!(A: 0);
impl_tuple_strategy!(A: 0, B: 1);
impl_tuple_strategy!(A: 0, B: 1, C: 2);
impl_tuple_strategy!(A: 0, B: 1, C: 2, D: 3);

// ---------------------------------------------------------------------------
// collections
// ---------------------------------------------------------------------------

/// See [`crate::prop::collection::vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    pub(crate) element: S,
    pub(crate) size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Option<Vec<S::Value>> {
        let len = sample_size(self.size, rng);
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

// ---------------------------------------------------------------------------
// string patterns
// ---------------------------------------------------------------------------

/// `&str` strategies: a tiny regex subset `[class]{m,n}` (class may contain
/// ranges like `a-z` and literal characters; `{n}` and a missing quantifier
/// also work). Unrecognized patterns fall back to lowercase strings of
/// length 0..=8.
impl Strategy for &'static str {
    type Value = String;

    fn sample(&self, rng: &mut TestRng) -> Option<String> {
        let (chars, lo, hi) = parse_pattern(self).unwrap_or_else(|| (('a'..='z').collect(), 0, 8));
        let len = if lo >= hi {
            lo
        } else {
            (lo..=hi).sample_from(rng)
        };
        Some(
            (0..len)
                .map(|_| chars[(0..chars.len()).sample_from(rng)])
                .collect(),
        )
    }
}

fn parse_pattern(pat: &str) -> Option<(Vec<char>, usize, usize)> {
    let rest = pat.strip_prefix('[')?;
    let close = rest.find(']')?;
    let class: Vec<char> = rest[..close].chars().collect();
    let mut chars = Vec::new();
    let mut i = 0;
    while i < class.len() {
        if i + 2 < class.len() && class[i + 1] == '-' {
            let (a, b) = (class[i], class[i + 2]);
            for c in a..=b {
                chars.push(c);
            }
            i += 3;
        } else {
            chars.push(class[i]);
            i += 1;
        }
    }
    if chars.is_empty() {
        return None;
    }
    let tail = &rest[close + 1..];
    if tail.is_empty() {
        return Some((chars, 1, 1));
    }
    let quant = tail.strip_prefix('{')?.strip_suffix('}')?;
    let (lo, hi) = match quant.split_once(',') {
        Some((a, b)) => (a.trim().parse().ok()?, b.trim().parse().ok()?),
        None => {
            let n = quant.trim().parse().ok()?;
            (n, n)
        }
    };
    Some((chars, lo, hi))
}

// ---------------------------------------------------------------------------
// any::<T>()
// ---------------------------------------------------------------------------

/// Types with a canonical "whole domain" strategy.
pub trait Arbitrary: Sized {
    /// Draw one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.gen()
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // finite, wide-range values; full bit-pattern floats (NaN/inf) are
        // not useful for this workspace's properties
        let mag: f64 = rng.gen_range(-1e9..1e9);
        mag
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.gen()
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_arbitrary_tuple {
    ($($s:ident),+) => {
        impl<$($s: Arbitrary),+> Arbitrary for ($($s,)+) {
            fn arbitrary(rng: &mut TestRng) -> Self {
                ($($s::arbitrary(rng),)+)
            }
        }
    };
}
impl_arbitrary_tuple!(A);
impl_arbitrary_tuple!(A, B);
impl_arbitrary_tuple!(A, B, C);
impl_arbitrary_tuple!(A, B, C, D);

/// Strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct AnyStrategy<T> {
    _marker: core::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> Option<T> {
        Some(T::arbitrary(rng))
    }
}

/// The canonical strategy for `T`'s whole domain.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy {
        _marker: core::marker::PhantomData,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng_for;

    #[test]
    fn pattern_parser_handles_classes() {
        let (chars, lo, hi) = parse_pattern("[a-z]{1,6}").unwrap();
        assert_eq!(chars.len(), 26);
        assert_eq!((lo, hi), (1, 6));
        let (chars, lo, hi) = parse_pattern("[abc]").unwrap();
        assert_eq!(chars, vec!['a', 'b', 'c']);
        assert_eq!((lo, hi), (1, 1));
        let (_, lo, hi) = parse_pattern("[0-9]{4}").unwrap();
        assert_eq!((lo, hi), (4, 4));
        assert!(parse_pattern("plain").is_none());
    }

    #[test]
    fn filter_rejects_impossible_predicates() {
        let mut rng = rng_for("filter_rejects");
        let s = (0u64..10).prop_filter("impossible", |_| false);
        assert!(s.sample(&mut rng).is_none());
    }

    #[test]
    fn map_transforms() {
        let mut rng = rng_for("map_transforms");
        let s = (0u64..10).prop_map(|v| v * 2);
        let v = s.sample(&mut rng).unwrap();
        assert!(v % 2 == 0 && v < 20);
    }
}
