//! Offline stand-in for the `proptest` API subset this workspace uses.
//!
//! Implements random-input property testing: strategies for numeric ranges,
//! simple `[a-z]{m,n}`-style string patterns, tuples, `prop::collection::vec`,
//! `any::<T>()`, `prop_filter`/`prop_map`, the `proptest!` macro, and the
//! `prop_assert*` / `prop_assume!` macros. Unlike the real crate there is
//! **no shrinking**: a failing case panics with the iteration's seed so it
//! can be replayed. Case generation is deterministic per test name.

use rand::rngs::StdRng;
use rand::{SampleRange, SeedableRng};

pub mod strategy;

pub use strategy::{any, Arbitrary, Strategy};

/// Runner configuration (`cases` is the only knob this workspace uses).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` successful cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Why a test case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// The case was skipped (`prop_assume!` failed); it does not count.
    Reject(String),
    /// The property failed.
    Fail(String),
}

/// Result of one test case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// A deterministic seed for a named property test (FNV-1a over the name).
pub fn seed_for(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The generator handed to strategies.
pub type TestRng = StdRng;

/// Build the per-test generator.
pub fn rng_for(name: &str) -> TestRng {
    StdRng::seed_from_u64(seed_for(name))
}

/// Draw a length uniformly from a size specification.
pub fn sample_size<R: Into<SizeRange>>(spec: R, rng: &mut TestRng) -> usize {
    let SizeRange { lo, hi } = spec.into();
    if lo >= hi {
        lo
    } else {
        (lo..=hi).sample_from(rng)
    }
}

/// Inclusive size bounds for collection strategies.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    /// Minimum length (inclusive).
    pub lo: usize,
    /// Maximum length (inclusive).
    pub hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: core::ops::RangeInclusive<usize>) -> Self {
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

/// Strategy modules mirroring `proptest::prop`.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use crate::strategy::VecStrategy;
        use crate::{SizeRange, Strategy};

        /// A strategy for `Vec`s whose length is drawn from `size` and whose
        /// elements come from `element`.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                size: size.into(),
            }
        }
    }
}

/// Everything a property-test file needs.
pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{any, Arbitrary, Strategy};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, ProptestConfig,
        TestCaseError, TestCaseResult,
    };
}

/// Define property tests (see the crate docs for the supported grammar).
#[macro_export]
macro_rules! proptest {
    // with a config attribute
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $( $crate::proptest!(@one $config; $(#[$meta])* fn $name ($($arg in $strat),+) $body); )*
    };
    // without a config attribute
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $( $crate::proptest!(@one $crate::ProptestConfig::default(); $(#[$meta])* fn $name ($($arg in $strat),+) $body); )*
    };
    (@one $config:expr; $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),+ ) $body:block) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $config;
            let mut __rng = $crate::rng_for(concat!(module_path!(), "::", stringify!($name)));
            let mut __passed: u32 = 0;
            let mut __attempts: u32 = 0;
            let __max_attempts = __config.cases.saturating_mul(20).saturating_add(100);
            while __passed < __config.cases && __attempts < __max_attempts {
                __attempts += 1;
                $(
                    let $arg = match $crate::Strategy::sample(&($strat), &mut __rng) {
                        Some(v) => v,
                        None => continue, // strategy-level rejection (filters)
                    };
                )+
                let __result: $crate::TestCaseResult = (|| { $body Ok(()) })();
                match __result {
                    Ok(()) => __passed += 1,
                    Err($crate::TestCaseError::Reject(_)) => continue,
                    Err($crate::TestCaseError::Fail(msg)) => panic!(
                        "property `{}` failed at case {} (attempt {}): {}",
                        stringify!($name), __passed, __attempts, msg
                    ),
                }
            }
            assert!(
                __passed > 0,
                "property `{}` generated no accepted cases in {} attempts",
                stringify!($name),
                __attempts
            );
        }
    };
}

/// Fail the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::TestCaseError::Fail(format!($($fmt)*)));
        }
    };
}

/// Fail the current case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let __l = $left;
        let __r = $right;
        if !(__l == __r) {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                __l,
                __r
            )));
        }
    }};
}

/// Fail the current case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let __l = $left;
        let __r = $right;
        if __l == __r {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                __l
            )));
        }
    }};
}

/// Skip the current case unless `cond` holds (does not count as a pass).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::Reject(
                concat!("assumption failed: ", stringify!($cond)).to_string(),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn addition_commutes(a in -1000i64..1000, b in -1000i64..1000) {
            prop_assert_eq!(a + b, b + a);
        }

        #[test]
        fn vec_lengths_respect_bounds(xs in prop::collection::vec(0.0f64..1.0, 3..7)) {
            prop_assert!((3..7).contains(&xs.len()));
            for x in &xs {
                prop_assert!((0.0..1.0).contains(x));
            }
        }

        #[test]
        fn filters_and_assume_compose(x in (0u64..100).prop_filter("even", |v| v % 2 == 0)) {
            prop_assume!(x != 2);
            prop_assert!(x % 2 == 0 && x != 2);
        }

        #[test]
        fn string_patterns_match(s in "[a-z]{1,6}", pair in any::<(bool, bool)>()) {
            prop_assert!(!s.is_empty() && s.len() <= 6);
            prop_assert!(s.bytes().all(|b| b.is_ascii_lowercase()));
            let _ = pair;
        }
    }

    #[test]
    fn failing_property_panics() {
        let caught = std::panic::catch_unwind(|| {
            crate::proptest!(@one crate::ProptestConfig::with_cases(8);
                fn always_fails(x in 0u64..10) { crate::prop_assert!(x > 100); });
            always_fails();
        });
        assert!(caught.is_err());
    }
}
