//! Offline stand-in for the small part of `rand_distr` this workspace
//! declares. Currently only the normal distribution, via Box–Muller.

use rand::{Rng, RngCore};

/// A distribution samplable with an [`RngCore`].
pub trait Distribution<T> {
    /// Draw one value.
    fn sample<R: RngCore>(&self, rng: &mut R) -> T;
}

/// Normal (Gaussian) distribution.
#[derive(Debug, Clone, Copy)]
pub struct Normal {
    mean: f64,
    std_dev: f64,
}

/// Error constructing a distribution.
#[derive(Debug, Clone, PartialEq)]
pub struct DistrError(pub &'static str);

impl std::fmt::Display for DistrError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.0)
    }
}

impl std::error::Error for DistrError {}

impl Normal {
    /// A normal distribution with the given mean and standard deviation.
    pub fn new(mean: f64, std_dev: f64) -> Result<Self, DistrError> {
        if !std_dev.is_finite() || std_dev < 0.0 {
            return Err(DistrError("std_dev must be finite and non-negative"));
        }
        Ok(Normal { mean, std_dev })
    }
}

impl Distribution<f64> for Normal {
    fn sample<R: RngCore>(&self, rng: &mut R) -> f64 {
        let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
        let u2: f64 = rng.gen();
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        self.mean + self.std_dev * z
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn normal_moments() {
        let d = Normal::new(3.0, 2.0).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        let n = 100_000;
        let xs: Vec<f64> = (0..n).map(|_| d.sample(&mut rng)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.1, "var {var}");
        assert!(Normal::new(0.0, -1.0).is_err());
    }
}
