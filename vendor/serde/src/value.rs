//! The JSON data model shared by `serde` and `serde_json`.

/// A JSON value. Objects keep insertion order (a `Vec` of pairs) so that
/// serialized output is stable and matches field declaration order.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A signed integer.
    Int(i64),
    /// An unsigned integer (kept separate so `u64 > i64::MAX` survives).
    UInt(u64),
    /// A floating-point number.
    Float(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object, in insertion order.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The object fields, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(fields) => Some(fields),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The array items, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }
}
