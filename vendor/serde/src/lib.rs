//! Offline stand-in for the `serde` API subset this workspace uses.
//!
//! The real serde is format-agnostic; the only format this repo serializes
//! is JSON, so this stand-in collapses the data model to a JSON [`Value`]
//! tree: `Serialize` renders into a `Value`, `Deserialize` reads back out of
//! one. `serde_json` (also vendored) renders/parses that tree. The derive
//! macros (`features = ["derive"]`) support structs with named fields and
//! unit-variant enums — exactly what the workspace derives.

pub mod value;

pub use value::Value;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// Serialization/deserialization error.
#[derive(Debug, Clone)]
pub struct Error(String);

impl Error {
    /// An error with the given message.
    pub fn custom(msg: impl Into<String>) -> Self {
        Error(msg.into())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// A type renderable into a JSON [`Value`].
pub trait Serialize {
    /// Convert to the JSON data model.
    fn to_value(&self) -> Value;
}

/// A type readable back from a JSON [`Value`].
pub trait Deserialize: Sized {
    /// Read from the JSON data model.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

/// Look up `key` in an object's fields; missing keys read as `Null` so
/// `Option` fields deserialize to `None`.
pub fn field<'a>(fields: &'a [(String, Value)], key: &str) -> &'a Value {
    static NULL: Value = Value::Null;
    fields
        .iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .unwrap_or(&NULL)
}

// ---------------------------------------------------------------------------
// Serialize impls for std types
// ---------------------------------------------------------------------------

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

macro_rules! impl_ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
    )*};
}
impl_ser_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
    )*};
}
impl_ser_int!(i8, i16, i32, i64, isize);

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

macro_rules! impl_ser_tuple {
    ($($t:ident : $idx:tt),+) => {
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let items = match v {
                    Value::Array(items) => items,
                    other => {
                        return Err(Error::custom(format!("expected array, got {other:?}")))
                    }
                };
                let expected = 0usize $(+ { let _ = $idx; 1 })+;
                if items.len() != expected {
                    return Err(Error::custom(format!(
                        "expected {expected}-tuple, got {} items",
                        items.len()
                    )));
                }
                Ok(($($t::from_value(&items[$idx])?,)+))
            }
        }
    };
}
impl_ser_tuple!(A: 0);
impl_ser_tuple!(A: 0, B: 1);
impl_ser_tuple!(A: 0, B: 1, C: 2);
impl_ser_tuple!(A: 0, B: 1, C: 2, D: 3);

/// Map keys must render as JSON strings.
pub trait SerializeKey {
    /// The JSON object key for this value.
    fn to_key(&self) -> String;
}

impl SerializeKey for String {
    fn to_key(&self) -> String {
        self.clone()
    }
}

macro_rules! impl_key_display {
    ($($t:ty),*) => {$(
        impl SerializeKey for $t {
            fn to_key(&self) -> String {
                self.to_string()
            }
        }
    )*};
}
impl_key_display!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<K: SerializeKey, V: Serialize, S> Serialize for std::collections::HashMap<K, V, S> {
    /// Keys are sorted so output is deterministic across runs.
    fn to_value(&self) -> Value {
        let mut fields: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.to_key(), v.to_value()))
            .collect();
        fields.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(fields)
    }
}

impl<K: SerializeKey, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.to_key(), v.to_value()))
                .collect(),
        )
    }
}

// ---------------------------------------------------------------------------
// Deserialize impls for std types
// ---------------------------------------------------------------------------

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::custom(format!("expected bool, got {other:?}"))),
        }
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::String(s) => Ok(s.clone()),
            other => Err(Error::custom(format!("expected string, got {other:?}"))),
        }
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Float(f) => Ok(*f),
            Value::Int(i) => Ok(*i as f64),
            Value::UInt(u) => Ok(*u as f64),
            other => Err(Error::custom(format!("expected number, got {other:?}"))),
        }
    }
}

macro_rules! impl_de_uint {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let u = match v {
                    Value::UInt(u) => *u,
                    Value::Int(i) if *i >= 0 => *i as u64,
                    Value::Float(f) if f.fract() == 0.0 && *f >= 0.0 => *f as u64,
                    other => {
                        return Err(Error::custom(format!(
                            "expected unsigned integer, got {other:?}"
                        )))
                    }
                };
                <$t>::try_from(u)
                    .map_err(|_| Error::custom(format!("integer {u} out of range")))
            }
        }
    )*};
}
impl_de_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_de_int {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let i = match v {
                    Value::Int(i) => *i,
                    Value::UInt(u) => i64::try_from(*u)
                        .map_err(|_| Error::custom(format!("integer {u} out of range")))?,
                    Value::Float(f) if f.fract() == 0.0 => *f as i64,
                    other => {
                        return Err(Error::custom(format!(
                            "expected integer, got {other:?}"
                        )))
                    }
                };
                <$t>::try_from(i)
                    .map_err(|_| Error::custom(format!("integer {i} out of range")))
            }
        }
    )*};
}
impl_de_int!(i8, i16, i32, i64, isize);

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::custom(format!("expected array, got {other:?}"))),
        }
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items = match v {
            Value::Array(items) => items,
            other => return Err(Error::custom(format!("expected array, got {other:?}"))),
        };
        if items.len() != N {
            return Err(Error::custom(format!(
                "expected array of length {N}, got {}",
                items.len()
            )));
        }
        let parsed: Vec<T> = items.iter().map(T::from_value).collect::<Result<_, _>>()?;
        parsed
            .try_into()
            .map_err(|_| Error::custom(format!("expected array of length {N}")))
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn std_round_trips() {
        assert_eq!(u64::from_value(&42u64.to_value()).unwrap(), 42);
        assert_eq!(f64::from_value(&Value::Int(3)).unwrap(), 3.0);
        assert_eq!(
            Vec::<f64>::from_value(&vec![1.0, 2.0].to_value()).unwrap(),
            vec![1.0, 2.0]
        );
        assert_eq!(Option::<bool>::from_value(&Value::Null).unwrap(), None);
        assert_eq!(
            <[[u64; 2]; 2]>::from_value(&[[1u64, 2], [3, 4]].to_value()).unwrap(),
            [[1, 2], [3, 4]]
        );
        assert!(<[u64; 2]>::from_value(&vec![1u64].to_value()).is_err());
        assert_eq!(
            Option::<bool>::from_value(&Value::Bool(true)).unwrap(),
            Some(true)
        );
        assert!(bool::from_value(&Value::Float(1.0)).is_err());
    }

    #[test]
    fn hashmap_keys_are_sorted() {
        let mut m = HashMap::new();
        m.insert("b".to_string(), 1u64);
        m.insert("a".to_string(), 2u64);
        match m.to_value() {
            Value::Object(fields) => {
                assert_eq!(fields[0].0, "a");
                assert_eq!(fields[1].0, "b");
            }
            other => panic!("expected object, got {other:?}"),
        }
    }

    #[test]
    fn missing_field_reads_as_null() {
        let fields = vec![("x".to_string(), Value::Bool(true))];
        assert_eq!(field(&fields, "x"), &Value::Bool(true));
        assert_eq!(field(&fields, "y"), &Value::Null);
    }
}
