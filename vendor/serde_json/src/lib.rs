//! Offline stand-in for the `serde_json` API subset this workspace uses:
//! [`to_string`], [`to_string_pretty`], and [`from_str`], over the vendored
//! `serde` JSON data model.

pub use serde::value::Value;
use serde::{Deserialize, Serialize};

/// JSON error (render or parse).
#[derive(Debug, Clone)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Serialize `value` to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&value.to_value(), None, 0, &mut out);
    Ok(out)
}

/// Serialize `value` to pretty JSON (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    render(&value.to_value(), Some(2), 0, &mut out);
    Ok(out)
}

/// Parse JSON text into a `T`.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse_value(s)?;
    T::from_value(&value).map_err(|e| Error(e.to_string()))
}

/// Parse JSON text into a [`Value`] tree.
pub fn parse_value(s: &str) -> Result<Value, Error> {
    let bytes = s.as_bytes();
    let mut pos = 0usize;
    let v = parse_at(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(Error(format!("trailing input at byte {pos}")));
    }
    Ok(v)
}

// ---------------------------------------------------------------------------
// rendering
// ---------------------------------------------------------------------------

fn render(v: &Value, indent: Option<usize>, depth: usize, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => render_float(*f, out),
        Value::String(s) => render_string(s, out),
        Value::Array(items) => render_seq(items.len(), indent, depth, out, '[', ']', |i, out| {
            render(&items[i], indent, depth + 1, out);
        }),
        Value::Object(fields) => {
            render_seq(fields.len(), indent, depth, out, '{', '}', |i, out| {
                render_string(&fields[i].0, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                render(&fields[i].1, indent, depth + 1, out);
            })
        }
    }
}

fn render_seq(
    n: usize,
    indent: Option<usize>,
    depth: usize,
    out: &mut String,
    open: char,
    close: char,
    mut item: impl FnMut(usize, &mut String),
) {
    out.push(open);
    if n == 0 {
        out.push(close);
        return;
    }
    for i in 0..n {
        if i > 0 {
            out.push(',');
        }
        if let Some(step) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(step * (depth + 1)));
        }
        item(i, out);
    }
    if let Some(step) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(step * depth));
    }
    out.push(close);
}

fn render_float(f: f64, out: &mut String) {
    if f.is_finite() {
        // `{}` on f64 is shortest round-trip; make integral floats explicit
        // so they parse back as floats
        let s = format!("{f}");
        out.push_str(&s);
        if !s.contains(['.', 'e', 'E']) {
            out.push_str(".0");
        }
    } else {
        // JSON has no NaN/inf; match serde_json's lossy behavior
        out.push_str("null");
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// parsing (recursive descent)
// ---------------------------------------------------------------------------

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), Error> {
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(Error(format!("expected `{}` at byte {}", c as char, *pos)))
    }
}

fn parse_at(b: &[u8], pos: &mut usize) -> Result<Value, Error> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err(Error("unexpected end of input".into())),
        Some(b'n') => parse_lit(b, pos, "null", Value::Null),
        Some(b't') => parse_lit(b, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Value::Bool(false)),
        Some(b'"') => Ok(Value::String(parse_string(b, pos)?)),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Array(items));
            }
            loop {
                items.push(parse_at(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Array(items));
                    }
                    _ => return Err(Error(format!("expected `,` or `]` at byte {pos}"))),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Object(fields));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                expect(b, pos, b':')?;
                let value = parse_at(b, pos)?;
                fields.push((key, value));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Object(fields));
                    }
                    _ => return Err(Error(format!("expected `,` or `}}` at byte {pos}"))),
                }
            }
        }
        Some(_) => parse_number(b, pos),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: Value) -> Result<Value, Error> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(Error(format!("invalid literal at byte {pos}")))
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, Error> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err(Error("unterminated string".into())),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| Error("truncated \\u escape".into()))?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|_| Error("bad \\u escape".into()))?,
                            16,
                        )
                        .map_err(|_| Error("bad \\u escape".into()))?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    other => return Err(Error(format!("bad escape {other:?}"))),
                }
                *pos += 1;
            }
            Some(_) => {
                // consume one UTF-8 code point
                let start = *pos;
                let mut end = start + 1;
                while end < b.len() && (b[end] & 0xc0) == 0x80 {
                    end += 1;
                }
                out.push_str(
                    std::str::from_utf8(&b[start..end])
                        .map_err(|_| Error("invalid UTF-8 in string".into()))?,
                );
                *pos = end;
            }
        }
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Value, Error> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut is_float = false;
    while let Some(&c) = b.get(*pos) {
        match c {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                is_float = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let text = std::str::from_utf8(&b[start..*pos]).unwrap();
    if text.is_empty() || text == "-" {
        return Err(Error(format!("invalid number at byte {start}")));
    }
    if !is_float {
        if let Ok(u) = text.parse::<u64>() {
            return Ok(Value::UInt(u));
        }
        if let Ok(i) = text.parse::<i64>() {
            return Ok(Value::Int(i));
        }
    }
    text.parse::<f64>()
        .map(Value::Float)
        .map_err(|_| Error(format!("invalid number `{text}`")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_round_trip() {
        let v = Value::Object(vec![
            ("name".into(), Value::String("fact \"serve\"\n".into())),
            ("n".into(), Value::UInt(u64::MAX)),
            ("neg".into(), Value::Int(-12)),
            ("pi".into(), Value::Float(3.25)),
            ("whole".into(), Value::Float(2.0)),
            ("ok".into(), Value::Bool(true)),
            ("none".into(), Value::Null),
            (
                "xs".into(),
                Value::Array(vec![Value::UInt(1), Value::Float(0.5)]),
            ),
            ("empty".into(), Value::Array(vec![])),
        ]);
        for pretty in [false, true] {
            let mut s = String::new();
            render(&v, if pretty { Some(2) } else { None }, 0, &mut s);
            let back = parse_value(&s).unwrap();
            // whole floats come back as Float thanks to the forced ".0"
            assert_eq!(back, v, "pretty={pretty}\n{s}");
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse_value("{").is_err());
        assert!(parse_value("[1,]").is_err());
        assert!(parse_value("nul").is_err());
        assert!(parse_value("1 2").is_err());
        assert!(parse_value("\"abc").is_err());
    }

    #[test]
    fn unicode_and_escapes() {
        let v = parse_value(r#""café ☕""#).unwrap();
        assert_eq!(v, Value::String("café ☕".into()));
    }
}
