#!/usr/bin/env bash
# The local gate — run before every push. CI runs exactly this script.
#
# Steps:
#   1. cargo fmt --check      formatting is not negotiable
#   2. cargo clippy           all targets, warnings are errors
#   3. cargo test -q          the full workspace suite
#   4. cargo doc              workspace rustdoc, warnings are errors
#   5. exp_e12 --smoke        parallel kernels bit-identical to sequential
#   6. audit_recovery smoke   kill the audit writer mid-batch, restart,
#                             assert the hash chain verifies and loss is
#                             bounded by one batch (tests + exp_e13 --smoke)
#   7. exp_e14 --smoke        feature cache: >=5x steady-state speedup,
#                             warm keys bridge a store outage, negative
#                             cache bounds upstream probes
#   8. exp_e15 --smoke        segmented audit rotation: recovery bytes-read
#                             stays one segment as the log grows 10x, every
#                             segment verifies standalone, a kill at the
#                             segment boundary loses nothing silently
#   9. exp_e16 --smoke        cross-process serving: spawn a fact-shardd
#                             worker over a tempdir Unix socket, SIGKILL it
#                             under load, respawn, assert the fairness
#                             window + ε ledger resume from checkpoint with
#                             bounded loss and the audit chain verifies
#                             across the crash
#  10. exp_e17 --smoke        columnar segments: roundtrip + aggregates
#                             bit-identical at 1/2/4 workers, zone maps
#                             prune >=half the segments under a selective
#                             predicate, column-pruned scans read <half
#                             the stored bytes (byte-counter asserts)
#  11. exp_e18 --smoke        adaptive admission: open-loop overload where
#                             the static queue bound blows p99 >=4x past
#                             target while the AIMD controller holds <=2x,
#                             a flooding tenant is throttled while a quiet
#                             one completes >=95%, and a spawned
#                             fact-shardd enforces quotas with typed
#                             Throttled errors across the wire
#  12. exp_e19 --smoke        live resharding: 4 -> 8 -> 3 cutovers under
#                             concurrent load with zero lost decisions,
#                             cell-exact fairness-window + ε-ledger
#                             conservation across the transform, and a
#                             continuous audit chain
#  13. exp_e20 --smoke        audit archiving: background compaction of a
#                             10x-rotated log keeps the writer batch p99
#                             within 5% of the archiver-off baseline,
#                             every archive decodes byte-identically
#                             (sha256-checked), and a SIGKILL mid-archive
#                             recovers with zero provably-lost entries —
#                             original xor verified archive, never neither
#  14. doc-link check         every PROTOCOL.md / OPERATIONS.md section
#                             anchor referenced from the crate rustdoc
#                             resolves to a real heading
#
# Everything runs --offline: the workspace vendors its dependencies and
# must build with no network.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --offline --all-targets -- -D warnings

echo "==> cargo test -q"
cargo test --offline --workspace -q

echo "==> cargo doc (rustdoc warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --offline -q --workspace --no-deps

echo "==> exp_e12 --smoke (parallel-kernel determinism gate)"
cargo run --offline -q -p fact-bench --bin exp_e12 -- --smoke

echo "==> audit_recovery --smoke (crash-recovery gate)"
cargo test --offline -q --test audit_recovery -- kill_mid_batch_recovery_is_deterministic
cargo run --offline -q -p fact-bench --bin exp_e13 -- --smoke

echo "==> exp_e14 --smoke (feature-cache speedup + outage-bridging gate)"
cargo run --offline -q -p fact-bench --bin exp_e14 -- --smoke

echo "==> exp_e15 --smoke (segmented-rotation O(segment)-recovery gate)"
cargo run --offline -q -p fact-bench --bin exp_e15 -- --smoke

echo "==> exp_e16 --smoke (cross-process checkpoint-resume gate)"
# exp_e16 spawns fact-shardd as a sibling of its own binary, so build the
# worker explicitly first — `cargo run` alone would not produce it.
cargo build --offline -q -p responsible-data-science --bin fact-shardd
cargo run --offline -q -p fact-bench --bin exp_e16 -- --smoke

echo "==> exp_e17 --smoke (columnar-segment pruning + determinism gate)"
cargo run --offline -q -p fact-bench --bin exp_e17 -- --smoke

echo "==> exp_e18 --smoke (adaptive-admission overload + fairness gate)"
# exp_e18's remote phase spawns fact-shardd like exp_e16's does; the
# explicit worker build above covers it.
cargo run --offline -q -p fact-bench --bin exp_e18 -- --smoke

echo "==> exp_e19 --smoke (live-reshard conservation gate)"
cargo run --offline -q -p fact-bench --bin exp_e19 -- --smoke

echo "==> exp_e20 --smoke (audit-archiver hot-path + crash-safety gate)"
# exp_e20's crash phase spawns fact-shardd like exp_e16's does; the
# explicit worker build above covers it.
cargo run --offline -q -p fact-bench --bin exp_e20 -- --smoke

echo "==> doc-link check (rustdoc -> PROTOCOL.md / OPERATIONS.md anchors)"
# The crate rustdoc points readers at PROTOCOL.md sections by their
# literal headings ("§N — Title"). If a heading is renamed, the pointer
# rots silently — so: every "§N — ..." reference that appears in crate
# sources must match a "## §N — ..." heading in PROTOCOL.md, and the two
# operator documents must exist where README links them.
for doc in PROTOCOL.md OPERATIONS.md; do
    [ -f "$doc" ] || { echo "doc-link check: $doc is missing" >&2; exit 1; }
done
refs=$(grep -rhoE '§[0-9]+ — [A-Za-z][A-Za-z -]*' crates/*/src src/bin 2>/dev/null | sort -u)
[ -n "$refs" ] || { echo "doc-link check: no §-references found in crate sources (expected some)" >&2; exit 1; }
while IFS= read -r ref; do
    grep -qF "## $ref" PROTOCOL.md || {
        echo "doc-link check: rustdoc references \"$ref\" but PROTOCOL.md has no heading \"## $ref\"" >&2
        exit 1
    }
done <<< "$refs"
echo "    all $(echo "$refs" | wc -l) §-references resolve"

echo "==> ci.sh: all green"
