//! Quickstart: a careless lending pipeline fails FACT certification; a
//! remediated one passes.
//!
//! The world has *historical label bias*: 45% of deserving group-B approvals
//! were recorded as rejections, and a `zip_risk` column proxies group
//! membership. The careless pipeline learns the discrimination from the
//! proxy; the remediated one drops the proxy and reweighs training
//! instances (Kamiran–Calders) to undo the label-mass distortion.
//!
//! Run with: `cargo run --release --example quickstart`

use responsible_data_science::prelude::*;

use fact_data::synth::loans::generate_loans;
use fact_data::Dataset;
use fact_fairness::mitigation::reweighing::reweighing_weights;

fn policy() -> FactPolicy {
    let mut policy = FactPolicy::strict("group", "B");
    if let Some(f) = policy.fairness.as_mut() {
        // The recorded labels are themselves the product of discrimination,
        // so error rates measured against them (equalized odds) are not
        // meaningful here; we certify on selection-based metrics (DI/SPD).
        f.thresholds.max_equalized_odds = 1.0;
    }
    if let Some(a) = policy.accuracy.as_mut() {
        // 45% label corruption in the protected group caps achievable
        // agreement with the recorded labels.
        a.min_accuracy = 0.65;
    }
    policy
}

fn plain_trainer(
    x: &Matrix,
    y: &[bool],
    _train: &Dataset,
    seed: u64,
) -> Result<Box<dyn Classifier>> {
    let cfg = LogisticConfig {
        seed,
        ..LogisticConfig::default()
    };
    Ok(Box::new(LogisticRegression::fit(x, y, None, &cfg)?))
}

fn reweighing_trainer(
    x: &Matrix,
    y: &[bool],
    train: &Dataset,
    seed: u64,
) -> Result<Box<dyn Classifier>> {
    let mask = protected_mask(train, "group", "B")?;
    let weights = reweighing_weights(y, &mask)?;
    let cfg = LogisticConfig {
        seed,
        ..LogisticConfig::default()
    };
    Ok(Box::new(LogisticRegression::fit(
        x,
        y,
        Some(&weights),
        &cfg,
    )?))
}

fn main() -> Result<()> {
    let world = generate_loans(&LoanConfig {
        n: 12_000,
        seed: 7,
        bias_strength: 0.45,
        proxy_strength: 0.9,
        ..LoanConfig::default()
    });

    println!("=== Attempt 1: careless pipeline (trains on the zip_risk proxy) ===\n");
    let mut careless = GuardedPipeline::new(policy())?;
    careless.load_data("loan_applications", "quickstart", world.clone())?;
    let proxy_features = [
        "income",
        "credit_score",
        "debt_ratio",
        "years_employed",
        "zip_risk",
    ];
    careless.train(
        "loan-model-v1",
        "quickstart",
        &proxy_features,
        "approved",
        42,
        plain_trainer,
    )?;
    let audit = careless.audit_fairness()?;
    println!("{audit}\n");
    if let Some(card) = careless.model_card_mut() {
        card.intended_use = "consumer loan approval".into();
    }
    careless.audit_transparency()?;
    let mean_income = careless.release_mean("income", 0.0, 250.0, 0.4, 1)?;
    println!("DP-released mean income: ${mean_income:.1}k (ε=0.4)\n");
    let report1 = careless.certify();
    println!("{report1}\n");
    assert!(!report1.is_green());

    println!("\n=== Attempt 2: remediated pipeline (legit features + reweighing) ===\n");
    let mut responsible = GuardedPipeline::new(policy())?;
    responsible.load_data("loan_applications", "quickstart", world)?;
    responsible.train(
        "loan-model-v2",
        "quickstart",
        &LEGIT_FEATURES,
        "approved",
        42,
        reweighing_trainer,
    )?;
    let audit2 = responsible.audit_fairness()?;
    println!("{audit2}\n");
    if let Some(card) = responsible.model_card_mut() {
        card.intended_use = "consumer loan approval (remediated)".into();
    }
    responsible.audit_transparency()?;
    responsible.release_mean("income", 0.0, 250.0, 0.4, 2)?;
    let report2 = responsible.certify();
    println!("{report2}\n");

    println!("model lineage: {:?}", responsible.model_lineage()?);
    println!(
        "audit log: {} entries, chain {}",
        responsible.audit_log().len(),
        if responsible.audit_log().verify().is_none() {
            "intact"
        } else {
            "BROKEN"
        }
    );
    Ok(())
}
