//! Transparent hiring: a high-accuracy MLP "black box" makes hiring
//! decisions; the transparency toolkit renders them accountable — surrogate
//! rules, feature importance, per-candidate explanations, a model card, and
//! a provenance trail (paper Q4).
//!
//! Run with: `cargo run --release --example transparent_hiring`

use std::collections::HashMap;

use fact_data::split::train_test_split;
use fact_data::synth::hiring::{generate_hiring, HiringConfig, HIRING_FEATURES};
use fact_data::Result;
use fact_ml::metrics::accuracy;
use fact_ml::mlp::{Mlp, MlpConfig};
use fact_ml::Classifier;
use fact_transparency::explanation::explain_decision;
use fact_transparency::importance::permutation_importance;
use fact_transparency::modelcard::{Datasheet, ModelCard};
use fact_transparency::provenance::ProvenanceGraph;
use fact_transparency::surrogate::SurrogateExplainer;

fn main() -> Result<()> {
    let world = generate_hiring(&HiringConfig {
        n: 10_000,
        seed: 9,
        ..HiringConfig::default()
    });
    let (train, test) = train_test_split(&world, 0.3, 4)?;
    let (x_train, names) = train.to_matrix_onehot(&HIRING_FEATURES)?;
    let (x_test, _) = test.to_matrix_onehot(&HIRING_FEATURES)?;
    let y_train = train.bool_column("hired")?.to_vec();
    let y_test = test.bool_column("hired")?.to_vec();
    let name_refs: Vec<&str> = names.iter().map(|s| s.as_str()).collect();

    // --- the black box --------------------------------------------------------
    let mlp = Mlp::fit(
        &x_train,
        &y_train,
        &MlpConfig {
            hidden: vec![24, 12],
            epochs: 120,
            ..MlpConfig::default()
        },
    )?;
    let acc = accuracy(&y_test, &mlp.predict(&x_test)?)?;
    println!("== Black box ==");
    println!(
        "  MLP with {} parameters, held-out accuracy {acc:.3} — and zero intrinsic explanation",
        mlp.n_parameters()
    );

    // --- provenance ------------------------------------------------------------
    let mut prov = ProvenanceGraph::new();
    let raw = prov.add_entity(
        "hiring_records",
        "hr-system",
        HashMap::from([("rows".to_string(), world.n_rows().to_string())]),
    );
    let (_, model_node) = prov.record_activity(
        "train_mlp",
        "ml-team",
        HashMap::from([("epochs".to_string(), "120".to_string())]),
        &[raw],
        &["hiring_model"],
    )?;

    // --- global explanation: importance + surrogate rules -----------------------
    println!("\n== Permutation feature importance (AUC drop) ==");
    for imp in permutation_importance(&mlp, &x_test, &y_test, &name_refs, 5, 1)? {
        println!("  {:<22} {:+.4} ± {:.4}", imp.name, imp.importance, imp.std);
    }

    println!("\n== Surrogate fidelity vs depth ==");
    for depth in [1, 2, 3, 4, 6, 8] {
        let s = SurrogateExplainer::distill(&mlp, &x_train, &x_test, &name_refs, depth)?;
        println!(
            "  depth {depth}: fidelity {:.3}  ({} leaves)",
            s.fidelity(),
            s.tree().n_leaves()
        );
    }
    let surrogate = SurrogateExplainer::distill(&mlp, &x_train, &x_test, &name_refs, 3)?;
    println!("\n== Depth-3 surrogate rules (the human-readable model) ==");
    for rule in surrogate.rules().iter().take(8) {
        println!("  {rule}");
    }

    // --- per-candidate explanations ---------------------------------------------
    println!("\n== Per-candidate explanations (first three held-out candidates) ==");
    for i in 0..3 {
        let row: Vec<f64> = x_test.row(i).to_vec();
        let exp = explain_decision(&mlp, &x_train, &row, &name_refs)?;
        println!("--- candidate {i} ---\n{}", exp.render());
    }

    // --- model card ----------------------------------------------------------------
    let mut card = ModelCard::new("hiring-mlp", "1.0.0").with_metric("accuracy", acc, "test");
    card.intended_use = "rank candidates for human review — not for automated rejection".into();
    card.out_of_scope_uses = vec!["fully automated hiring decisions".into()];
    card.training_data = format!("{} synthetic candidates", train.n_rows());
    card.sensitive_attributes = vec!["gender".into()];
    card.caveats = vec![format!(
        "depth-3 surrogate fidelity {:.2}: rules above approximate, not define, the model",
        surrogate.fidelity()
    )];
    println!(
        "== Model card (JSON, for the registry) ==\n{}",
        card.to_json()?
    );

    let sheet = Datasheet::from_dataset("hiring_records", &world);
    println!(
        "\n(datasheet lists {} columns; sensitive: {:?})",
        sheet.columns.len(),
        sheet
            .columns
            .iter()
            .filter(|c| c.sensitive)
            .map(|c| c.name.as_str())
            .collect::<Vec<_>>()
    );

    println!(
        "\nmodel lineage: {:?}",
        prov.lineage(model_node[0])?
            .iter()
            .filter_map(|&id| prov.node(id).map(|n| n.name.as_str()))
            .collect::<Vec<_>>()
    );
    Ok(())
}
