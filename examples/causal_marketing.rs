//! Correlation is not causation: reproducing the paper's Gordon et al.
//! (2016) discussion. Observational estimators (PSM, IPW, regression
//! adjustment, AIPW) recover the truth when confounding is *observed*, and
//! all drift away from the RCT answer when it is not.
//!
//! Run with: `cargo run --release --example causal_marketing`

use fact_causal::ipw::ipw_ate;
use fact_causal::naive::naive_difference;
use fact_causal::propensity::{psm_ate, stratified_ate};
use fact_causal::regression::{aipw_ate, regression_ate};
use fact_data::synth::clinical::{generate_clinical, ClinicalConfig, CLINICAL_COVARIATES};
use fact_data::Result;

fn run_world(title: &str, cfg: &ClinicalConfig) -> Result<()> {
    let w = generate_clinical(cfg);
    let x = w.data.to_matrix(&CLINICAL_COVARIATES)?;
    let t = w.data.bool_column("treated")?.to_vec();
    let y = w.data.bool_column("recovered")?.to_vec();

    println!("\n== {title} (true ATE = {:+.3}) ==", w.true_ate);
    println!("{:<28} {:>10} {:>10}", "estimator", "estimate", "bias");
    let show = |name: &str, est: f64| {
        println!("{name:<28} {est:>+10.3} {:>+10.3}", est - w.true_ate);
    };
    show("naive (correlation)", naive_difference(&t, &y)?);
    show(
        "propensity matching",
        psm_ate(&x, &t, &y, f64::INFINITY, 0)?,
    );
    show("propensity strata (5)", stratified_ate(&x, &t, &y, 5, 0)?);
    show("IPW (trim 0.01)", ipw_ate(&x, &t, &y, 0.01, 0)?);
    show("regression adjustment", regression_ate(&x, &t, &y, 0)?);
    show("doubly robust (AIPW)", aipw_ate(&x, &t, &y, 0.01, 0)?);
    Ok(())
}

fn main() -> Result<()> {
    let base = ClinicalConfig {
        n: 30_000,
        seed: 2026,
        ..ClinicalConfig::default()
    };

    run_world(
        "Randomized controlled trial (gold standard)",
        &ClinicalConfig {
            confounding: 0.0,
            ..base.clone()
        },
    )?;

    run_world(
        "Observational, confounding on MEASURED covariates",
        &ClinicalConfig {
            confounding: 1.5,
            ..base.clone()
        },
    )?;

    run_world(
        "Observational, UNOBSERVED confounder (the Gordon et al. case)",
        &ClinicalConfig {
            confounding: 0.6,
            unobserved_confounding: 1.5,
            ..base
        },
    )?;

    println!(
        "\nTakeaway: with a hidden confounder, every observational estimator stays \
         biased — 'their outcomes might still be far away from the results one \
         would obtain with a randomized controlled trial' (van der Aalst et al. 2017, §2)."
    );
    Ok(())
}
