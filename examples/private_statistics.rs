//! Private statistics: answering questions about census microdata "without
//! revealing secrets" (paper Q3) — differential privacy under a strict
//! budget, k-anonymity for microdata release, and pseudonymization.
//!
//! Run with: `cargo run --release --example private_statistics`

use fact_confidentiality::accountant::{advanced_composition_epsilon, queries_affordable_advanced};
use fact_confidentiality::kanon::{max_t_distance, min_l_diversity, mondrian_k_anonymize};
use fact_confidentiality::mechanisms::{dp_count, dp_histogram, dp_mean, dp_quantile};
use fact_confidentiality::pseudo::Pseudonymizer;
use fact_confidentiality::risk::schema_risk;
use fact_confidentiality::PrivacyAccountant;
use fact_data::synth::census::{generate_census, CensusConfig, DIAGNOSES};
use fact_data::Result;
use fact_stats::descriptive::mean;

fn main() -> Result<()> {
    let census = generate_census(&CensusConfig {
        n: 10_000,
        seed: 5,
        ..CensusConfig::default()
    });
    let salaries = census.f64_column("salary")?;
    let true_mean = mean(&salaries)?;

    // --- 1. the raw data is dangerous ---------------------------------------
    let risk = schema_risk(&census)?;
    println!("== Raw microdata risk (quasi-identifiers: age, sex, zipcode) ==");
    println!(
        "  unique records: {:.1}%   prosecutor re-identification risk: {:.3}",
        100.0 * risk.unique_fraction,
        risk.prosecutor_risk
    );

    // --- 2. DP aggregate queries under a strict budget ----------------------
    println!("\n== DP query session (total budget ε = 1.0) ==");
    let mut acc = PrivacyAccountant::pure(1.0)?;
    acc.spend(0.2, 0.0, "population count")?;
    let count = dp_count(census.n_rows(), 0.2, 101)?;
    println!(
        "  population count      ≈ {count:.0}   (true {})",
        census.n_rows()
    );

    acc.spend(0.3, 0.0, "mean salary")?;
    let m = dp_mean(&salaries, 0.0, 250.0, 0.3, 102)?;
    println!("  mean salary           ≈ ${m:.1}k (true ${true_mean:.1}k)");

    acc.spend(0.3, 0.0, "median salary")?;
    let med = dp_quantile(&salaries, 0.5, 0.0, 250.0, 0.3, 103)?;
    println!("  median salary         ≈ ${med:.1}k");

    acc.spend(0.2, 0.0, "diagnosis histogram")?;
    let diag = census.labels("diagnosis")?;
    let counts: Vec<u64> = DIAGNOSES
        .iter()
        .map(|d| diag.iter().filter(|x| x == d).count() as u64)
        .collect();
    let noisy = dp_histogram(&counts, 0.2, 104)?;
    println!("  diagnosis histogram   (noised):");
    for (d, (n, t)) in DIAGNOSES.iter().zip(noisy.iter().zip(&counts)) {
        println!("      {d:<10} ≈ {n:>7.0}  (true {t})");
    }

    println!("  budget remaining: ε = {:.3}", acc.remaining_epsilon());
    match acc.spend(0.2, 0.0, "one query too many") {
        Err(e) => println!("  next query DENIED: {e}"),
        Ok(()) => println!("  unexpected: budget allowed another query"),
    }
    println!("  ledger:");
    for entry in acc.ledger() {
        println!("      ε {:>4.2}  {}", entry.epsilon, entry.label);
    }

    // --- 3. composition accounting -------------------------------------------
    println!("\n== How many ε=0.01 queries fit in ε_total = 1.0? ==");
    println!("  basic composition:    {}", (1.0f64 / 0.01) as usize);
    let k_adv = queries_affordable_advanced(1.0, 0.01, 1e-5)?;
    println!("  advanced composition: {k_adv}  (δ' = 1e-5)");
    println!(
        "  (100 queries cost ε = {:.3} under advanced composition)",
        advanced_composition_epsilon(100, 0.01, 1e-5)?
    );

    // --- 4. k-anonymity for microdata release --------------------------------
    println!("\n== Mondrian k-anonymization of the microdata ==");
    println!(
        "{:>5} {:>14} {:>12} {:>12} {:>13} {:>12}",
        "k", "classes", "min class", "info loss", "l-diversity", "t-distance"
    );
    for k in [2, 5, 10, 25, 50] {
        let anon = mondrian_k_anonymize(&census, &["age", "sex", "zipcode"], k)?;
        println!(
            "{k:>5} {:>14} {:>12} {:>12.3} {:>13} {:>12.3}",
            anon.n_classes,
            anon.min_class_size(),
            anon.information_loss,
            min_l_diversity(&anon, "diagnosis")?,
            max_t_distance(&anon, "diagnosis")?,
        );
    }

    // --- 5. pseudonymization --------------------------------------------------
    println!("\n== Polymorphic pseudonymization ==");
    let research = Pseudonymizer::new(0xAAAA_BBBB);
    let billing = Pseudonymizer::new(0xCCCC_DDDD);
    for id in ["patient-0017", "patient-0018"] {
        println!(
            "  {id}  → research domain {}  billing domain {}",
            research.token(id),
            billing.token(id)
        );
    }
    println!("  (same key → joinable; different key → unlinkable)");
    Ok(())
}
