//! Production monitoring: FACT guards on live Internet-Minute traffic.
//!
//! The paper's §3 scale argument, end to end: a stream at the cited service
//! mix flows through (1) a sliding-window fairness monitor, (2) a budgeted
//! DP counter, (3) a PSI drift monitor, and (4) sampled audit logging —
//! then a mid-stream "deployment change" introduces decision disparity and
//! payload drift, and the guards catch both.
//!
//! Run with: `cargo run --release --example production_monitoring`

use fact_core::drift::DriftMonitor;
use fact_core::runtime::{Alert, GuardedStream};
use fact_data::stream::InternetMinute;
use fact_data::Result;

fn main() -> Result<()> {
    // reference payload distribution: values are uniform [0, 100]
    let reference: Vec<f64> = InternetMinute::new(1)
        .take(5_000)
        .map(|e| e.value)
        .collect();
    let drift = DriftMonitor::new(&reference, 10, 2_000, 0.2)?;

    let mut guards = GuardedStream::guarded(
        4_000,  // fairness window
        0.8,    // min DI
        25_000, // DP count release interval
        2.0,    // ε budget for the stream
        1_000,  // audit sampling
        7,
    )?
    .with_drift_monitor(drift);

    println!("== Phase 1: healthy traffic (100k events) ==");
    for ev in InternetMinute::new(2).take(100_000) {
        guards.process(&ev);
    }
    summarize(&guards);

    println!("\n== Phase 2: bad deployment — disparity + payload shift (100k events) ==");
    for mut ev in InternetMinute::new(3)
        .with_disparity(0.9, 0.45)
        .take(100_000)
    {
        ev.value = ev.value * 0.3 + 80.0; // distribution shift
        guards.process(&ev);
    }
    summarize(&guards);

    println!("\nfirst alerts of each kind:");
    let mut seen = std::collections::HashSet::new();
    for a in &guards.alerts {
        let kind = match a {
            Alert::FairnessViolation { .. } => "fairness",
            Alert::DpRelease { .. } => "dp_release",
            Alert::BudgetExhausted => "budget",
            Alert::Drift(_) => "drift",
        };
        if seen.insert(kind) {
            println!("  {a:?}");
        }
    }
    Ok(())
}

fn summarize(g: &GuardedStream) {
    let mut fairness = 0;
    let mut dp = 0;
    let mut drift = 0;
    for a in &g.alerts {
        match a {
            Alert::FairnessViolation { .. } => fairness += 1,
            Alert::DpRelease { .. } => dp += 1,
            Alert::Drift(_) => drift += 1,
            Alert::BudgetExhausted => {}
        }
    }
    println!(
        "  processed {:>7} | fairness alerts {fairness:>3} | dp releases {dp:>2} | drift alerts {drift:>3} | audit entries {}",
        g.processed, g.audit_entries
    );
}
