//! Honest statistics: the paper's accuracy pillar in action — a fishing
//! expedition over random predictors "discovers" effects that the hypothesis
//! registry withdraws, and the Simpson auditor catches an aggregate trend
//! that reverses within departments.
//!
//! Run with: `cargo run --release --example honest_statistics`

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use fact_accuracy::registry::{CorrectionMethod, HypothesisRegistry};
use fact_accuracy::simpson::audit_simpson;
use fact_data::synth::admissions::{generate_admissions, AdmissionsConfig};
use fact_data::Result;
use fact_stats::tests::welch_t_test;

fn main() -> Result<()> {
    // --- 1. the terrorist/eye-color example (§2), simulated -------------------
    // One response variable, many random predictors: "it is likely that just
    // by accident a combination of predictor variables explains the response".
    println!("== Fishing expedition: 400 random predictors, pure noise ==");
    let mut rng = StdRng::seed_from_u64(12);
    let n = 200;
    let response: Vec<bool> = (0..n).map(|_| rng.gen_bool(0.5)).collect();
    let mut registry = HypothesisRegistry::new();
    for p in 0..400 {
        let predictor: Vec<f64> = (0..n).map(|_| rng.gen::<f64>()).collect();
        let yes: Vec<f64> = predictor
            .iter()
            .zip(&response)
            .filter(|(_, &r)| r)
            .map(|(&v, _)| v)
            .collect();
        let no: Vec<f64> = predictor
            .iter()
            .zip(&response)
            .filter(|(_, &r)| !r)
            .map(|(&v, _)| v)
            .collect();
        let t = welch_t_test(&yes, &no)?;
        registry.register(format!("predictor_{p}"), t.p_value)?;
    }
    for method in [
        CorrectionMethod::Bonferroni,
        CorrectionMethod::Holm,
        CorrectionMethod::BenjaminiHochberg,
    ] {
        let report = registry.report(0.05, method)?;
        println!(
            "  {:?}: naive would claim {} discoveries → correction keeps {}",
            method, report.naive_discoveries, report.corrected_discoveries
        );
    }

    // --- 2. Simpson's paradox --------------------------------------------------
    println!("\n== Simpson's paradox: Berkeley-style admissions ==");
    let admissions = generate_admissions(&AdmissionsConfig::default());
    let report = audit_simpson(
        &admissions,
        "admitted",
        "gender",
        "male",
        "female",
        "department",
    )?;
    println!(
        "  aggregate admission-rate gap (male − female): {:+.3}",
        report.aggregate_difference
    );
    println!("  per-department gaps:");
    for s in &report.strata {
        println!(
            "    dept {}: male {:.3} vs female {:.3}  (gap {:+.3}, n={})",
            s.stratum,
            s.rate_group1,
            s.rate_group2,
            s.difference(),
            s.n
        );
    }
    println!(
        "  department-adjusted gap: {:+.3}   reversal detected: {}",
        report.adjusted_difference, report.reversal
    );
    println!(
        "\n  The aggregate 'men are favored' trend {} once department choice is\n  \
         accounted for — exactly the paradox the paper warns about (§2).",
        if report.adjusted_difference <= 0.0 {
            "reverses"
        } else {
            "vanishes"
        }
    );
    Ok(())
}
