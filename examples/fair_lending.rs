//! Fair lending: detect proxy discrimination, then compare all four
//! mitigation families on the same biased world.
//!
//! Demonstrates the paper's Q1 claims end-to-end: omitting the sensitive
//! attribute does NOT produce fairness when a proxy leaks it, and different
//! interventions buy fairness at different accuracy prices.
//!
//! Run with: `cargo run --release --example fair_lending`

use responsible_data_science::prelude::*;

use fact_data::split::train_test_split;
use fact_data::synth::loans::generate_loans;
use fact_fairness::metrics::{disparate_impact, statistical_parity_difference};
use fact_fairness::mitigation::prejudice::{PrejudiceConfig, PrejudiceRemover};
use fact_fairness::mitigation::repair::repair_disparate_impact;
use fact_fairness::mitigation::reweighing::reweighing_weights;
use fact_fairness::mitigation::threshold::equalize_selection_rates;
use fact_fairness::proxy::scan_proxies;
use fact_ml::metrics::accuracy;

const FEATURES: [&str; 5] = [
    "income",
    "credit_score",
    "debt_ratio",
    "years_employed",
    "zip_risk",
];

fn main() -> Result<()> {
    let world = generate_loans(&LoanConfig {
        n: 20_000,
        seed: 3,
        bias_strength: 0.45,
        proxy_strength: 0.85,
        feature_gap: 5.0,
        ..LoanConfig::default()
    });
    let (train, test) = train_test_split(&world, 0.3, 11)?;

    // --- 1. proxy detection -------------------------------------------------
    println!("== Proxy scan (association with protected group) ==");
    let mask_train = protected_mask(&train, "group", "B")?;
    for s in scan_proxies(&train, &mask_train, &["group", "approved"])? {
        println!(
            "  {:<16} normalized MI {:.3}   |corr| {}",
            s.feature,
            s.normalized_mi,
            s.abs_correlation
                .map(|c| format!("{c:.3}"))
                .unwrap_or_else(|| "n/a".into())
        );
    }

    // shared pieces
    let x_train = train.to_matrix(&FEATURES)?;
    let y_train = train.bool_column("approved")?.to_vec();
    let x_test = test.to_matrix(&FEATURES)?;
    let y_test = test.bool_column("approved")?.to_vec();
    let mask_test = protected_mask(&test, "group", "B")?;
    let cfg = LogisticConfig::default();

    let mut rows: Vec<(String, f64, f64, f64)> = Vec::new();
    let mut record = |name: &str, pred: &[bool]| -> Result<()> {
        rows.push((
            name.to_string(),
            accuracy(&y_test, pred)?,
            disparate_impact(pred, &mask_test)?,
            statistical_parity_difference(pred, &mask_test)?,
        ));
        Ok(())
    };

    // --- 2. baseline (no mitigation) ---------------------------------------
    let base = LogisticRegression::fit(&x_train, &y_train, None, &cfg)?;
    record("unmitigated", &base.predict(&x_test)?)?;

    // --- 3. pre-processing: reweighing --------------------------------------
    let w = reweighing_weights(&y_train, &mask_train)?;
    let rw = LogisticRegression::fit(&x_train, &y_train, Some(&w), &cfg)?;
    record("reweighing (pre)", &rw.predict(&x_test)?)?;

    // --- 4. pre-processing: disparate-impact repair -------------------------
    let repaired_train = repair_disparate_impact(&train, &FEATURES, &mask_train, 1.0)?;
    let repaired_test = repair_disparate_impact(&test, &FEATURES, &mask_test, 1.0)?;
    let xr_train = repaired_train.to_matrix(&FEATURES)?;
    let xr_test = repaired_test.to_matrix(&FEATURES)?;
    let rep = LogisticRegression::fit(&xr_train, &y_train, None, &cfg)?;
    record("DI repair λ=1 (pre)", &rep.predict(&xr_test)?)?;

    // --- 5. in-processing: prejudice remover --------------------------------
    let pr = PrejudiceRemover::fit(
        &x_train,
        &y_train,
        &mask_train,
        &PrejudiceConfig {
            eta: 2.0,
            ..PrejudiceConfig::default()
        },
    )?;
    record("prejudice remover η=2 (in)", &pr.predict(&x_test)?)?;

    // --- 6. post-processing: per-group thresholds ---------------------------
    let scores = base.predict_proba(&x_test)?;
    let th = equalize_selection_rates(&scores, &mask_test, 0.5)?;
    record("threshold opt (post)", &th.apply(&scores, &mask_test)?)?;

    // --- table ---------------------------------------------------------------
    println!("\n== Mitigation comparison (test split, protected = group B) ==");
    println!(
        "{:<28} {:>9} {:>18} {:>9}",
        "method", "accuracy", "disparate impact", "SPD"
    );
    for (name, acc, di, spd) in &rows {
        let verdict = if *di >= 0.8 && *di <= 1.25 {
            "fair"
        } else {
            "UNFAIR"
        };
        println!("{name:<28} {acc:>9.3} {di:>14.3} [{verdict}] {spd:>+8.3}");
    }
    Ok(())
}
