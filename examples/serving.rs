//! Online serving: a FACT-guarded decision service on a lending workload.
//!
//! The audits in the other examples certify a model *before* deployment;
//! this one keeps the guarantees *while decisions are served*. A logistic
//! model trained on the synthetic loans world goes behind a sharded
//! [`DecisionService`]; live traffic with a mid-run "bad deployment"
//! (group-B score suppression) then flows through it. The per-shard
//! fairness guards catch the disparity, the service degrades to
//! audit-and-flag, and shutdown returns the final accounting.
//!
//! Run with: `cargo run --release --example serving`

use std::sync::Arc;
use std::time::Duration;

use fact_data::synth::loans::generate_loans;
use fact_serve::{DecisionRequest, DecisionService, DegradePolicy, GuardConfig, ServeConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use responsible_data_science::prelude::*;

fn main() -> Result<()> {
    // 1. Train on the historical lending world (legitimate features only).
    let ds = generate_loans(&LoanConfig {
        n: 8_000,
        seed: 42,
        bias_strength: 0.0, // train on a fair world; bias arrives at serving time
        ..LoanConfig::default()
    });
    let x = ds.to_matrix(&LEGIT_FEATURES)?;
    let y = ds.bool_column("approved")?;
    let model = LogisticRegression::fit(
        &x,
        y,
        None,
        &LogisticConfig {
            seed: 42,
            ..LogisticConfig::default()
        },
    )?;
    let n_features = LEGIT_FEATURES.len();

    // 2. Stand the service up: 4 shards, bounded queues, full guard set,
    //    audit-and-flag on guard trip.
    let service = DecisionService::start(
        Arc::new(model),
        ServeConfig {
            shards: 4,
            n_features,
            queue_cap: 128,
            batch_max: 16,
            batch_linger: Duration::from_micros(200),
            default_timeout: Duration::from_secs(2),
            threshold: 0.5,
            policy: DegradePolicy::AuditAndFlag,
            trip_cooldown: 2_000,
            alert_debounce: 1_000,
            guards: Some(GuardConfig {
                fairness_window: 1_000,
                min_di: 0.8,
                min_samples_per_group: 50,
                dp_interval: 2_000,
                epsilon_per_release: 0.01,
                epsilon_budget: 1.0,
                drift: None,
            }),
            seed: 7,
            audit: None,
            cache: None,
            topology: None,
            checkpoint: None,
            admission: None,
        },
    )
    .expect("service start");

    // Serving traffic: draw applicants from the same world the model was
    // trained on, replaying each one's feature row through the service.
    let traffic = generate_loans(&LoanConfig {
        n: 24_000,
        seed: 1_234,
        bias_strength: 0.0,
        ..LoanConfig::default()
    });
    let rows = traffic.to_matrix(&LEGIT_FEATURES)?;
    let groups = protected_mask(&traffic, "group", "B")?;
    let mut rng = StdRng::seed_from_u64(9);

    let mut serve = |range: std::ops::Range<usize>, suppress_b: bool| {
        let mut flagged = 0u64;
        let mut favorable = 0u64;
        for i in range {
            let mut features: Vec<f64> = (0..n_features).map(|j| rows.get(i, j)).collect();
            if suppress_b && groups[i] {
                // the "bad deployment": an upstream feature pipeline starts
                // zeroing group B's strongest qualifying signal
                features[0] = features[0].min(rng.gen_range(0.0..0.2));
            }
            match service.decide(DecisionRequest {
                features,
                group_b: groups[i],
                route_key: i as u64,
                tenant: 0,
            }) {
                Ok(d) => {
                    flagged += u64::from(d.flagged);
                    favorable += u64::from(d.favorable);
                }
                Err(e) => println!("  request {i}: {e}"),
            }
        }
        (favorable, flagged)
    };

    println!("== Phase 1: healthy traffic (12k decisions) ==");
    let (fav, flagged) = serve(0..12_000, false);
    println!("  favorable={fav} flagged={flagged}");
    println!("{}", service.metrics().render_text());

    println!("== Phase 2: bad deployment — group-B signal suppressed (12k decisions) ==");
    let (fav, flagged) = serve(12_000..24_000, true);
    println!("  favorable={fav} flagged={flagged}  <- degraded to audit-and-flag");

    println!("\n== Alerts on the global channel ==");
    for a in service.drain_alerts() {
        println!(
            "  shard {} @ decision {}: {:?}",
            a.shard, a.at_decision, a.alert
        );
    }

    println!("\n== Metrics snapshot ==");
    println!("{}", service.metrics().render_text());

    println!("== Final ServiceReport (graceful shutdown) ==");
    let report = service.shutdown();
    print!("{}", report.render_text());
    assert_eq!(report.decisions_served, 24_000);
    Ok(())
}
