//! Crash/fault-injection suite for the durable audit sink.
//!
//! Every test drives the sink (or a whole audited `DecisionService`)
//! against [`MemStorage`] faults — outright append failure, a short write,
//! a kill mid-batch — then restarts over whatever the fault left behind
//! and asserts the recovery contract:
//!
//! * the persisted prefix always verifies as one hash chain from genesis;
//! * a torn tail is truncated at the exact cut point, costing at most one
//!   batch;
//! * the restarted sink resumes appending with `prev_hash` continuity, so
//!   the log spanning the crash still verifies end to end;
//! * provable loss (persisted chain head ahead of the recovered log) is
//!   detected and reported, never papered over.

use std::sync::Arc;
use std::time::{Duration, Instant};

use fact_serve::audit_sink::{parse_log, recover, AuditStorage};
use fact_serve::{
    archive_run_once, encode_archive, read_segment_or_archive, verify_all_segments, ArchiveConfig,
    ArchiveManifest, ArchiveStats, AuditEvent, AuditSink, AuditSinkConfig, AuditSinkHandle,
    DecisionRequest, DecisionService, DegradePolicy, GuardConfig, InlineFeatures, MemStorage,
    ServeConfig,
};
use fact_transparency::{verify_chain_from, AuditEntry, ChainHead};

fn sink_config(batch_max: usize) -> AuditSinkConfig {
    AuditSinkConfig {
        batch_max,
        flush_interval: Duration::from_millis(1),
        ..AuditSinkConfig::default()
    }
}

fn open(storage: &MemStorage, batch_max: usize) -> AuditSink {
    AuditSink::open_with_storage(&sink_config(batch_max), Box::new(storage.clone())).unwrap()
}

fn flagged(key: u64) -> AuditEvent {
    AuditEvent::Flagged {
        shard: 0,
        route_key: key,
        probability: 0.125,
        favorable: false,
        group_b: key.is_multiple_of(2),
    }
}

/// Send `events` and wait until the sink has durably audited (or given up
/// on) everything outstanding — makes batch boundaries deterministic.
fn feed_and_settle(sink: &AuditSink, handle: &AuditSinkHandle, keys: std::ops::Range<u64>) {
    let n = keys.end - keys.start;
    let target = sink.audited() + n;
    for k in keys {
        handle.record(flagged(k));
    }
    let deadline = Instant::now() + Duration::from_secs(10);
    while sink.audited() < target {
        if Instant::now() > deadline {
            // a poisoned sink will never reach the target; the caller's
            // assertions decide whether that is the expected outcome
            break;
        }
        std::thread::sleep(Duration::from_millis(1));
    }
}

fn verified_entries(storage: &MemStorage) -> Vec<AuditEntry> {
    let entries = parse_log(&storage.log_bytes());
    assert_eq!(
        verify_chain_from(ChainHead::genesis(), &entries),
        None,
        "persisted chain must verify from genesis"
    );
    entries
}

/// The CI smoke: kill the writer mid-batch, restart, assert the chain
/// verifies, the torn tail is truncated, loss is bounded by one batch, and
/// appending resumes with `prev_hash` continuity across the restart.
#[test]
fn kill_mid_batch_recovery_is_deterministic() {
    const BATCH: usize = 4;
    let storage = MemStorage::new();

    // run 1: land two clean batches, then die partway into the third line
    // of the next batch's single append
    let sink = open(&storage, BATCH);
    let handle = sink.handle();
    feed_and_settle(&sink, &handle, 0..8);
    let synced_len = storage.log_bytes().len();
    let synced_entries = parse_log(&storage.log_bytes()).len();
    storage.kill_at_byte(synced_len as u64 + 300);
    for k in 8..12 {
        handle.record(flagged(k));
    }
    drop(handle);
    let report = sink.finish();
    assert!(
        report.io_errors >= 1,
        "the kill must surface as an io error"
    );
    assert!(report.dropped >= 1, "the killed batch is accounted dropped");

    // what the "disk" holds: the synced prefix plus a torn fragment
    let storage = storage.restart();
    let on_disk = storage.log_bytes();
    assert!(
        on_disk.len() > synced_len,
        "the kill persisted a partial batch"
    );

    // run 2: recovery must truncate the tear and resume the same chain
    let sink = open(&storage, BATCH);
    let rec = sink.recovery().clone();
    assert!(
        rec.truncated_bytes > 0,
        "the torn tail must be cut: {rec:?}"
    );
    assert_eq!(
        rec.cut_seq, None,
        "a kill tears bytes, it does not break the chain: {rec:?}"
    );
    assert!(
        rec.recovered as usize >= synced_entries,
        "everything synced before the kill survives: {rec:?}"
    );
    assert_eq!(
        rec.lost, 0,
        "the killed batch was never head-committed, so nothing *promised* is missing: {rec:?}"
    );
    // loss is bounded by the one killed batch
    let written_total = synced_entries + 1; // + this run's sink_start not yet counted
    let _ = written_total;
    assert!(
        (rec.cut_lines as usize) < BATCH,
        "at most one torn batch: {rec:?}"
    );

    let handle = sink.handle();
    feed_and_settle(&sink, &handle, 100..104);
    drop(handle);
    sink.finish();

    // the log spanning the crash verifies as ONE chain, and the entries
    // appended after restart sit directly on the recovered head
    let entries = verified_entries(&storage);
    assert!(entries.iter().any(|e| e.details.contains("key=100")));
    let resumed_at = entries
        .iter()
        .position(|e| e.action == "sink_start" && e.seq == rec.resumed.next_seq)
        .expect("restart marker chained at the recovered head");
    assert_eq!(entries[resumed_at].seq, rec.resumed.next_seq);
    assert_eq!(entries[resumed_at].prev_hash, rec.resumed.hash);

    // determinism: recovering the same bytes again reports the same thing
    let mut probe: Box<dyn AuditStorage> = Box::new(storage.restart());
    let again = recover(probe.as_mut()).unwrap();
    assert_eq!(again.truncated_bytes, 0, "recovery already cleaned the log");
    assert_eq!(again.recovered, entries.len() as u64);
}

#[test]
fn append_failure_preserves_the_synced_prefix() {
    let storage = MemStorage::new();
    let sink = open(&storage, 4);
    let handle = sink.handle();
    feed_and_settle(&sink, &handle, 0..4);
    let good = parse_log(&storage.log_bytes()).len();
    // every append from here on fails, persisting nothing; don't wait for
    // a settle that can never come — finish() flushes and surfaces it
    storage.fail_appends_from(0);
    for k in 4..12 {
        handle.record(flagged(k));
    }
    drop(handle);
    let report = sink.finish();
    assert!(report.io_errors >= 1);
    assert!(report.dropped >= 8);
    // nothing after the failure leaked into the log, and the prefix is intact
    let entries = verified_entries(&storage);
    assert_eq!(entries.len(), good);
    assert_eq!(report.audited, good as u64);
}

#[test]
fn short_write_tears_one_line_and_recovery_cuts_it() {
    let storage = MemStorage::new();
    let sink = open(&storage, 4);
    let handle = sink.handle();
    feed_and_settle(&sink, &handle, 0..4);
    let good_len = storage.log_bytes().len();
    let good = parse_log(&storage.log_bytes()).len();
    // next batch persists 20 bytes of its first line, then errors
    storage.short_write_next(20);
    for k in 4..8 {
        handle.record(flagged(k));
    }
    drop(handle);
    sink.finish();
    assert_eq!(storage.log_bytes().len(), good_len + 20);

    let storage = storage.restart();
    let sink = open(&storage, 4);
    let rec = sink.recovery().clone();
    assert_eq!(rec.truncated_bytes, 20);
    assert_eq!(rec.recovered as usize, good);
    assert_eq!(rec.lost, 0);
    sink.finish();
    verified_entries(&storage);
}

#[test]
fn destroyed_synced_tail_is_reported_as_loss() {
    let storage = MemStorage::new();
    let sink = open(&storage, 2);
    let handle = sink.handle();
    feed_and_settle(&sink, &handle, 0..6);
    drop(handle);
    let report = sink.finish();

    // simulate the disk losing the last two synced entries: cut the log at
    // an exact line boundary while the head file still promises them
    let bytes = storage.log_bytes();
    let keep = {
        let mut line_starts: Vec<usize> = vec![0];
        line_starts.extend(
            bytes
                .iter()
                .enumerate()
                .filter(|(_, &b)| b == b'\n')
                .map(|(i, _)| i + 1),
        );
        line_starts[line_starts.len() - 3]
    };
    {
        let mut s: Box<dyn AuditStorage> = Box::new(storage.clone());
        s.truncate_segment(0, keep as u64).unwrap();
    }

    let sink = open(&storage, 2);
    let rec = sink.recovery().clone();
    assert_eq!(
        rec.lost, 2,
        "the head promised {} entries; the log lost two: {rec:?}",
        report.audited
    );
    assert_eq!(rec.recovered, report.audited - 2);
    assert_eq!(rec.truncated_bytes, 0, "a clean cut needs no truncation");
    let report2 = sink.finish();
    assert_eq!(report2.recovery.lost, 2);
    verified_entries(&storage);
}

#[test]
fn tampered_middle_entry_cuts_the_chain_at_the_tamper_point() {
    let storage = MemStorage::new();
    let sink = open(&storage, 4);
    let handle = sink.handle();
    feed_and_settle(&sink, &handle, 0..8);
    drop(handle);
    sink.finish();

    // flip a digit inside an entry's details, deep in the middle
    let mut bytes = storage.log_bytes();
    let at = bytes
        .windows(6)
        .position(|w| w == b"key=3 ".as_slice())
        .expect("key=3 entry present");
    bytes[at + 4] = b'7';
    {
        let mut s: Box<dyn AuditStorage> = Box::new(storage.clone());
        s.open_segment(0).unwrap();
        s.truncate_segment(0, 0).unwrap();
        s.append_log(&bytes).unwrap();
    }

    let sink = open(&storage, 4);
    let rec = sink.recovery().clone();
    assert!(rec.cut_seq.is_some(), "tampering is a chain break: {rec:?}");
    assert!(
        rec.lost > 0,
        "entries beyond the tamper point are reported lost: {rec:?}"
    );
    sink.finish();
    verified_entries(&storage);
}

// ---------------------------------------------------------------------------
// segment-rotation fault matrix
// ---------------------------------------------------------------------------

/// `max_segment_bytes: 1` forces a roll on every flush after the first, so
/// a handful of batches deterministically produce a multi-segment log.
fn rotating_config(batch_max: usize) -> AuditSinkConfig {
    AuditSinkConfig {
        max_segment_bytes: 1,
        ..sink_config(batch_max)
    }
}

fn open_rotating(storage: &MemStorage, batch_max: usize) -> AuditSink {
    AuditSink::open_with_storage(&rotating_config(batch_max), Box::new(storage.clone())).unwrap()
}

/// Build a clean multi-segment log: every flush after the first rolls, so
/// `batches` batches leave at least that many segments, each standalone-
/// verifiable. Returns the finished report.
fn build_segmented_log(storage: &MemStorage, batches: u64) -> fact_serve::SinkReport {
    let sink = open_rotating(storage, 2);
    let handle = sink.handle();
    for b in 0..batches {
        feed_and_settle(&sink, &handle, b * 2..b * 2 + 2);
    }
    drop(handle);
    sink.finish()
}

#[test]
fn kill_mid_handoff_record_falls_back_one_segment_without_silent_loss() {
    let storage = MemStorage::new();
    let report = build_segmented_log(&storage, 3);
    assert!(report.rolls >= 2, "rotation must have happened: {report:?}");

    // run 2: die 10 bytes into the next flush. The active segment is over
    // the 1-byte cap, so that flush rolls first — the 10 bytes are the
    // torn opening *handoff record* of the freshly created segment.
    let sink = open_rotating(&storage, 2);
    let handle = sink.handle();
    let segments_before = storage.segment_ids().len();
    storage.kill_at_byte(storage.log_bytes().len() as u64 + 10);
    for k in 100..102 {
        handle.record(flagged(k));
    }
    drop(handle);
    let killed = sink.finish();
    assert!(killed.io_errors >= 1, "the kill must surface: {killed:?}");

    // run 3: the newest segment holds only a torn handoff → recovery wipes
    // it and falls back exactly one segment; nothing promised is missing.
    let storage = storage.restart();
    let sink = open_rotating(&storage, 2);
    let rec = sink.recovery().clone();
    assert!(
        rec.needs_handoff,
        "a wiped roll must be re-opened with a fresh handoff: {rec:?}"
    );
    assert_eq!(
        rec.replayed_segments, 2,
        "fallback reads the wiped segment plus one: {rec:?}"
    );
    assert_eq!(rec.lost, 0, "the torn handoff was never promised: {rec:?}");
    assert_eq!(rec.missing_segments, 0, "{rec:?}");

    // resume: the first flush re-emits the handoff and the whole history
    // still verifies segment by segment AND as one continuous chain
    let handle = sink.handle();
    feed_and_settle(&sink, &handle, 200..204);
    drop(handle);
    let final_report = sink.finish();
    assert!(final_report.segments as usize >= segments_before);
    let mut probe: Box<dyn AuditStorage> = Box::new(storage.clone());
    let audit = fact_serve::verify_all_segments(probe.as_mut()).unwrap();
    assert!(audit.continuous, "{audit:?}");
    for (id, verdict) in &audit.segments {
        assert!(verdict.is_ok(), "segment {id} must verify: {verdict:?}");
    }
    verified_entries(&storage);
}

#[test]
fn torn_tail_in_a_non_final_segment_is_caught_lazily_not_on_restart() {
    let storage = MemStorage::new();
    build_segmented_log(&storage, 4);
    let ids = storage.segment_ids();
    assert!(ids.len() >= 3, "need a middle segment: {ids:?}");
    let mid = ids[ids.len() / 2];

    // tear the middle segment's tail (lose its trailing newline + bytes)
    let mid_len = storage.segment_bytes(mid).unwrap().len() as u64;
    {
        let mut s: Box<dyn AuditStorage> = Box::new(storage.clone());
        s.truncate_segment(mid, mid_len - 5).unwrap();
    }

    // restart: recovery replays ONLY the newest segment, so the damage is
    // invisible to the O(segment) startup path — by design
    let storage = storage.restart();
    let sink = open_rotating(&storage, 2);
    let rec = sink.recovery().clone();
    assert_eq!(rec.replayed_segments, 1, "{rec:?}");
    assert_eq!(rec.lost, 0, "the newest segment is intact: {rec:?}");
    sink.finish();

    // …and the lazy full audit is what flags it
    let mut probe: Box<dyn AuditStorage> = Box::new(storage.clone());
    let verdict = fact_serve::verify_segment(probe.as_mut(), mid).unwrap();
    assert!(
        matches!(verdict, Err(fact_transparency::SegmentError::TornTail(_))),
        "torn middle segment must be flagged: {verdict:?}"
    );
    let audit = fact_serve::verify_all_segments(probe.as_mut()).unwrap();
    assert!(!audit.continuous, "{audit:?}");
}

#[test]
fn missing_middle_segment_is_provable_loss_not_a_panic() {
    let storage = MemStorage::new();
    build_segmented_log(&storage, 4);
    let ids = storage.segment_ids();
    assert!(ids.len() >= 3, "need a middle segment: {ids:?}");
    let mid = ids[ids.len() / 2];
    let swallowed = {
        let mut probe: Box<dyn AuditStorage> = Box::new(storage.clone());
        fact_serve::verify_segment(probe.as_mut(), mid)
            .unwrap()
            .expect("intact before removal")
            .entries
    };
    assert!(storage.remove_segment(mid));

    let storage = storage.restart();
    let sink = open_rotating(&storage, 2);
    let rec = sink.recovery().clone();
    assert_eq!(rec.missing_segments, 1, "{rec:?}");
    assert_eq!(
        rec.missing_entries, swallowed,
        "the neighbors' handoff claims quantify the hole exactly: {rec:?}"
    );
    assert_eq!(rec.lost, swallowed, "{rec:?}");
    sink.finish();

    let mut probe: Box<dyn AuditStorage> = Box::new(storage.clone());
    let audit = fact_serve::verify_all_segments(probe.as_mut()).unwrap();
    assert!(!audit.continuous, "a hole can never audit continuous");
}

#[test]
fn head_sidecar_stale_by_a_segment_is_lag_not_loss() {
    let storage = MemStorage::new();
    build_segmented_log(&storage, 2);
    let head_then = storage.head_bytes().expect("head persisted");

    // from here every head rename silently reverts (the failure mode the
    // missing parent-dir fsync allowed): more segments land, but the
    // sidecar stays a full segment behind
    storage.revert_head_writes();
    {
        let sink = open_rotating(&storage, 2);
        let handle = sink.handle();
        feed_and_settle(&sink, &handle, 50..54);
        drop(handle);
        sink.finish();
    }
    assert_eq!(
        storage.head_bytes().expect("head still present"),
        head_then,
        "reverted renames must leave the old head"
    );

    // a lagging head is advisory lag, never counted as loss
    let storage = storage.restart();
    let sink = open_rotating(&storage, 2);
    let rec = sink.recovery().clone();
    assert_eq!(rec.lost, 0, "head lag is not loss: {rec:?}");
    assert!(rec.recovered > 0);
    sink.finish();
    verified_entries(&storage);
}

// ---------------------------------------------------------------------------
// whole-service crash cycle
// ---------------------------------------------------------------------------

fn audited_disparity_config() -> ServeConfig {
    ServeConfig {
        shards: 1,
        n_features: 1,
        queue_cap: 256,
        batch_max: 8,
        batch_linger: Duration::from_micros(100),
        default_timeout: Duration::from_secs(5),
        policy: DegradePolicy::AuditAndFlag,
        trip_cooldown: 10_000,
        guards: Some(GuardConfig {
            fairness_window: 100,
            min_di: 0.8,
            min_samples_per_group: 10,
            dp_interval: 1_000_000,
            ..GuardConfig::default()
        }),
        audit: Some(sink_config(8)),
        ..ServeConfig::default()
    }
}

struct PassThrough;

impl fact_ml::Classifier for PassThrough {
    fn predict_proba(&self, x: &fact_data::Matrix) -> fact_data::Result<Vec<f64>> {
        Ok((0..x.rows()).map(|i| x.get(i, 0).clamp(0.0, 1.0)).collect())
    }
}

fn run_disparity(service: &DecisionService, n: u64) -> u64 {
    let mut served = 0;
    for i in 0..n {
        let group_b = i.is_multiple_of(2);
        let ok = service
            .decide(DecisionRequest {
                features: vec![if group_b { 0.1 } else { 0.9 }],
                group_b,
                route_key: i,
                tenant: 0,
            })
            .is_ok();
        served += u64::from(ok);
    }
    served
}

#[test]
fn audited_service_survives_a_storage_kill_and_restart_verifies() {
    let storage = MemStorage::new();

    // run 1: the storage dies partway through; serving must be unaffected
    let service = DecisionService::start_with_audit_storage(
        Arc::new(PassThrough),
        audited_disparity_config(),
        Arc::new(InlineFeatures),
        Box::new(storage.clone()),
    )
    .unwrap();
    // let some audit batches land, then schedule the kill
    let served_warmup = run_disparity(&service, 200);
    assert_eq!(served_warmup, 200);
    storage.kill_at_byte(storage.log_bytes().len() as u64 + 120);
    let served_after = run_disparity(&service, 200);
    assert_eq!(served_after, 200, "a dead audit disk must not stop serving");
    let report = service.shutdown();
    assert!(report.flagged > 0);

    // run 2 over the same (revived) bytes: recovery truncates at most the
    // one torn batch and the combined log verifies as a single chain
    let storage = storage.restart();
    let service = DecisionService::start_with_audit_storage(
        Arc::new(PassThrough),
        audited_disparity_config(),
        Arc::new(InlineFeatures),
        Box::new(storage.clone()),
    )
    .unwrap();
    let rec = service.audit_recovery().unwrap().clone();
    assert!(rec.recovered > 0);
    assert!(
        (rec.cut_lines as usize) < 8,
        "at most one torn batch (batch_max=8): {rec:?}"
    );
    assert_eq!(rec.lost, 0, "only the unsynced tail was torn: {rec:?}");
    run_disparity(&service, 200);
    let report2 = service.shutdown();
    assert!(report2.flagged > 0);
    assert!(report2.audited > 0);
    assert_eq!(report2.lost_on_recovery, 0);

    let entries = verified_entries(&storage);
    // both runs' lifecycle markers are present in one verified chain
    let starts = entries.iter().filter(|e| e.action == "sink_start").count();
    assert_eq!(starts, 2, "one start marker per run");
}

// ---------------------------------------------------------------------------
// archive fault matrix
// ---------------------------------------------------------------------------
//
// A crash at every step of the archiver's verify → compress → write →
// re-verify → commit → delete protocol must leave each segment as the
// original xor a verified archive — never neither — and a restarted
// archiver must converge without losing or double-counting an entry.
// Faults come from MemStorage's kill knobs (`kill_on_archive_write` fires
// before the atomic rename lands the container; `kill_on_source_delete`
// fires after the manifest commit, with the source retained), which share
// one Arc with the writer — one kill takes both down, like a dead process.

fn retain_none() -> ArchiveConfig {
    ArchiveConfig {
        retain_segments: 0,
        ..ArchiveConfig::default()
    }
}

/// Every present segment (live or archived) decoded and concatenated must
/// still be one unbroken chain from genesis with `total` entries.
fn assert_whole_chain(storage: &MemStorage, total: usize) {
    let mut probe: Box<dyn AuditStorage> = Box::new(storage.clone());
    let audit = verify_all_segments(probe.as_mut()).unwrap();
    assert!(audit.continuous, "{audit:?}");
    let mut ids = storage.segment_ids();
    ids.extend(storage.archive_ids());
    ids.sort_unstable();
    ids.dedup();
    let mut all = Vec::new();
    for id in ids {
        all.extend(read_segment_or_archive(probe.as_mut(), id).unwrap());
    }
    let entries = parse_log(&all);
    assert_eq!(verify_chain_from(ChainHead::genesis(), &entries), None);
    assert_eq!(entries.len(), total, "no entry lost, none double-counted");
}

#[test]
fn crash_before_archive_rename_leaves_the_original_intact() {
    let storage = MemStorage::new();
    build_segmented_log(&storage, 4);
    let live = storage.segment_ids();
    let newest = *live.last().unwrap();
    let victim = live[1];
    let original = storage.segment_bytes(victim).unwrap();
    let total = parse_log(&storage.log_bytes()).len();

    // the kill fires inside write_archive for `victim`: the container
    // never lands (crash before the atomic rename), storage dies
    storage.kill_on_archive_write(victim);
    let stats = ArchiveStats::default();
    let mut probe: Box<dyn AuditStorage> = Box::new(storage.clone());
    archive_run_once(probe.as_mut(), &retain_none(), newest, &stats)
        .expect_err("the kill must surface as an error");

    // segments before the victim archived; the victim kept its original
    // and has no archive — original xor archive, never neither
    assert!(storage.segment_ids().contains(&victim));
    assert!(!storage.archive_ids().contains(&victim));
    assert_eq!(storage.segment_bytes(victim).unwrap(), original);

    // restart: the next pass picks up exactly where the crash left off
    let revived = storage.restart();
    let mut probe2: Box<dyn AuditStorage> = Box::new(revived.clone());
    let pass = archive_run_once(probe2.as_mut(), &retain_none(), newest, &stats).unwrap();
    assert!(pass.archived.contains(&victim), "{pass:?}");
    assert!(pass.skipped.is_empty(), "{pass:?}");
    assert!(!storage.segment_ids().contains(&victim));
    assert!(storage.archive_ids().contains(&victim));
    assert_eq!(
        read_segment_or_archive(probe2.as_mut(), victim).unwrap(),
        original,
        "the archive restores byte-identical content"
    );
    assert_whole_chain(&storage, total);
}

#[test]
fn crash_before_source_delete_completes_without_double_counting() {
    let storage = MemStorage::new();
    build_segmented_log(&storage, 4);
    let live = storage.segment_ids();
    let newest = *live.last().unwrap();
    let victim = live[1];
    let original = storage.segment_bytes(victim).unwrap();
    let total = parse_log(&storage.log_bytes()).len();

    // the kill fires inside remove_segment_file for `victim`: the archive
    // landed and the manifest committed, but the original survives
    storage.kill_on_source_delete(victim);
    let stats = ArchiveStats::default();
    let mut probe: Box<dyn AuditStorage> = Box::new(storage.clone());
    archive_run_once(probe.as_mut(), &retain_none(), newest, &stats)
        .expect_err("the kill must surface as an error");

    // both copies present, manifest committed — the delete is the only
    // outstanding step
    assert!(storage.segment_ids().contains(&victim));
    assert!(storage.archive_ids().contains(&victim));
    let revived = storage.restart();
    let mut probe2: Box<dyn AuditStorage> = Box::new(revived.clone());
    let manifest = ArchiveManifest::load(probe2.as_mut()).unwrap();
    assert!(manifest.record(victim).is_some(), "commit point persisted");

    // restart: the pass *completes* the interrupted archive (adopting the
    // committed container) instead of re-archiving and re-counting it
    let archived_before = stats.snapshot().segments_archived;
    let pass = archive_run_once(probe2.as_mut(), &retain_none(), newest, &stats).unwrap();
    assert!(pass.completed.contains(&victim), "{pass:?}");
    assert!(!pass.archived.contains(&victim), "{pass:?}");
    assert_eq!(
        stats.snapshot().segments_archived,
        archived_before + pass.archived.len() as u64,
        "a completed handoff must not re-count the victim"
    );
    assert!(!storage.segment_ids().contains(&victim));
    assert_eq!(
        read_segment_or_archive(probe2.as_mut(), victim).unwrap(),
        original
    );
    assert_whole_chain(&storage, total);
}

#[test]
fn tampered_source_segment_is_never_compacted_away() {
    let storage = MemStorage::new();
    build_segmented_log(&storage, 4);
    let live = storage.segment_ids();
    let newest = *live.last().unwrap();
    let victim = live[1];

    // tear the victim mid-entry: it no longer verifies standalone, so the
    // archiver must refuse to compact it and keep the evidence in place
    let mut probe: Box<dyn AuditStorage> = Box::new(storage.clone());
    probe.as_mut().truncate_segment(victim, 20).unwrap();

    let stats = ArchiveStats::default();
    let pass = archive_run_once(probe.as_mut(), &retain_none(), newest, &stats).unwrap();
    assert!(pass.skipped.contains(&victim), "{pass:?}");
    assert!(!pass.archived.contains(&victim), "{pass:?}");
    assert!(stats.snapshot().verify_failures >= 1);
    // the damaged original is still there for forensics; no archive
    // claims to replace it
    assert!(storage.segment_ids().contains(&victim));
    assert!(!storage.archive_ids().contains(&victim));
}

#[test]
fn archived_middle_is_gap_free_but_a_missing_middle_is_loss() {
    // two identical stores; in one the middle segment is archived, in the
    // other it is simply deleted — recovery must tell them apart
    let archived = MemStorage::new();
    let lost = MemStorage::new();
    build_segmented_log(&archived, 4);
    build_segmented_log(&lost, 4);
    let ids = archived.segment_ids();
    assert_eq!(ids, lost.segment_ids());
    let middle = ids[ids.len() / 2];

    let bytes = archived.segment_bytes(middle).unwrap();
    let mut probe: Box<dyn AuditStorage> = Box::new(archived.clone());
    probe
        .as_mut()
        .write_archive(middle, &encode_archive(middle, &bytes))
        .unwrap();
    assert!(archived.remove_segment(middle));
    assert!(lost.remove_segment(middle));

    // archived middle: continuous, and a restarted sink sees no loss
    let audit = verify_all_segments(probe.as_mut()).unwrap();
    assert!(audit.continuous, "{audit:?}");
    let sink = open_rotating(&archived, 2);
    let rec = sink.recovery().clone();
    sink.finish();
    assert_eq!(rec.lost, 0, "{rec:?}");
    assert_eq!(rec.missing_segments, 0);

    // deleted middle: the gap is provable loss
    let mut probe_l: Box<dyn AuditStorage> = Box::new(lost.clone());
    let audit_l = verify_all_segments(probe_l.as_mut()).unwrap();
    assert!(!audit_l.continuous, "{audit_l:?}");
    let sink_l = open_rotating(&lost, 2);
    let rec_l = sink_l.recovery().clone();
    sink_l.finish();
    assert_eq!(rec_l.missing_segments, 1, "{rec_l:?}");
    assert!(rec_l.lost > 0, "a swallowed segment is quantified loss");
}

#[test]
fn background_archiver_compacts_a_live_sink_with_zero_loss() {
    let storage = MemStorage::new();
    let sink = AuditSink::open_with_storage(
        &AuditSinkConfig {
            archive: Some(ArchiveConfig {
                retain_segments: 1,
                tick: Duration::from_millis(5),
                ..ArchiveConfig::default()
            }),
            ..rotating_config(2)
        },
        Box::new(storage.clone()),
    )
    .unwrap();
    let h = sink.handle();
    for k in 0..30 {
        h.record(flagged(k));
        if k.is_multiple_of(5) {
            std::thread::sleep(Duration::from_millis(10));
        }
    }
    drop(h);
    let report = sink.finish();
    assert_eq!(report.dropped, 0);
    // finish() runs one final pass, so everything sealed past the horizon
    // is compacted even if the ticks never caught up under load
    assert!(
        report.archive.segments_archived >= 1,
        "{:?}",
        report.archive
    );
    assert!(report.archive.bytes_after < report.archive.bytes_before);
    assert!(!storage.archive_ids().is_empty());

    let total = report.audited + report.rolls;
    assert_whole_chain(&storage, total as usize);

    // a restart over the mixed live/archived store resumes with no loss
    let sink2 = open_rotating(&storage, 2);
    let rec = sink2.recovery().clone();
    sink2.finish();
    assert_eq!(rec.lost, 0, "{rec:?}");
    assert_eq!(rec.missing_segments, 0);
}
