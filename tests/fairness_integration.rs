//! Cross-crate fairness integration: bias injection (fact-data) →
//! detection (fact-fairness metrics/proxy) → mitigation → re-audit,
//! across multiple seeds.

use fact_data::bias::{flip_labels_against_group, undersample_group};
use fact_data::split::train_test_split;
use fact_data::synth::loans::{generate_loans, LoanConfig};
use fact_fairness::metrics::{disparate_impact, statistical_parity_difference};
use fact_fairness::mitigation::repair::repair_disparate_impact;
use fact_fairness::mitigation::reweighing::reweighing_weights;
use fact_fairness::mitigation::threshold::equalize_selection_rates;
use fact_fairness::protected_mask;
use fact_fairness::proxy::{flag_proxies, scan_proxies};
use fact_ml::logistic::{LogisticConfig, LogisticRegression};
use fact_ml::metrics::accuracy;
use fact_ml::Classifier;

#[test]
fn injected_label_bias_is_detected_across_seeds() {
    for seed in [1u64, 22, 333] {
        let clean = generate_loans(&LoanConfig {
            n: 12_000,
            seed,
            ..LoanConfig::default()
        });
        let (biased, flipped) =
            flip_labels_against_group(&clean, "approved", "group", "B", 0.4, seed).unwrap();
        assert!(flipped > 0);
        let mask = protected_mask(&biased, "group", "B").unwrap();
        let labels = biased.bool_column("approved").unwrap();
        let spd = statistical_parity_difference(labels, &mask).unwrap();
        assert!(
            spd > 0.1,
            "seed {seed}: injected bias visible in labels, spd={spd}"
        );
    }
}

#[test]
fn proxy_pipeline_discriminates_even_without_sensitive_attribute() {
    // the paper's core fairness claim, as an integration test
    let ds = generate_loans(&LoanConfig {
        n: 16_000,
        seed: 77,
        bias_strength: 0.45,
        proxy_strength: 0.9,
        ..LoanConfig::default()
    });
    let (train, test) = train_test_split(&ds, 0.25, 1).unwrap();
    let features = [
        "income",
        "credit_score",
        "debt_ratio",
        "years_employed",
        "zip_risk",
    ]; // NOTE: no "group" column
    let x = train.to_matrix(&features).unwrap();
    let y = train.bool_column("approved").unwrap().to_vec();
    let model = LogisticRegression::fit(&x, &y, None, &LogisticConfig::default()).unwrap();
    let xt = test.to_matrix(&features).unwrap();
    let pred = model.predict(&xt).unwrap();
    let mask = protected_mask(&test, "group", "B").unwrap();
    let di = disparate_impact(&pred, &mask).unwrap();
    assert!(
        di < 0.6,
        "model without the sensitive column still discriminates via the proxy: DI={di}"
    );
    // and the proxy scanner names the culprit
    let mask_tr = protected_mask(&train, "group", "B").unwrap();
    let scores = scan_proxies(&train, &mask_tr, &["group", "approved"]).unwrap();
    let flagged = flag_proxies(&scores, 0.2);
    assert_eq!(flagged[0].feature, "zip_risk");
}

#[test]
fn every_mitigation_improves_di_on_the_same_world() {
    let ds = generate_loans(&LoanConfig {
        n: 16_000,
        seed: 5,
        bias_strength: 0.45,
        proxy_strength: 0.8,
        feature_gap: 5.0,
        ..LoanConfig::default()
    });
    let (train, test) = train_test_split(&ds, 0.25, 2).unwrap();
    let features = [
        "income",
        "credit_score",
        "debt_ratio",
        "years_employed",
        "zip_risk",
    ];
    let x = train.to_matrix(&features).unwrap();
    let y = train.bool_column("approved").unwrap().to_vec();
    let xt = test.to_matrix(&features).unwrap();
    let mask_tr = protected_mask(&train, "group", "B").unwrap();
    let mask_te = protected_mask(&test, "group", "B").unwrap();
    let cfg = LogisticConfig::default();

    let base = LogisticRegression::fit(&x, &y, None, &cfg).unwrap();
    let di_base = disparate_impact(&base.predict(&xt).unwrap(), &mask_te).unwrap();

    // reweighing
    let w = reweighing_weights(&y, &mask_tr).unwrap();
    let m = LogisticRegression::fit(&x, &y, Some(&w), &cfg).unwrap();
    let di_rw = disparate_impact(&m.predict(&xt).unwrap(), &mask_te).unwrap();

    // repair
    let rep_tr = repair_disparate_impact(&train, &features, &mask_tr, 1.0).unwrap();
    let rep_te = repair_disparate_impact(&test, &features, &mask_te, 1.0).unwrap();
    let m = LogisticRegression::fit(&rep_tr.to_matrix(&features).unwrap(), &y, None, &cfg).unwrap();
    let di_rep = disparate_impact(
        &m.predict(&rep_te.to_matrix(&features).unwrap()).unwrap(),
        &mask_te,
    )
    .unwrap();

    // threshold post-processing
    let scores = base.predict_proba(&xt).unwrap();
    let th = equalize_selection_rates(&scores, &mask_te, 0.5).unwrap();
    let di_th = disparate_impact(&th.apply(&scores, &mask_te).unwrap(), &mask_te).unwrap();

    for (name, di) in [
        ("reweighing", di_rw),
        ("repair", di_rep),
        ("threshold", di_th),
    ] {
        assert!(
            di > di_base + 0.1,
            "{name} must improve DI: base {di_base:.3} → {di:.3}"
        );
    }
    assert!(di_th > 0.9, "threshold optimization nails parity: {di_th}");
}

#[test]
fn representation_bias_shrinks_group_and_trips_adequacy() {
    let ds = generate_loans(&LoanConfig {
        n: 2_000,
        seed: 9,
        group_b_frac: 0.5,
        ..LoanConfig::default()
    });
    let shrunk = undersample_group(&ds, "group", "B", 0.02, 3).unwrap();
    let warnings = fact_accuracy::adequacy::check_group_sizes(&shrunk, "group", 50).unwrap();
    assert!(
        !warnings.is_empty(),
        "undersampled group must trip adequacy"
    );
    assert!(warnings[0].subject.contains("B"));
}

#[test]
fn fairness_accuracy_tradeoff_is_monotone_in_repair_amount() {
    let ds = generate_loans(&LoanConfig {
        n: 12_000,
        seed: 11,
        bias_strength: 0.3,
        proxy_strength: 0.8,
        feature_gap: 10.0,
        ..LoanConfig::default()
    });
    let (train, test) = train_test_split(&ds, 0.25, 4).unwrap();
    let features = [
        "income",
        "credit_score",
        "debt_ratio",
        "years_employed",
        "zip_risk",
    ];
    let y = train.bool_column("approved").unwrap().to_vec();
    let yt = test.bool_column("approved").unwrap().to_vec();
    let mask_tr = protected_mask(&train, "group", "B").unwrap();
    let mask_te = protected_mask(&test, "group", "B").unwrap();

    let run = |amount: f64| {
        let r_tr = repair_disparate_impact(&train, &features, &mask_tr, amount).unwrap();
        let r_te = repair_disparate_impact(&test, &features, &mask_te, amount).unwrap();
        let m = LogisticRegression::fit(
            &r_tr.to_matrix(&features).unwrap(),
            &y,
            None,
            &LogisticConfig::default(),
        )
        .unwrap();
        let pred = m.predict(&r_te.to_matrix(&features).unwrap()).unwrap();
        (
            accuracy(&yt, &pred).unwrap(),
            disparate_impact(&pred, &mask_te).unwrap(),
        )
    };
    let (acc0, di0) = run(0.0);
    let (acc1, di1) = run(1.0);
    assert!(di1 > di0, "repair improves DI: {di0:.3} → {di1:.3}");
    // accuracy against (biased) labels may drop — that's the documented trade
    assert!(acc1 <= acc0 + 0.02);
}
