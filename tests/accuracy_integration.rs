//! Cross-crate accuracy integration: the multiple-testing trap, Simpson
//! detection on generated admissions, and bootstrap uncertainty around a
//! real model.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use fact_accuracy::registry::{CorrectionMethod, HypothesisRegistry};
use fact_accuracy::simpson::{audit_simpson, scan_stratifiers};
use fact_accuracy::uncertainty::BootstrapEnsemble;
use fact_data::synth::admissions::{generate_admissions, AdmissionsConfig};
use fact_data::{Matrix, Result};
use fact_ml::logistic::{LogisticConfig, LogisticRegression};
use fact_ml::Classifier;
use fact_stats::tests::welch_t_test;

/// The paper's "terrorist attack / eye color" parable, across seeds: a pure
/// noise world almost always yields naive "discoveries" at m=500, and FWER
/// corrections withdraw essentially all of them.
#[test]
fn fishing_expeditions_produce_false_discoveries_and_corrections_stop_them() {
    let mut total_naive = 0usize;
    let mut total_corrected = 0usize;
    for seed in 0..5u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = 150;
        let response: Vec<bool> = (0..n).map(|_| rng.gen_bool(0.5)).collect();
        let mut reg = HypothesisRegistry::new();
        for p in 0..500 {
            let x: Vec<f64> = (0..n).map(|_| rng.gen()).collect();
            let yes: Vec<f64> = x
                .iter()
                .zip(&response)
                .filter(|(_, &r)| r)
                .map(|(&v, _)| v)
                .collect();
            let no: Vec<f64> = x
                .iter()
                .zip(&response)
                .filter(|(_, &r)| !r)
                .map(|(&v, _)| v)
                .collect();
            let t = welch_t_test(&yes, &no).unwrap();
            reg.register(format!("p{p}"), t.p_value).unwrap();
        }
        let rep = reg.report(0.05, CorrectionMethod::Holm).unwrap();
        total_naive += rep.naive_discoveries;
        total_corrected += rep.corrected_discoveries;
    }
    // ~5% of 2500 null tests ≈ 125 naive discoveries expected
    assert!(
        total_naive > 60,
        "noise should produce many naive 'discoveries': {total_naive}"
    );
    assert!(
        total_corrected <= 1,
        "Holm should withdraw them: kept {total_corrected}"
    );
}

#[test]
fn simpson_reversal_detected_on_generated_admissions_at_all_sizes() {
    for n in [2_000, 8_000, 24_000] {
        let ds = generate_admissions(&AdmissionsConfig { n, seed: n as u64 });
        let rep = audit_simpson(&ds, "admitted", "gender", "male", "female", "department").unwrap();
        assert!(rep.aggregate_difference > 0.05, "n={n}");
        assert!(
            rep.adjusted_difference < rep.aggregate_difference - 0.05,
            "n={n}: stratification must shrink the gap"
        );
    }
}

#[test]
fn stratifier_scan_ranks_the_true_confounder_first() {
    let ds = generate_admissions(&AdmissionsConfig::default());
    // add two irrelevant stratifiers
    let mut ds2 = ds.clone();
    let coin: Vec<&str> = (0..ds.n_rows())
        .map(|i| if i % 2 == 0 { "h" } else { "t" })
        .collect();
    ds2.add_column("coin", fact_data::Column::from_labels(&coin))
        .unwrap();
    let reports = scan_stratifiers(
        &ds2,
        "admitted",
        "gender",
        "male",
        "female",
        &["coin", "department"],
    )
    .unwrap();
    let dept = reports
        .iter()
        .find(|r| r.stratifier == "department")
        .unwrap();
    let coin = reports.iter().find(|r| r.stratifier == "coin").unwrap();
    // department shrinks the gap dramatically; the coin does not
    assert!(dept.adjusted_difference.abs() < 0.06);
    assert!((coin.adjusted_difference - coin.aggregate_difference).abs() < 0.02);
}

#[test]
fn bootstrap_uncertainty_wraps_a_real_classifier() {
    let mut rng = StdRng::seed_from_u64(3);
    let n = 800;
    let mut rows = Vec::with_capacity(n);
    let mut y = Vec::with_capacity(n);
    for _ in 0..n {
        let a: f64 = rng.gen_range(-2.0..2.0);
        let b: f64 = rng.gen_range(-2.0..2.0);
        rows.push(vec![a, b]);
        y.push(a - b + rng.gen_range(-0.5..0.5) > 0.0);
    }
    let x = Matrix::from_rows(&rows).unwrap();
    let trainer =
        |xt: &Matrix, yt: &[bool], seed: u64| -> Result<Box<dyn Classifier + Send + Sync>> {
            let cfg = LogisticConfig {
                seed,
                epochs: 25,
                ..LogisticConfig::default()
            };
            Ok(Box::new(LogisticRegression::fit(xt, yt, None, &cfg)?))
        };
    let ens = BootstrapEnsemble::fit(&x, &y, 12, 0.9, 7, trainer).unwrap();
    let probe = Matrix::from_rows(&[vec![2.0, -2.0], vec![0.05, 0.05]]).unwrap();
    let preds = ens.predict_with_uncertainty(&probe).unwrap();
    // deep in the positive class: confident and stable
    assert!(preds[0].mean > 0.9);
    assert!(preds[0].decision_is_stable());
    // near the boundary: wider interval
    assert!(preds[1].width() >= preds[0].width());
}
