//! End-to-end integration: the full FACT pipeline across every crate.

use responsible_data_science::prelude::*;

use fact_core::Pillar;
use fact_data::synth::loans::generate_loans;
use fact_data::Dataset;
use fact_fairness::mitigation::reweighing::reweighing_weights;

fn plain(x: &Matrix, y: &[bool], _d: &Dataset, seed: u64) -> Result<Box<dyn Classifier>> {
    let cfg = LogisticConfig {
        seed,
        ..LogisticConfig::default()
    };
    Ok(Box::new(LogisticRegression::fit(x, y, None, &cfg)?))
}

fn reweighed(x: &Matrix, y: &[bool], d: &Dataset, seed: u64) -> Result<Box<dyn Classifier>> {
    let mask = protected_mask(d, "group", "B")?;
    let w = reweighing_weights(y, &mask)?;
    let cfg = LogisticConfig {
        seed,
        ..LogisticConfig::default()
    };
    Ok(Box::new(LogisticRegression::fit(x, y, Some(&w), &cfg)?))
}

fn lenient_policy() -> FactPolicy {
    let mut p = FactPolicy::strict("group", "B");
    if let Some(f) = p.fairness.as_mut() {
        f.thresholds.max_equalized_odds = 1.0; // labels are bias-corrupted
    }
    if let Some(a) = p.accuracy.as_mut() {
        a.min_accuracy = 0.6;
    }
    p
}

#[test]
fn biased_world_fails_then_remediation_passes() {
    let world = generate_loans(&LoanConfig {
        n: 10_000,
        seed: 31,
        bias_strength: 0.45,
        proxy_strength: 0.9,
        ..LoanConfig::default()
    });

    // careless: proxy feature included
    let mut careless = GuardedPipeline::new(lenient_policy()).unwrap();
    careless.load_data("loans", "test", world.clone()).unwrap();
    let with_proxy = [
        "income",
        "credit_score",
        "debt_ratio",
        "years_employed",
        "zip_risk",
    ];
    careless
        .train("v1", "test", &with_proxy, "approved", 1, plain)
        .unwrap();
    careless.audit_fairness().unwrap();
    let r1 = careless.certify();
    assert!(!r1.is_green());
    assert!(!r1.pillar_passes(Pillar::Fairness));

    // remediated
    let mut fixed = GuardedPipeline::new(lenient_policy()).unwrap();
    fixed.load_data("loans", "test", world).unwrap();
    fixed
        .train("v2", "test", &LEGIT_FEATURES, "approved", 1, reweighed)
        .unwrap();
    let audit = fixed.audit_fairness().unwrap();
    assert!(
        audit.passes_disparate_impact(),
        "DI {}",
        audit.disparate_impact
    );
    if let Some(card) = fixed.model_card_mut() {
        card.intended_use = "integration test".into();
    }
    fixed.audit_transparency().unwrap();
    fixed.release_mean("income", 0.0, 250.0, 0.3, 5).unwrap();
    let r2 = fixed.certify();
    assert!(r2.is_green(), "remediated pipeline must be green:\n{r2}");
}

#[test]
fn certification_artifacts_are_exportable() {
    let world = generate_loans(&LoanConfig {
        n: 4_000,
        seed: 5,
        ..LoanConfig::default()
    });
    let mut p = GuardedPipeline::new(lenient_policy()).unwrap();
    p.load_data("loans", "test", world).unwrap();
    p.train("m", "test", &LEGIT_FEATURES, "approved", 9, plain)
        .unwrap();
    p.audit_fairness().unwrap();
    let report = p.certify();
    // JSON artifacts for registries/auditors
    let json = report.to_json();
    assert!(json.contains("checks"));
    let prov_json = p.provenance().to_json().unwrap();
    assert!(prov_json.contains("loans"));
    let audit_json = p.audit_log().to_json();
    assert!(audit_json.contains("guard:"));
}

#[test]
fn transform_stage_composes_with_guards() {
    let mut world = generate_loans(&LoanConfig {
        n: 3_000,
        seed: 8,
        ..LoanConfig::default()
    });
    // poke some nulls into a copy of income
    let mut vals: Vec<Option<f64>> = world
        .f64_column("income")
        .unwrap()
        .into_iter()
        .map(Some)
        .collect();
    vals[0] = None;
    vals[1] = None;
    world
        .replace_column("income", fact_data::Column::from_f64_opt(vals))
        .unwrap();

    let mut p = GuardedPipeline::new(lenient_policy()).unwrap();
    p.load_data("loans", "test", world).unwrap();
    p.transform("drop_nulls", "engineer", |d| Ok(d.drop_nulls()))
        .unwrap();
    assert_eq!(p.data().unwrap().n_rows(), 2_998);
    p.train("m", "test", &LEGIT_FEATURES, "approved", 2, plain)
        .unwrap();
    let lineage = p.model_lineage().unwrap();
    assert!(lineage.iter().any(|n| n.contains("drop_nulls")));
    assert!(lineage.iter().any(|n| n == "loans"));
}

#[test]
fn audit_log_spans_the_whole_run_and_verifies() {
    let world = generate_loans(&LoanConfig {
        n: 3_000,
        seed: 13,
        ..LoanConfig::default()
    });
    let mut p = GuardedPipeline::new(lenient_policy()).unwrap();
    p.load_data("loans", "ingest", world).unwrap();
    p.train("m", "ml", &LEGIT_FEATURES, "approved", 3, plain)
        .unwrap();
    p.audit_fairness().unwrap();
    p.release_mean("income", 0.0, 250.0, 0.2, 1).unwrap();
    p.explain_decision(0).unwrap();
    let log = p.audit_log();
    assert!(log.verify().is_none());
    let actions: Vec<&str> = log.entries().iter().map(|e| e.action.as_str()).collect();
    assert!(actions.contains(&"load_data"));
    assert!(actions.contains(&"train"));
    assert!(actions.contains(&"release"));
    assert!(actions.contains(&"explain_decision"));
}

#[test]
fn intersectional_audit_integrates_with_certification() {
    let world = generate_loans(&LoanConfig {
        n: 8_000,
        seed: 21,
        ..LoanConfig::default()
    });
    let mut p = GuardedPipeline::new(lenient_policy()).unwrap();
    p.load_data("loans", "test", world).unwrap();
    p.train("m", "test", &LEGIT_FEATURES, "approved", 2, plain)
        .unwrap();
    let report = p.audit_intersectional(&["group"]).unwrap();
    assert!(!report.subgroups.is_empty());
    // the fair world should pass the subgroup guard
    let cert = p.certify();
    let guard = cert
        .checks
        .iter()
        .find(|c| c.name == "intersectional audit")
        .unwrap();
    assert!(guard.passed, "{}", guard.detail);
}

#[test]
fn counterfactual_recourse_is_offered_and_logged() {
    let world = generate_loans(&LoanConfig {
        n: 6_000,
        seed: 23,
        ..LoanConfig::default()
    });
    let mut p = GuardedPipeline::new(lenient_policy()).unwrap();
    p.load_data("loans", "test", world).unwrap();
    p.train("m", "test", &LEGIT_FEATURES, "approved", 3, plain)
        .unwrap();
    // find a rejected test row and ask for recourse
    let mut offered = false;
    for row in 0..50 {
        if let Some(cf) = p.counterfactual(row, &["years_employed"]).unwrap() {
            assert!(!cf.changes.is_empty());
            assert!(
                cf.changes.iter().all(|c| c.name != "years_employed"),
                "immutable respected"
            );
            offered = true;
            break;
        }
    }
    assert!(offered, "some row should have plausible recourse");
    assert!(p
        .audit_log()
        .entries()
        .iter()
        .any(|e| e.action == "counterfactual"));
}

#[test]
fn policy_can_be_loaded_from_config_json() {
    let json = FactPolicy::strict("group", "B").to_json().unwrap();
    let policy = FactPolicy::from_json(&json).unwrap();
    let mut p = GuardedPipeline::new(policy).unwrap();
    let world = generate_loans(&LoanConfig {
        n: 3_000,
        seed: 29,
        ..LoanConfig::default()
    });
    p.load_data("loans", "test", world).unwrap();
    assert!(p.accountant().is_some());
}
