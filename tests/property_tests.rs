//! Property-based tests (proptest) on cross-crate invariants.

use proptest::prelude::*;

use fact_confidentiality::kanon::mondrian_k_anonymize;
use fact_confidentiality::mechanisms::laplace_mechanism;
use fact_data::csv::{read_csv, write_csv, CsvOptions};
use fact_data::{Column, Dataset, Matrix};
use fact_fairness::mitigation::reweighing::reweighing_weights;
use fact_par::Pool;
use fact_stats::descriptive::{quantile, ranks};
use fact_stats::dist::norm_cdf;
use fact_stats::multiple::{benjamini_hochberg, bonferroni, holm};

fn finite_f64() -> impl Strategy<Value = f64> {
    (-1e6f64..1e6).prop_filter("finite", |v| v.is_finite())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // ---------- dataset engine ----------

    #[test]
    fn filter_keeps_exactly_masked_rows(vals in prop::collection::vec(finite_f64(), 1..60),
                                        mask_seed in 0u64..1000) {
        let n = vals.len();
        let ds = Dataset::builder().f64("x", vals.clone()).build().unwrap();
        let mask: Vec<bool> = (0..n).map(|i| !(i as u64).wrapping_mul(mask_seed + 7).is_multiple_of(3)).collect();
        let kept = ds.filter(&mask).unwrap();
        let expect: Vec<f64> = vals.iter().zip(&mask).filter(|(_, &m)| m).map(|(&v, _)| v).collect();
        prop_assert_eq!(kept.f64_column("x").unwrap(), expect);
    }

    #[test]
    fn take_with_permutation_preserves_multiset(vals in prop::collection::vec(finite_f64(), 1..50)) {
        let n = vals.len();
        let ds = Dataset::builder().f64("x", vals.clone()).build().unwrap();
        let perm: Vec<usize> = (0..n).rev().collect();
        let taken = ds.take(&perm);
        let mut a = taken.f64_column("x").unwrap();
        let mut b = vals;
        a.sort_by(|p, q| p.partial_cmp(q).unwrap());
        b.sort_by(|p, q| p.partial_cmp(q).unwrap());
        prop_assert_eq!(a, b);
    }

    #[test]
    fn csv_round_trip_preserves_data(vals in prop::collection::vec(-1e4f64..1e4, 1..40),
                                     labels in prop::collection::vec("[a-z]{1,6}", 1..40)) {
        let n = vals.len().min(labels.len());
        let ds = Dataset::builder()
            .f64("x", vals[..n].to_vec())
            .cat("l", &labels[..n])
            .build()
            .unwrap();
        let mut buf = Vec::new();
        write_csv(&ds, &mut buf).unwrap();
        let back = read_csv(buf.as_slice(), &CsvOptions::default()).unwrap();
        prop_assert_eq!(back.n_rows(), n);
        let orig = ds.f64_column("x").unwrap();
        let rt = back.f64_column("x").unwrap();
        for (o, r) in orig.iter().zip(&rt) {
            prop_assert!((o - r).abs() <= o.abs() * 1e-12 + 1e-12);
        }
        prop_assert_eq!(back.labels("l").unwrap(), ds.labels("l").unwrap());
    }

    // ---------- stats ----------

    #[test]
    fn quantile_is_bounded_and_monotone(vals in prop::collection::vec(finite_f64(), 2..80),
                                        q1 in 0.0f64..1.0, q2 in 0.0f64..1.0) {
        let (lo, hi) = (q1.min(q2), q1.max(q2));
        let a = quantile(&vals, lo).unwrap();
        let b = quantile(&vals, hi).unwrap();
        let min = vals.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = vals.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(a <= b + 1e-9);
        prop_assert!(a >= min - 1e-9 && b <= max + 1e-9);
    }

    #[test]
    fn ranks_are_a_valid_ranking(vals in prop::collection::vec(finite_f64(), 1..60)) {
        let r = ranks(&vals);
        let n = vals.len() as f64;
        let sum: f64 = r.iter().sum();
        // rank sum is invariant: n(n+1)/2
        prop_assert!((sum - n * (n + 1.0) / 2.0).abs() < 1e-6);
        for &x in &r {
            prop_assert!(x >= 1.0 && x <= n);
        }
    }

    #[test]
    fn corrections_dominate_raw_p_and_stay_in_unit_interval(
        ps in prop::collection::vec(0.0f64..=1.0, 1..60)
    ) {
        for f in [bonferroni, holm, benjamini_hochberg] {
            let adj = f(&ps).unwrap();
            for (&raw, &a) in ps.iter().zip(&adj) {
                prop_assert!(a >= raw - 1e-12, "adjusted must not fall below raw");
                prop_assert!((0.0..=1.0 + 1e-12).contains(&a));
            }
        }
    }

    #[test]
    fn holm_dominates_bonferroni(ps in prop::collection::vec(0.0f64..=1.0, 1..40)) {
        let b = bonferroni(&ps).unwrap();
        let h = holm(&ps).unwrap();
        for (&bb, &hh) in b.iter().zip(&h) {
            prop_assert!(hh <= bb + 1e-12);
        }
    }

    #[test]
    fn norm_cdf_is_monotone_and_bounded(x in -30.0f64..30.0, dx in 0.0f64..5.0) {
        let a = norm_cdf(x);
        let b = norm_cdf(x + dx);
        prop_assert!((0.0..=1.0).contains(&a));
        prop_assert!(b >= a - 1e-12);
    }

    // ---------- matrix kernel ----------

    #[test]
    fn solve_inverts_diagonally_dominant_systems(
        off in prop::collection::vec(-1.0f64..1.0, 9),
        b in prop::collection::vec(-10.0f64..10.0, 3)
    ) {
        let mut a = Matrix::zeros(3, 3);
        for i in 0..3 {
            for j in 0..3 {
                a.set(i, j, off[i * 3 + j]);
            }
            a.set(i, i, 5.0 + off[i * 3 + i]); // dominance ⇒ well-conditioned
        }
        let x = a.solve(&b).unwrap();
        let back = a.matvec(&x).unwrap();
        for (v, w) in back.iter().zip(&b) {
            prop_assert!((v - w).abs() < 1e-8);
        }
    }

    // ---------- confidentiality ----------

    #[test]
    fn laplace_mechanism_is_translation_equivariant(
        value in -1e3f64..1e3, shift in -1e3f64..1e3, seed in 0u64..500
    ) {
        let a = laplace_mechanism(value, 1.0, 1.0, seed).unwrap();
        let b = laplace_mechanism(value + shift, 1.0, 1.0, seed).unwrap();
        prop_assert!(((b - a) - shift).abs() < 1e-9);
    }

    // ---------- fairness ----------

    #[test]
    fn reweighing_always_balances_weighted_label_mass(
        flags in prop::collection::vec(any::<(bool, bool)>(), 8..120)
    ) {
        let y: Vec<bool> = flags.iter().map(|&(a, _)| a).collect();
        let mask: Vec<bool> = flags.iter().map(|&(_, b)| b).collect();
        // require all four cells non-empty, else the function errors by contract
        let mut cells = [[0; 2]; 2];
        for (&yy, &mm) in y.iter().zip(&mask) {
            cells[usize::from(mm)][usize::from(yy)] += 1;
        }
        prop_assume!(cells.iter().flatten().all(|&c| c > 0));
        let w = reweighing_weights(&y, &mask).unwrap();
        let rate = |want: bool| {
            let num: f64 = y.iter().zip(&mask).zip(&w)
                .filter(|((_, &m), _)| m == want)
                .map(|((&l, _), &wv)| if l { wv } else { 0.0 })
                .sum();
            let den: f64 = mask.iter().zip(&w).filter(|(&m, _)| m == want).map(|(_, &wv)| wv).sum();
            num / den
        };
        prop_assert!((rate(true) - rate(false)).abs() < 1e-9);
        prop_assert!(w.iter().all(|&v| v > 0.0));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    // expensive case: full anonymization postcondition
    #[test]
    fn mondrian_output_is_always_k_anonymous(
        n in 60usize..240, k in 2usize..12, seed in 0u64..50
    ) {
        let census = fact_data::synth::census::generate_census(
            &fact_data::synth::census::CensusConfig {
                n,
                seed,
                n_zipcodes: 8,
            },
        );
        let anon = mondrian_k_anonymize(&census, &["age", "sex", "zipcode"], k).unwrap();
        prop_assert!(anon.min_class_size() >= k);
        prop_assert!(
            fact_confidentiality::kanon::is_k_anonymous(&anon.data, &["age", "sex", "zipcode"], k)
                .unwrap()
        );
        prop_assert!((0.0..=1.0).contains(&anon.information_loss));
    }

    // tree predictions are total and bounded on arbitrary inputs
    #[test]
    fn tree_predictions_are_total(seed in 0u64..100, probe in prop::collection::vec(-1e5f64..1e5, 2)) {
        use fact_ml::tree::{DecisionTree, TreeConfig};
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let rows: Vec<Vec<f64>> = (0..100).map(|_| vec![rng.gen::<f64>(), rng.gen::<f64>()]).collect();
        let y: Vec<bool> = rows.iter().map(|r| r[0] + r[1] > 1.0).collect();
        let x = Matrix::from_rows(&rows).unwrap();
        let tree = DecisionTree::fit(&x, &y, &TreeConfig::default()).unwrap();
        let p = tree.predict_row(&probe).unwrap();
        prop_assert!((0.0..=1.0).contains(&p));
        let (path, leaf_p) = tree.decision_path(&probe).unwrap();
        prop_assert_eq!(p, leaf_p);
        for c in path {
            if c.is_le {
                prop_assert!(probe[c.feature] <= c.threshold);
            } else {
                prop_assert!(probe[c.feature] > c.threshold);
            }
        }
    }
}

#[test]
fn dataset_column_round_trip_with_nulls() {
    // deterministic companion to the proptest CSV round trip: nullable columns
    let ds = Dataset::builder()
        .f64_opt("x", vec![Some(1.5), None, Some(-2.25), None])
        .cat("g", &["a", "b", "a", "c"])
        .build()
        .unwrap();
    let mut buf = Vec::new();
    write_csv(&ds, &mut buf).unwrap();
    let back = read_csv(buf.as_slice(), &CsvOptions::default()).unwrap();
    assert_eq!(back.column("x").unwrap().null_count(), 2);
    assert_eq!(back.labels("g").unwrap(), ds.labels("g").unwrap());
    // null positions preserved
    assert!(back.column("x").unwrap().is_null(1));
    assert!(back.column("x").unwrap().is_null(3));
}

#[test]
fn column_api_smoke() {
    let c = Column::from_labels(&["x", "y", "x"]);
    assert_eq!(c.value_counts()[0], ("x".to_string(), 2));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    // ---------- join invariants ----------

    #[test]
    fn inner_join_row_count_equals_key_match_product(
        left_keys in prop::collection::vec(0u8..5, 1..30),
        right_keys in prop::collection::vec(0u8..5, 1..30)
    ) {
        use fact_data::join::{join, JoinKind};
        let lk: Vec<String> = left_keys.iter().map(|k| format!("k{k}")).collect();
        let rk: Vec<String> = right_keys.iter().map(|k| format!("k{k}")).collect();
        let left = Dataset::builder()
            .cat("key", &lk)
            .f64("lv", (0..lk.len()).map(|i| i as f64).collect())
            .build()
            .unwrap();
        let right = Dataset::builder()
            .cat("key", &rk)
            .f64("rv", (0..rk.len()).map(|i| i as f64).collect())
            .build()
            .unwrap();
        let inner = join(&left, &right, "key", JoinKind::Inner).unwrap();
        // expected: Σ over keys of count_left(k) * count_right(k)
        let mut expected = 0usize;
        for k in 0..5u8 {
            let c_l = left_keys.iter().filter(|&&v| v == k).count();
            let c_r = right_keys.iter().filter(|&&v| v == k).count();
            expected += c_l * c_r;
        }
        prop_assert_eq!(inner.n_rows(), expected);
        // left join: every left row appears at least once
        let lj = join(&left, &right, "key", JoinKind::Left).unwrap();
        prop_assert!(lj.n_rows() >= left.n_rows());
    }

    // ---------- aggregation invariants ----------

    #[test]
    fn group_sums_total_to_global_sum(
        vals in prop::collection::vec(-100.0f64..100.0, 1..50),
        keys in prop::collection::vec(0u8..4, 1..50)
    ) {
        use fact_data::agg::{aggregate, AggFn};
        let n = vals.len().min(keys.len());
        let labels: Vec<String> = keys[..n].iter().map(|k| format!("g{k}")).collect();
        let ds = Dataset::builder()
            .cat("g", &labels)
            .f64("v", vals[..n].to_vec())
            .build()
            .unwrap();
        let agg = aggregate(&ds, "g", &[("v", AggFn::Sum), ("v", AggFn::Count)]).unwrap();
        let group_total: f64 = agg.f64_column("v_sum").unwrap().iter().sum();
        let global: f64 = vals[..n].iter().sum();
        prop_assert!((group_total - global).abs() < 1e-9);
        let count_total: f64 = agg.f64_column("v_count").unwrap().iter().sum();
        prop_assert_eq!(count_total as usize, n);
    }

    // ---------- expression layer ----------

    #[test]
    fn predicate_negation_partitions_rows(
        vals in prop::collection::vec(-10.0f64..10.0, 1..60),
        threshold in -10.0f64..10.0
    ) {
        use fact_data::expr::col;
        let ds = Dataset::builder().f64("x", vals.clone()).build().unwrap();
        let p = col("x").gt(threshold);
        let yes = p.eval(&ds).unwrap();
        let no = p.clone().not().eval(&ds).unwrap();
        for (a, b) in yes.iter().zip(&no) {
            prop_assert!(a ^ b, "p and ¬p partition all rows");
        }
    }

    // ---------- causal sensitivity ----------

    #[test]
    fn e_value_at_least_rr_and_symmetric(rr in 0.01f64..50.0) {
        use fact_causal::sensitivity::e_value;
        let e = e_value(rr).unwrap();
        let folded = if rr >= 1.0 { rr } else { 1.0 / rr };
        prop_assert!(e >= folded - 1e-12);
        let e_inv = e_value(1.0 / rr).unwrap();
        prop_assert!((e - e_inv).abs() < 1e-9);
    }

    // ---------- boosting bounds ----------

    #[test]
    fn boosting_probabilities_bounded(seed in 0u64..30) {
        use fact_ml::boosting::{BoostConfig, GradientBoost};
        use fact_ml::Classifier;
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let rows: Vec<Vec<f64>> = (0..80).map(|_| vec![rng.gen::<f64>(), rng.gen::<f64>()]).collect();
        let y: Vec<bool> = rows.iter().map(|r| r[0] > 0.5).collect();
        prop_assume!(y.iter().any(|&b| b) && y.iter().any(|&b| !b));
        let x = Matrix::from_rows(&rows).unwrap();
        let m = GradientBoost::fit(&x, &y, &BoostConfig {
            n_rounds: 10,
            ..BoostConfig::default()
        }).unwrap();
        for p in m.predict_proba(&x).unwrap() {
            prop_assert!((0.0..=1.0).contains(&p) && p.is_finite());
        }
    }
}

#[test]
fn platt_identity_on_already_calibrated_scores() {
    use fact_ml::calibration::PlattScaler;
    use rand::{Rng, SeedableRng};
    let mut rng = rand::rngs::StdRng::seed_from_u64(5);
    let mut scores = Vec::new();
    let mut labels = Vec::new();
    for _ in 0..5000 {
        let p: f64 = rng.gen();
        scores.push(p);
        labels.push(rng.gen::<f64>() < p);
    }
    let scaler = PlattScaler::fit(&scores, &labels).unwrap();
    let (a, b) = scaler.coefficients();
    assert!((a - 1.0).abs() < 0.1, "calibrated input ⇒ a≈1, got {a}");
    assert!(b.abs() < 0.1, "calibrated input ⇒ b≈0, got {b}");
}

// ---------- fact-par determinism ----------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The core contract of fact-par: chunk boundaries depend only on
    /// (n, grain), so any pool computes exactly what a sequential map would.
    #[test]
    fn par_map_equals_sequential_for_any_pool(
        vals in prop::collection::vec(finite_f64(), 0..300),
        grain in 1usize..64,
        workers in 1usize..9,
    ) {
        let got = Pool::new(workers).par_map(vals.len(), grain, |i| vals[i].mul_add(1.5, -2.0));
        let want: Vec<f64> = vals.iter().map(|v| v.mul_add(1.5, -2.0)).collect();
        prop_assert_eq!(got.len(), want.len());
        for (g, w) in got.iter().zip(&want) {
            prop_assert_eq!(g.to_bits(), w.to_bits());
        }
    }

    /// In-place chunk mutation must visit every element exactly once, at
    /// any grain and worker count.
    #[test]
    fn par_for_each_mut_equals_sequential_for_any_pool(
        vals in prop::collection::vec(finite_f64(), 0..300),
        grain in 1usize..64,
        workers in 1usize..9,
    ) {
        let mut got = vals.clone();
        Pool::new(workers).par_for_each_mut(&mut got, grain, |base, chunk| {
            for (k, v) in chunk.iter_mut().enumerate() {
                *v += (base + k) as f64;
            }
        });
        let want: Vec<f64> = vals.iter().enumerate().map(|(i, v)| v + i as f64).collect();
        for (g, w) in got.iter().zip(&want) {
            prop_assert_eq!(g.to_bits(), w.to_bits());
        }
    }

    /// Non-associative float accumulation is the acid test for the fixed
    /// fold order: the reduction must be bit-identical at every worker count.
    #[test]
    fn par_reduce_bits_are_worker_count_invariant(
        vals in prop::collection::vec(finite_f64(), 1..500),
        grain in 1usize..64,
        workers in 2usize..9,
    ) {
        let sum_with = |w: usize| {
            Pool::new(w)
                .par_reduce(vals.len(), grain, |r| r.map(|i| vals[i]).sum::<f64>(), |a, b| a + b)
                .unwrap()
        };
        prop_assert_eq!(sum_with(1).to_bits(), sum_with(workers).to_bits());
    }

    /// The tiled + parallel matmul must agree bitwise with the naive triple
    /// loop on arbitrary shapes, whatever the global worker count is.
    #[test]
    fn matmul_matches_naive_bitwise_at_any_worker_count(
        rows in 1usize..40, inner in 1usize..40, cols in 1usize..40,
        seed in 0u64..1000, workers in 1usize..9,
    ) {
        let fill = |r: usize, c: usize, salt: u64| {
            let data: Vec<f64> = (0..r * c)
                .map(|i| {
                    let h = (i as u64)
                        .wrapping_mul(2_654_435_761)
                        .wrapping_add(seed.wrapping_mul(31).wrapping_add(salt));
                    (h % 2003) as f64 / 1001.5 - 1.0
                })
                .collect();
            Matrix::from_flat(data, r, c).unwrap()
        };
        let a = fill(rows, inner, 1);
        let b = fill(inner, cols, 2);
        fact_par::set_workers(workers);
        let par = a.matmul(&b).unwrap();
        fact_par::set_workers(0);
        let naive = a.matmul_naive(&b).unwrap();
        for (x, y) in par.as_slice().iter().zip(naive.as_slice()) {
            prop_assert_eq!(x.to_bits(), y.to_bits());
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Chunk-seeded resampling: the bootstrap interval is bit-identical at
    /// any worker count because each chunk owns its RNG seed.
    #[test]
    fn bootstrap_ci_bits_are_worker_count_invariant(
        vals in prop::collection::vec(0.0f64..100.0, 8..60),
        workers in 2usize..9,
        seed in 0u64..500,
    ) {
        use fact_stats::ci::bootstrap_ci;
        let mean = |xs: &[f64]| xs.iter().sum::<f64>() / xs.len() as f64;
        fact_par::set_workers(1);
        let a = bootstrap_ci(&vals, mean, 300, 0.9, seed).unwrap();
        fact_par::set_workers(workers);
        let b = bootstrap_ci(&vals, mean, 300, 0.9, seed).unwrap();
        fact_par::set_workers(0);
        prop_assert_eq!(a.estimate.to_bits(), b.estimate.to_bits());
        prop_assert_eq!(a.lower.to_bits(), b.lower.to_bits());
        prop_assert_eq!(a.upper.to_bits(), b.upper.to_bits());
    }
}

// ---------- streaming fairness monitor ----------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The monitor's O(1) sliding-window bookkeeping must agree with a naive
    /// recomputation over the last `window` events, for arbitrary sequences
    /// and window sizes — including the degenerate zero-rate windows.
    #[test]
    fn sliding_window_counts_match_naive_recomputation(
        events in prop::collection::vec(any::<(bool, bool)>(), 1..400),
        window in 1usize..64,
        min_samples in 0usize..8,
    ) {
        use fact_core::runtime::{Alert, StreamingFairnessMonitor};
        let min_di = 0.8;
        let mut monitor = StreamingFairnessMonitor::new(window, min_di, min_samples).unwrap();
        let mut history: Vec<(bool, bool)> = Vec::new();
        for &(group_b, favorable) in &events {
            let got = monitor.observe(group_b, favorable);
            history.push((group_b, favorable));

            // naive model: recount the last `window` events from scratch
            let tail = &history[history.len().saturating_sub(window)..];
            let mut counts = [[0usize; 2]; 2];
            for &(g, f) in tail {
                counts[usize::from(g)][usize::from(f)] += 1;
            }
            let n_a = counts[0][0] + counts[0][1];
            let n_b = counts[1][0] + counts[1][1];
            let expect = if n_a < min_samples || n_b < min_samples {
                None
            } else {
                let rate_a = counts[0][1] as f64 / n_a as f64;
                let rate_b = counts[1][1] as f64 / n_b as f64;
                let di = if rate_a > 0.0 {
                    rate_b / rate_a
                } else if rate_b > 0.0 {
                    f64::INFINITY
                } else {
                    f64::NAN // sentinel: no evidence, expect None
                };
                if di.is_nan() || (di >= min_di && di.is_finite()) {
                    None
                } else {
                    Some((rate_b, rate_a, di))
                }
            };
            match (got, expect) {
                (None, None) => {}
                (
                    Some(Alert::FairnessViolation {
                        rate_protected,
                        rate_unprotected,
                        disparate_impact,
                    }),
                    Some((eb, ea, edi)),
                ) => {
                    // bitwise equality so the NaN rate of an empty group
                    // (reachable when min_samples == 0) compares equal
                    prop_assert_eq!(rate_protected.to_bits(), eb.to_bits());
                    prop_assert_eq!(rate_unprotected.to_bits(), ea.to_bits());
                    prop_assert_eq!(disparate_impact.to_bits(), edi.to_bits());
                }
                (g, e) => {
                    return Err(TestCaseError::Fail(format!(
                        "monitor and naive model disagree: got {g:?}, expected {e:?}"
                    )));
                }
            }
        }
    }
}
