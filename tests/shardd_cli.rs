//! `fact-shardd` CLI contract: malformed invocations must die loudly —
//! usage banner on stderr, exit code 2 — before any socket is bound or
//! sidecar touched. A daemon that half-starts on a typoed flag is how an
//! operator ends up with an unarchived audit log and no error to show
//! for it.

use std::process::{Command, Output};

fn run(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_fact-shardd"))
        .args(args)
        .output()
        .expect("spawn fact-shardd")
}

fn assert_usage_exit(out: &Output, needle: &str) {
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(
        out.status.code(),
        Some(2),
        "bad flags must exit 2, got {:?}\nstderr: {stderr}",
        out.status
    );
    assert!(
        stderr.contains("usage: fact-shardd"),
        "stderr must carry the usage banner:\n{stderr}"
    );
    assert!(
        stderr.contains(needle),
        "stderr must name the offending input {needle:?}:\n{stderr}"
    );
}

#[test]
fn malformed_numeric_flags_print_usage_and_exit_2() {
    // every numeric flag rejects a non-number with the flag named
    for flag in [
        "--shards",
        "--audit-segment-bytes",
        "--archive-retain",
        "--archive-tick-ms",
        "--tenant-rate",
    ] {
        let out = run(&[
            "--socket",
            "/tmp/x.sock",
            "--checkpoint-dir",
            "/tmp",
            flag,
            "abc",
        ]);
        assert_usage_exit(&out, &format!("{flag}: not a number"));
    }
}

#[test]
fn unknown_flags_print_usage_and_exit_2() {
    let out = run(&[
        "--socket",
        "/tmp/x.sock",
        "--checkpoint-dir",
        "/tmp",
        "--bogus",
    ]);
    assert_usage_exit(&out, "unknown flag");
}

#[test]
fn missing_required_args_print_usage_and_exit_2() {
    // no listener at all
    assert_usage_exit(&run(&["--checkpoint-dir", "/tmp"]), "--socket");
    // no checkpoint dir
    assert_usage_exit(&run(&["--socket", "/tmp/x.sock"]), "--checkpoint-dir");
}
