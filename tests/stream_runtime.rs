//! Integration tests for the streaming guard runtime: the paper's §3
//! Internet-Minute scenario with guards composed end to end.

use fact_core::drift::DriftMonitor;
use fact_core::runtime::{Alert, GuardedStream, StreamingFairnessMonitor};
use fact_data::stream::{InternetMinute, Service};

#[test]
fn zero_unprotected_rate_is_total_disparity_not_silence() {
    // Regression: observe() used to return None whenever rate_a == 0,
    // silently masking the worst possible disparity (A never favored while
    // B is). It must alert with an infinite DI instead.
    let mut m = StreamingFairnessMonitor::new(100, 0.8, 10).unwrap();
    let mut last = None;
    for i in 0..100 {
        let group_b = i % 2 == 1;
        // favorable outcomes go exclusively to group B
        last = m.observe(group_b, group_b);
    }
    match last {
        Some(Alert::FairnessViolation {
            disparate_impact,
            rate_unprotected,
            rate_protected,
        }) => {
            assert!(disparate_impact.is_infinite() && disparate_impact > 0.0);
            assert_eq!(rate_unprotected, 0.0);
            assert!(rate_protected > 0.0);
        }
        other => panic!("expected a fairness violation, got {other:?}"),
    }

    // When neither group sees a favorable outcome the window carries no
    // evidence of disparity, so the monitor stays quiet.
    let mut m = StreamingFairnessMonitor::new(100, 0.8, 10).unwrap();
    for i in 0..100 {
        assert_eq!(m.observe(i % 2 == 1, false), None);
    }
}

#[test]
fn healthy_then_bad_deployment_is_caught_by_the_right_guards() {
    let reference: Vec<f64> = InternetMinute::new(1)
        .take(4_000)
        .map(|e| e.value)
        .collect();
    let drift = DriftMonitor::new(&reference, 10, 2_000, 0.2).unwrap();
    let mut guards = GuardedStream::guarded(4_000, 0.8, 20_000, 1.0, 500, 3)
        .unwrap()
        .with_drift_monitor(drift);

    // phase 1: healthy
    for ev in InternetMinute::new(2).take(60_000) {
        guards.process(&ev);
    }
    let phase1_fairness = guards
        .alerts
        .iter()
        .filter(|a| matches!(a, Alert::FairnessViolation { .. }))
        .count();
    let phase1_drift = guards
        .alerts
        .iter()
        .filter(|a| matches!(a, Alert::Drift(_)))
        .count();
    assert_eq!(phase1_fairness, 0, "healthy traffic: no fairness alerts");
    assert_eq!(phase1_drift, 0, "healthy traffic: no drift alerts");

    // phase 2: disparity + payload shift
    for mut ev in InternetMinute::new(3).with_disparity(0.9, 0.4).take(60_000) {
        ev.value += 120.0;
        guards.process(&ev);
    }
    assert!(
        guards
            .alerts
            .iter()
            .any(|a| matches!(a, Alert::FairnessViolation { .. })),
        "disparity must trip the fairness monitor"
    );
    assert!(
        guards.alerts.iter().any(|a| matches!(a, Alert::Drift(_))),
        "payload shift must trip the drift monitor"
    );
    assert_eq!(guards.processed, 120_000);
    assert_eq!(guards.audit_entries, 240);
}

#[test]
fn dp_releases_track_the_stream_and_respect_the_budget() {
    // budget allows exactly 10 releases at ε=0.01 (interval 5_000 over 60k
    // events → 12 intervals; budget ε=0.1 → 10 releases then exhaustion)
    let mut guards = GuardedStream::guarded(4_000, 0.5, 5_000, 0.1, 10_000, 5).unwrap();
    for ev in InternetMinute::new(6).take(60_000) {
        guards.process(&ev);
    }
    let releases: Vec<f64> = guards
        .alerts
        .iter()
        .filter_map(|a| match a {
            Alert::DpRelease { noisy_count, .. } => Some(*noisy_count),
            _ => None,
        })
        .collect();
    assert_eq!(releases.len(), 10, "budget caps releases");
    assert!(guards
        .alerts
        .iter()
        .any(|a| matches!(a, Alert::BudgetExhausted)));
    // each noisy count should be near the interval size
    for r in &releases {
        assert!((r - 5_000.0).abs() < 1_500.0, "count {r}");
    }
}

#[test]
fn service_mix_is_stable_under_the_guards() {
    // guards must not perturb the traffic they observe: verify the paper's
    // mix survives a guarded pass
    let events: Vec<_> = InternetMinute::new(9).take(50_000).collect();
    let mut guards = GuardedStream::guarded(2_000, 0.8, 10_000, 1.0, 100, 1).unwrap();
    for ev in &events {
        guards.process(ev);
    }
    let snaps = events
        .iter()
        .filter(|e| e.service == Service::SnapReceived)
        .count() as f64
        / events.len() as f64;
    let expected = Service::SnapReceived.per_minute() as f64 / Service::total_per_minute() as f64;
    assert!((snaps - expected).abs() < 0.01);
    assert_eq!(guards.processed as usize, events.len());
}
