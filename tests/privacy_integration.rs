//! Cross-crate confidentiality integration: DP mechanisms + accountant +
//! anonymization + risk, against the census world.

use fact_confidentiality::kanon::{is_k_anonymous, mondrian_k_anonymize};
use fact_confidentiality::mechanisms::{
    dp_mean, laplace_mechanism, randomized_response, randomized_response_estimate,
};
use fact_confidentiality::pseudo::Pseudonymizer;
use fact_confidentiality::risk::{reidentification_risk, schema_risk};
use fact_confidentiality::PrivacyAccountant;
use fact_data::csv::{read_csv, write_csv, CsvOptions};
use fact_data::synth::census::{generate_census, CensusConfig};
use fact_data::FactError;
use fact_stats::descriptive::mean;

#[test]
fn dp_mean_error_shrinks_with_epsilon_and_n() {
    let census = generate_census(&CensusConfig {
        n: 20_000,
        seed: 1,
        ..CensusConfig::default()
    });
    let salaries = census.f64_column("salary").unwrap();
    let truth = mean(&salaries).unwrap();
    let mean_abs_err = |eps: f64| {
        let mut total = 0.0;
        for seed in 0..100 {
            total += (dp_mean(&salaries, 0.0, 250.0, eps, seed).unwrap() - truth).abs();
        }
        total / 100.0
    };
    let loose = mean_abs_err(0.05);
    let tight = mean_abs_err(5.0);
    assert!(
        loose > 20.0 * tight,
        "error should scale ~1/ε: ε=0.05 → {loose:.4}, ε=5 → {tight:.4}"
    );
    // with n=20k even ε=1 gives sub-dollar error on a $250-range mean
    assert!(mean_abs_err(1.0) < 0.1);
}

#[test]
fn empirical_epsilon_sanity_for_laplace() {
    // Neighbouring databases: counts 100 vs 101, sensitivity 1, ε = 1.
    // P[release ≥ t | n=100] / P[release ≥ t | n=101] must be ≥ e^(−ε).
    let eps = 1.0;
    let n_trials = 60_000u64;
    let t = 100.5;
    let tail = |value: f64| {
        let mut hits = 0u64;
        for seed in 0..n_trials {
            if laplace_mechanism(value, 1.0, eps, seed).unwrap() >= t {
                hits += 1;
            }
        }
        hits as f64 / n_trials as f64
    };
    let p_a = tail(100.0);
    let p_b = tail(101.0);
    let ratio = p_a / p_b;
    assert!(
        ratio >= (-eps).exp() * 0.9 && ratio <= eps.exp() * 1.1,
        "likelihood ratio {ratio:.3} must lie within e^±ε"
    );
}

#[test]
fn budget_session_is_strictly_enforced_and_audited() {
    let mut acc = PrivacyAccountant::new(0.5, 1e-6).unwrap();
    acc.spend(0.2, 0.0, "q1").unwrap();
    acc.spend(0.3, 0.0, "q2").unwrap();
    let err = acc.spend(0.01, 0.0, "q3").unwrap_err();
    assert!(matches!(err, FactError::BudgetExhausted { .. }));
    assert_eq!(acc.ledger().len(), 2);
    assert!(acc.remaining_epsilon() < 1e-9);
}

#[test]
fn anonymize_then_export_then_reimport_stays_k_anonymous() {
    let census = generate_census(&CensusConfig {
        n: 3_000,
        seed: 2,
        ..CensusConfig::default()
    });
    let qis = ["age", "sex", "zipcode"];
    let anon = mondrian_k_anonymize(&census, &qis, 10).unwrap();
    // CSV round trip (release format)
    let mut buf = Vec::new();
    write_csv(&anon.data, &mut buf).unwrap();
    let back = read_csv(buf.as_slice(), &CsvOptions::default()).unwrap();
    assert!(is_k_anonymous(&back, &qis, 10).unwrap());
    let risk = reidentification_risk(&back, &qis).unwrap();
    assert_eq!(risk.unique_fraction, 0.0);
    assert!(risk.prosecutor_risk <= 0.1 + 1e-9);
}

#[test]
fn pseudonymize_then_anonymize_pipeline() {
    let census = generate_census(&CensusConfig {
        n: 2_000,
        seed: 3,
        ..CensusConfig::default()
    });
    // occupation stands in for a direct identifier column here
    let p = Pseudonymizer::new(0xDEADBEEF);
    let pseudo = p.pseudonymize_column(&census, "occupation").unwrap();
    assert_ne!(
        pseudo.labels("occupation").unwrap()[0],
        census.labels("occupation").unwrap()[0]
    );
    let anon = mondrian_k_anonymize(&pseudo, &["age", "sex", "zipcode"], 5).unwrap();
    assert!(anon.min_class_size() >= 5);
    // raw schema risk before vs after
    let before = schema_risk(&census).unwrap();
    let after = reidentification_risk(&anon.data, &["age", "sex", "zipcode"]).unwrap();
    assert!(after.prosecutor_risk < before.prosecutor_risk);
}

#[test]
fn randomized_response_recovers_sensitive_prevalence() {
    // population-scale survey of a sensitive yes/no attribute
    let truth: Vec<bool> = (0..50_000).map(|i| i % 10 < 3).collect(); // 30%
    for eps in [0.5, 1.0, 2.0] {
        let responses = randomized_response(&truth, eps, 1).unwrap();
        let est = randomized_response_estimate(&responses, eps).unwrap();
        // the de-biasing factor 1/(2p−1) amplifies sampling noise at low ε
        let tol = if eps < 1.0 { 0.04 } else { 0.02 };
        assert!(
            (est - 0.3).abs() < tol,
            "ε={eps}: estimate {est} should recover 0.30"
        );
    }
}
