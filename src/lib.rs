//! # Responsible Data Science — the FACT toolkit
//!
//! A Rust implementation of the research agenda set out in *Responsible Data
//! Science* (van der Aalst, Bichler & Heinzl, Business & Information Systems
//! Engineering 59(5), 2017): information systems that ensure **F**airness,
//! **A**ccuracy, **C**onfidentiality, and **T**ransparency *by design* —
//! "green data science".
//!
//! This crate is the facade over the workspace:
//!
//! | Module | Crate | Pillar |
//! |---|---|---|
//! | [`data`] | `fact-data` | substrate: columnar datasets, synthetic worlds, event streams |
//! | [`stats`] | `fact-stats` | substrate: inference engine |
//! | [`ml`] | `fact-ml` | substrate: learners and metrics |
//! | [`fairness`] | `fact-fairness` | Q1 — fairness metrics & mitigation |
//! | [`accuracy`] | `fact-accuracy` | Q2 — multiple testing, Simpson, uncertainty |
//! | [`confidentiality`] | `fact-confidentiality` | Q3 — differential privacy, k-anonymity |
//! | [`transparency`] | `fact-transparency` | Q4 — provenance, audit, explanations |
//! | [`causal`] | `fact-causal` | substrate: causal estimators (§2's PSM/IPW discussion) |
//! | [`core`] | `fact-core` | §3–4 — the FACT-guarded pipeline and green certification |
//!
//! ## Quickstart
//!
//! ```
//! use responsible_data_science::prelude::*;
//!
//! // A synthetic lending world with historical bias against group B.
//! let ds = generate_loans(&LoanConfig {
//!     n: 4_000,
//!     seed: 42,
//!     bias_strength: 0.4,
//!     ..LoanConfig::default()
//! });
//!
//! // A pipeline governed by all four FACT pillars.
//! let mut pipeline = GuardedPipeline::new(FactPolicy::strict("group", "B")).unwrap();
//! pipeline.load_data("loans", "quickstart", ds).unwrap();
//! pipeline
//!     .train("loan-model", "quickstart", &LEGIT_FEATURES, "approved", 42, |x, y, _train, seed| {
//!         let cfg = LogisticConfig { seed, ..LogisticConfig::default() };
//!         Ok(Box::new(LogisticRegression::fit(x, y, None, &cfg)?))
//!     })
//!     .unwrap();
//! let fairness = pipeline.audit_fairness().unwrap();
//! let report = pipeline.certify();
//! // the biased world fails certification
//! assert!(!fairness.is_fair());
//! assert!(!report.is_green());
//! ```

#![warn(missing_docs)]

pub mod cli;

pub use fact_accuracy as accuracy;
pub use fact_causal as causal;
pub use fact_confidentiality as confidentiality;
pub use fact_core as core;
pub use fact_data as data;
pub use fact_fairness as fairness;
pub use fact_ml as ml;
pub use fact_stats as stats;
pub use fact_transparency as transparency;

/// The most commonly used items in one import.
pub mod prelude {
    pub use fact_core::{FactPolicy, FactReport, GuardedPipeline, Pillar};
    pub use fact_data::synth::loans::{generate_loans, LoanConfig, LEGIT_FEATURES};
    pub use fact_data::{Dataset, DatasetBuilder, FactError, Matrix, Result};
    pub use fact_fairness::{protected_mask, FairnessReport, FairnessThresholds};
    pub use fact_ml::logistic::{LogisticConfig, LogisticRegression};
    pub use fact_ml::Classifier;
}
