//! Implementation of the `fact` command-line tool.
//!
//! Logic lives here (library-testable); `src/bin/fact.rs` is a thin wrapper.
//! Subcommands map to the four pillars on plain CSV files:
//!
//! ```text
//! fact describe  --csv data.csv
//! fact audit     --csv data.csv --outcome approved --protected group=B
//! fact anonymize --csv data.csv --out anon.csv --k 10 --quasi age,sex,zipcode
//! fact dp-mean   --csv data.csv --column salary --lo 0 --hi 250 --epsilon 0.5
//! fact risk      --csv data.csv --quasi age,sex,zipcode
//! ```

use std::collections::HashMap;

use fact_confidentiality::kanon::mondrian_k_anonymize;
use fact_confidentiality::mechanisms::dp_mean;
use fact_confidentiality::risk::reidentification_risk;
use fact_data::csv::{read_csv_path, write_csv_path};
use fact_data::{Dataset, FactError, Result};
use fact_fairness::report::{FairnessReport, FairnessThresholds};
use fact_fairness::{protected_mask, proxy::scan_proxies};

/// Parsed command-line arguments: positional subcommand plus `--key value`
/// options.
#[derive(Debug, Clone)]
pub struct CliArgs {
    /// The subcommand (first positional argument).
    pub command: String,
    /// `--key value` options.
    pub options: HashMap<String, String>,
}

impl CliArgs {
    /// Parse from an iterator of arguments (excluding the program name).
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Result<Self> {
        let mut iter = args.into_iter();
        let command = iter
            .next()
            .ok_or_else(|| FactError::InvalidArgument(USAGE.trim().to_string()))?;
        let mut options = HashMap::new();
        while let Some(key) = iter.next() {
            let key = key
                .strip_prefix("--")
                .ok_or_else(|| {
                    FactError::InvalidArgument(format!("expected --option, got '{key}'"))
                })?
                .to_string();
            let value = iter
                .next()
                .ok_or_else(|| FactError::InvalidArgument(format!("--{key} requires a value")))?;
            options.insert(key, value);
        }
        Ok(CliArgs { command, options })
    }

    fn require(&self, key: &str) -> Result<&str> {
        self.options
            .get(key)
            .map(|s| s.as_str())
            .ok_or_else(|| FactError::InvalidArgument(format!("missing required option --{key}")))
    }

    fn require_f64(&self, key: &str) -> Result<f64> {
        self.require(key)?
            .parse::<f64>()
            .map_err(|_| FactError::InvalidArgument(format!("--{key} must be a number")))
    }
}

/// Usage text.
pub const USAGE: &str = "\
fact — responsible data science audits on CSV files

USAGE:
  fact describe  --csv FILE
  fact audit     --csv FILE --outcome COL --protected COL=LABEL
  fact anonymize --csv FILE --out FILE --k N --quasi COL,COL,...
  fact dp-mean   --csv FILE --column COL --lo N --hi N --epsilon E [--seed N]
  fact risk      --csv FILE --quasi COL,COL,...
";

/// Run a parsed command; returns the text to print.
pub fn run(args: &CliArgs) -> Result<String> {
    match args.command.as_str() {
        "describe" => describe(args),
        "audit" => audit(args),
        "anonymize" => anonymize(args),
        "dp-mean" => dp_mean_cmd(args),
        "risk" => risk_cmd(args),
        "help" | "--help" | "-h" => Ok(USAGE.to_string()),
        other => Err(FactError::InvalidArgument(format!(
            "unknown command '{other}'\n{USAGE}"
        ))),
    }
}

fn load(args: &CliArgs) -> Result<Dataset> {
    read_csv_path(args.require("csv")?)
}

fn describe(args: &CliArgs) -> Result<String> {
    let ds = load(args)?;
    let mut out = format!("{} rows × {} columns\n\n", ds.n_rows(), ds.n_cols());
    out.push_str(&format!(
        "{:<20} {:>12} {:>8} {:>10} {:>10} {:>10} {:>10} {:>9}\n",
        "column", "type", "nulls", "mean", "std", "min", "max", "distinct"
    ));
    for row in ds.summary() {
        let fmt = |v: Option<f64>| v.map(|x| format!("{x:.3}")).unwrap_or_else(|| "-".into());
        out.push_str(&format!(
            "{:<20} {:>12} {:>8} {:>10} {:>10} {:>10} {:>10} {:>9}\n",
            row.name,
            row.dtype.to_string(),
            row.nulls,
            fmt(row.mean),
            fmt(row.std),
            fmt(row.min),
            fmt(row.max),
            row.distinct
        ));
    }
    Ok(out)
}

fn audit(args: &CliArgs) -> Result<String> {
    let ds = load(args)?;
    let outcome_col = args.require("outcome")?;
    let protected = args.require("protected")?;
    let (col, label) = protected
        .split_once('=')
        .ok_or_else(|| FactError::InvalidArgument("--protected must be COLUMN=LABEL".into()))?;
    let outcomes = ds.bool_column(outcome_col)?.to_vec();
    let mask = protected_mask(&ds, col, label)?;
    let report = FairnessReport::audit(None, &outcomes, &mask, FairnessThresholds::default())?;
    let mut out = format!("{report}\n\nProxy scan (association with {col}={label}):\n");
    for s in scan_proxies(&ds, &mask, &[col, outcome_col])? {
        out.push_str(&format!(
            "  {:<20} normalized MI {:.3}\n",
            s.feature, s.normalized_mi
        ));
    }
    Ok(out)
}

fn anonymize(args: &CliArgs) -> Result<String> {
    let ds = load(args)?;
    let k = args
        .require("k")?
        .parse::<usize>()
        .map_err(|_| FactError::InvalidArgument("--k must be a positive integer".into()))?;
    let quasi: Vec<&str> = args.require("quasi")?.split(',').collect();
    let before = reidentification_risk(&ds, &quasi)?;
    let anon = mondrian_k_anonymize(&ds, &quasi, k)?;
    let after = reidentification_risk(&anon.data, &quasi)?;
    write_csv_path(&anon.data, args.require("out")?)?;
    Ok(format!(
        "anonymized {} rows at k={k}: {} classes, information loss {:.3}\n\
         prosecutor risk {:.3} → {:.3}, unique records {:.1}% → {:.1}%\n\
         written to {}",
        ds.n_rows(),
        anon.n_classes,
        anon.information_loss,
        before.prosecutor_risk,
        after.prosecutor_risk,
        100.0 * before.unique_fraction,
        100.0 * after.unique_fraction,
        args.require("out")?
    ))
}

fn dp_mean_cmd(args: &CliArgs) -> Result<String> {
    let ds = load(args)?;
    let column = args.require("column")?;
    let lo = args.require_f64("lo")?;
    let hi = args.require_f64("hi")?;
    let epsilon = args.require_f64("epsilon")?;
    let seed = args
        .options
        .get("seed")
        .map(|s| s.parse::<u64>().unwrap_or(0))
        .unwrap_or(0);
    let values = ds.f64_column(column)?;
    let released = dp_mean(&values, lo, hi, epsilon, seed)?;
    Ok(format!(
        "dp_mean({column}) = {released:.4}   (ε = {epsilon}, bounds [{lo}, {hi}], n = {})",
        values.len()
    ))
}

fn risk_cmd(args: &CliArgs) -> Result<String> {
    let ds = load(args)?;
    let quasi: Vec<&str> = args.require("quasi")?.split(',').collect();
    let r = reidentification_risk(&ds, &quasi)?;
    Ok(format!(
        "re-identification risk over {:?}:\n  unique records: {:.1}%\n  prosecutor risk: {:.3}\n  QI classes: {} (min size {})",
        quasi,
        100.0 * r.unique_fraction,
        r.prosecutor_risk,
        r.n_classes,
        r.min_class_size
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use fact_data::synth::census::{generate_census, CensusConfig};
    use fact_data::synth::loans::{generate_loans, LoanConfig};

    fn argv(parts: &[&str]) -> CliArgs {
        CliArgs::parse(parts.iter().map(|s| s.to_string())).unwrap()
    }

    fn tmp(name: &str) -> String {
        let dir = std::env::temp_dir().join("fact_cli_tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name).to_string_lossy().into_owned()
    }

    #[test]
    fn parse_subcommand_and_options() {
        let a = argv(&["audit", "--csv", "f.csv", "--outcome", "y"]);
        assert_eq!(a.command, "audit");
        assert_eq!(a.require("csv").unwrap(), "f.csv");
        assert!(a.require("missing").is_err());
        assert!(CliArgs::parse(std::iter::empty()).is_err());
        assert!(CliArgs::parse(["x".to_string(), "nodash".to_string()]).is_err());
        assert!(CliArgs::parse(["x".to_string(), "--dangling".to_string()]).is_err());
    }

    #[test]
    fn describe_prints_summary() {
        let path = tmp("describe.csv");
        let ds = generate_loans(&LoanConfig {
            n: 200,
            seed: 1,
            ..LoanConfig::default()
        });
        fact_data::csv::write_csv_path(&ds, &path).unwrap();
        let out = run(&argv(&["describe", "--csv", &path])).unwrap();
        assert!(out.contains("200 rows"));
        assert!(out.contains("income"));
        assert!(out.contains("categorical"));
    }

    #[test]
    fn audit_detects_bias_in_csv() {
        let path = tmp("audit.csv");
        let ds = generate_loans(&LoanConfig {
            n: 5_000,
            seed: 2,
            bias_strength: 0.5,
            proxy_strength: 0.9,
            ..LoanConfig::default()
        });
        fact_data::csv::write_csv_path(&ds, &path).unwrap();
        let out = run(&argv(&[
            "audit",
            "--csv",
            &path,
            "--outcome",
            "approved",
            "--protected",
            "group=B",
        ]))
        .unwrap();
        assert!(out.contains("UNFAIR"), "{out}");
        assert!(out.contains("zip_risk"));
    }

    #[test]
    fn anonymize_round_trip_via_files() {
        let input = tmp("anon_in.csv");
        let output = tmp("anon_out.csv");
        let ds = generate_census(&CensusConfig {
            n: 800,
            seed: 3,
            ..CensusConfig::default()
        });
        fact_data::csv::write_csv_path(&ds, &input).unwrap();
        let out = run(&argv(&[
            "anonymize",
            "--csv",
            &input,
            "--out",
            &output,
            "--k",
            "10",
            "--quasi",
            "age,sex,zipcode",
        ]))
        .unwrap();
        assert!(out.contains("k=10"));
        let released = fact_data::csv::read_csv_path(&output).unwrap();
        assert!(fact_confidentiality::kanon::is_k_anonymous(
            &released,
            &["age", "sex", "zipcode"],
            10
        )
        .unwrap());
    }

    #[test]
    fn dp_mean_command() {
        let path = tmp("dp.csv");
        let ds = generate_census(&CensusConfig {
            n: 2_000,
            seed: 4,
            ..CensusConfig::default()
        });
        fact_data::csv::write_csv_path(&ds, &path).unwrap();
        let out = run(&argv(&[
            "dp-mean",
            "--csv",
            &path,
            "--column",
            "salary",
            "--lo",
            "0",
            "--hi",
            "250",
            "--epsilon",
            "1.0",
        ]))
        .unwrap();
        assert!(out.contains("dp_mean(salary)"));
        // the released value should be near the true mean
        let truth: f64 = ds.f64_column("salary").unwrap().iter().sum::<f64>() / 2_000.0;
        let released: f64 = out
            .split('=')
            .nth(1)
            .unwrap()
            .split_whitespace()
            .next()
            .unwrap()
            .parse()
            .unwrap();
        assert!((released - truth).abs() < 2.0);
    }

    #[test]
    fn risk_command_and_errors() {
        let path = tmp("risk.csv");
        let ds = generate_census(&CensusConfig {
            n: 500,
            seed: 5,
            ..CensusConfig::default()
        });
        fact_data::csv::write_csv_path(&ds, &path).unwrap();
        let out = run(&argv(&[
            "risk",
            "--csv",
            &path,
            "--quasi",
            "age,sex,zipcode",
        ]))
        .unwrap();
        assert!(out.contains("prosecutor risk"));
        assert!(run(&argv(&["unknown-cmd"])).is_err());
        assert!(run(&argv(&["help"])).unwrap().contains("USAGE"));
    }
}
