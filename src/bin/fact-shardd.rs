//! `fact-shardd` — a FACT shard worker process.
//!
//! Hosts N guarded decision shards behind a Unix-domain socket and/or a
//! TCP listener speaking the fact-net frame protocol (the normative wire
//! spec is `PROTOCOL.md` at the repository root; the operator runbook is
//! `OPERATIONS.md`). A front-end `DecisionService` configured with
//! `ShardSlot::Remote(socket)` or `ShardSlot::RemoteTcp(addr)` routes
//! decisions here exactly as it would to an in-process worker thread.
//!
//! Guard state (fairness window, ε ledger, DP counters) is checkpointed to
//! sidecar files in `--checkpoint-dir` every `--checkpoint-every` decisions
//! and on graceful shutdown. On startup each shard restores from its
//! sidecar if one exists, so a respawned worker *resumes* its monitors
//! instead of silently resetting them — after a hard kill the loss is
//! bounded by the checkpoint interval.
//!
//! The worker hosts its shards behind a live-reshard gate: a
//! `Control {"command":"reshard <M>"}` frame drains the current topology,
//! transforms the checkpoint sidecars from N to M shards (conserving the
//! fairness windows and ε ledgers), and restarts with M shards — requests
//! that arrive during the cutover are held up to `--reshard-hold-ms` and
//! replayed, never silently dropped.
//!
//! Shutdown paths:
//! - `Control {"command":"shutdown"}` frame: acked first, then the worker
//!   drains, writes final checkpoints, and exits 0.
//! - SIGKILL: no cleanup (that is the point); the next start restores the
//!   last periodic checkpoint.

use std::path::PathBuf;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

use fact_data::Matrix;
use fact_ml::Classifier;
use fact_net::{Endpoint, Server, ShardHandler, DEFAULT_FRAME_DEADLINE};
use fact_serve::{
    AdmissionConfig, ArchiveConfig, AuditSinkConfig, CheckpointConfig, DegradePolicy, GuardConfig,
    NetShardHandler, ReshardConfig, ReshardableService, ServeConfig,
};

const USAGE: &str = "\
usage: fact-shardd (--socket PATH | --tcp ADDR) --checkpoint-dir DIR [options]

options:
  --socket PATH            Unix socket to listen on
  --tcp ADDR               TCP host:port to listen on (port 0 picks one;
                           the resolved address is printed at startup);
                           may be combined with --socket
  --checkpoint-dir DIR     guard-state sidecar directory (required)
  --shards N               worker shards to host            [default: 2]
  --n-features N           feature-vector length            [default: 8]
  --checkpoint-every N     decisions between checkpoints    [default: 500]
  --dp-interval N          decisions between DP releases    [default: 200]
  --fairness-window N      fairness monitor window          [default: 1000]
  --audit PATH             durable audit log (JSONL); off when absent
  --audit-segment-bytes N  roll the audit log to a new segment past this
                           size                             [default: 67108864]
  --archive-retain N       background-archive sealed audit segments,
                           keeping the newest N uncompressed; requires
                           --audit; archiving off when absent
  --archive-tick-ms MS     archiver scan interval           [default: 500]
  --queue-cap N            per-shard queue bound            [default: 64]
  --reshard-hold-ms MS     longest a request parks at the cutover gate
                           during a live reshard            [default: 5000]
  --target-p99-us MICROS   enable adaptive admission control with this
                           latency target; off when absent
  --tenant-rate R          per-tenant admitted req/s quota  [default: 0 = off]
  --tenant-burst B         per-tenant burst allowance       [default: 256]
";

/// The worker's deterministic demo model: probability is the mean of the
/// feature vector, clamped to [0, 1]. `exp_e16` uses the same scorer on the
/// local side of its comparison — keep the two in sync.
struct MeanScorer;

impl Classifier for MeanScorer {
    fn predict_proba(&self, x: &Matrix) -> fact_data::Result<Vec<f64>> {
        Ok((0..x.rows())
            .map(|i| {
                let row = x.row(i);
                let mean = row.iter().sum::<f64>() / row.len().max(1) as f64;
                mean.clamp(0.0, 1.0)
            })
            .collect())
    }
}

struct Args {
    socket: Option<PathBuf>,
    tcp: Option<String>,
    checkpoint_dir: PathBuf,
    shards: usize,
    n_features: usize,
    checkpoint_every: u64,
    dp_interval: usize,
    fairness_window: usize,
    audit: Option<PathBuf>,
    audit_segment_bytes: Option<u64>,
    archive_retain: Option<u64>,
    archive_tick_ms: u64,
    queue_cap: usize,
    reshard_hold_ms: u64,
    target_p99_us: Option<u64>,
    tenant_rate: f64,
    tenant_burst: f64,
}

fn parse_args(argv: Vec<String>) -> Result<Args, String> {
    let mut socket = None;
    let mut tcp = None;
    let mut checkpoint_dir = None;
    let mut shards = 2usize;
    let mut n_features = 8usize;
    let mut checkpoint_every = 500u64;
    let mut dp_interval = 200usize;
    let mut fairness_window = 1_000usize;
    let mut audit = None;
    let mut audit_segment_bytes = None;
    let mut archive_retain = None;
    let mut archive_tick_ms = 500u64;
    let mut queue_cap = 64usize;
    let mut reshard_hold_ms = 5_000u64;
    let mut target_p99_us = None;
    let mut tenant_rate = 0.0f64;
    let mut tenant_burst = 256.0f64;

    let mut it = argv.into_iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} needs a value"));
        match flag.as_str() {
            "--socket" => socket = Some(PathBuf::from(value("--socket")?)),
            "--tcp" => tcp = Some(value("--tcp")?),
            "--checkpoint-dir" => checkpoint_dir = Some(PathBuf::from(value("--checkpoint-dir")?)),
            "--shards" => shards = parse_num(&value("--shards")?, "--shards")?,
            "--n-features" => n_features = parse_num(&value("--n-features")?, "--n-features")?,
            "--checkpoint-every" => {
                checkpoint_every = parse_num(&value("--checkpoint-every")?, "--checkpoint-every")?
            }
            "--dp-interval" => dp_interval = parse_num(&value("--dp-interval")?, "--dp-interval")?,
            "--fairness-window" => {
                fairness_window = parse_num(&value("--fairness-window")?, "--fairness-window")?
            }
            "--audit" => audit = Some(PathBuf::from(value("--audit")?)),
            "--audit-segment-bytes" => {
                audit_segment_bytes = Some(parse_num(
                    &value("--audit-segment-bytes")?,
                    "--audit-segment-bytes",
                )?)
            }
            "--archive-retain" => {
                archive_retain = Some(parse_num(&value("--archive-retain")?, "--archive-retain")?)
            }
            "--archive-tick-ms" => {
                archive_tick_ms = parse_num(&value("--archive-tick-ms")?, "--archive-tick-ms")?
            }
            "--queue-cap" => queue_cap = parse_num(&value("--queue-cap")?, "--queue-cap")?,
            "--reshard-hold-ms" => {
                reshard_hold_ms = parse_num(&value("--reshard-hold-ms")?, "--reshard-hold-ms")?
            }
            "--target-p99-us" => {
                target_p99_us = Some(parse_num(&value("--target-p99-us")?, "--target-p99-us")?)
            }
            "--tenant-rate" => tenant_rate = parse_num(&value("--tenant-rate")?, "--tenant-rate")?,
            "--tenant-burst" => {
                tenant_burst = parse_num(&value("--tenant-burst")?, "--tenant-burst")?
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    if socket.is_none() && tcp.is_none() {
        return Err("at least one of --socket or --tcp is required".into());
    }
    Ok(Args {
        socket,
        tcp,
        checkpoint_dir: checkpoint_dir.ok_or("--checkpoint-dir is required")?,
        shards,
        n_features,
        checkpoint_every,
        dp_interval,
        fairness_window,
        audit,
        audit_segment_bytes,
        archive_retain,
        archive_tick_ms,
        queue_cap,
        reshard_hold_ms,
        target_p99_us,
        tenant_rate,
        tenant_burst,
    })
}

fn parse_num<T: std::str::FromStr>(s: &str, flag: &str) -> Result<T, String> {
    s.parse()
        .map_err(|_| format!("{flag}: not a number: {s:?}"))
}

fn main() {
    let args = match parse_args(std::env::args().skip(1).collect()) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("fact-shardd: {e}\n\n{USAGE}");
            std::process::exit(2);
        }
    };

    let admission = args.target_p99_us.map(|us| AdmissionConfig {
        target_p99: Duration::from_micros(us),
        tenant_rate: args.tenant_rate,
        tenant_burst: args.tenant_burst,
        ..AdmissionConfig::default()
    });

    let cfg = ServeConfig {
        shards: args.shards,
        n_features: args.n_features,
        queue_cap: args.queue_cap,
        admission,
        policy: DegradePolicy::AuditAndFlag,
        guards: Some(GuardConfig {
            fairness_window: args.fairness_window,
            dp_interval: args.dp_interval,
            ..GuardConfig::default()
        }),
        checkpoint: Some(CheckpointConfig::new(
            args.checkpoint_dir.clone(),
            args.checkpoint_every,
        )),
        audit: args.audit.clone().map(|path| {
            let defaults = AuditSinkConfig::default();
            AuditSinkConfig {
                path,
                max_segment_bytes: args
                    .audit_segment_bytes
                    .unwrap_or(defaults.max_segment_bytes),
                archive: args.archive_retain.map(|retain_segments| ArchiveConfig {
                    retain_segments,
                    tick: Duration::from_millis(args.archive_tick_ms),
                    ..ArchiveConfig::default()
                }),
                ..defaults
            }
        }),
        ..ServeConfig::default()
    };

    let service = match ReshardableService::start(
        Arc::new(MeanScorer),
        cfg,
        ReshardConfig {
            hold_max: Duration::from_millis(args.reshard_hold_ms),
        },
    ) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("fact-shardd: failed to start shards: {e}");
            std::process::exit(1);
        }
    };
    let handler = NetShardHandler::reshardable(service.clone(), Duration::from_secs(10));
    let shutdown = handler.shutdown_flag();
    let handler: Arc<dyn ShardHandler> = Arc::new(handler);

    // Both listeners (when both are requested) share the one handler, so a
    // mixed Unix + TCP front-end fleet addresses the same shards.
    let mut endpoints = Vec::new();
    if let Some(path) = &args.socket {
        endpoints.push(Endpoint::Unix(path.clone()));
    }
    if let Some(addr) = &args.tcp {
        endpoints.push(Endpoint::Tcp(addr.clone()));
    }
    let mut servers = Vec::new();
    for endpoint in endpoints {
        match Server::bind_endpoint(
            endpoint.clone(),
            Arc::clone(&handler),
            DEFAULT_FRAME_DEADLINE,
        ) {
            Ok(s) => {
                println!("fact-shardd: listening on {}", s.endpoint());
                servers.push(s);
            }
            Err(e) => {
                eprintln!("fact-shardd: failed to bind {endpoint}: {e}");
                std::process::exit(1);
            }
        }
    }
    println!(
        "fact-shardd: {} shard(s) (checkpoints: {} every {}; reshard hold: {}ms; admission: {})",
        args.shards,
        args.checkpoint_dir.display(),
        args.checkpoint_every,
        args.reshard_hold_ms,
        match args.target_p99_us {
            Some(us) => format!("target_p99={us}us tenant_rate={}", args.tenant_rate),
            None => "off".into(),
        },
    );

    while !shutdown.load(Ordering::Acquire) {
        std::thread::sleep(Duration::from_millis(25));
    }
    // the ack for the shutdown control rides the connection's writer
    // thread; give it a beat to flush before tearing the sockets down
    std::thread::sleep(Duration::from_millis(100));
    for mut server in servers {
        server.shutdown();
    }
    let epochs = service.shutdown();
    let served: u64 = epochs.iter().map(|e| e.decisions_served).sum();
    let checkpoints: u64 = epochs.iter().map(|e| e.checkpoints_written).sum();
    let throttled: u64 = epochs.iter().map(|e| e.throttled).sum();
    let eps_spent = epochs.last().map_or(0.0, |e| e.epsilon_spent);
    println!(
        "fact-shardd: drained; epochs={} served={} checkpoints={} eps_spent={:.4} throttled={}",
        epochs.len(),
        served,
        checkpoints,
        eps_spent,
        throttled,
    );
}
