//! The `fact` command-line tool: responsible data science audits on CSV
//! files. See `fact help` or [`responsible_data_science::cli::USAGE`].

use responsible_data_science::cli::{run, CliArgs, USAGE};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match CliArgs::parse(args).and_then(|a| run(&a)) {
        Ok(output) => println!("{output}"),
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            std::process::exit(1);
        }
    }
}
